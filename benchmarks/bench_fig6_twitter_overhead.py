"""Fig. 6: capture runtime overhead on the Twitter scenarios T1-T5.

The paper reports Spark-vs-Pebble runtimes for T1-T5 at 100-500 GB with
roughly scale-independent relative overhead and T3 (which reads and
therefore annotates the input twice) among the highest.  We sweep scale
factors 0.5x-2x of the synthetic corpus and regenerate the same rows.
"""

import pytest

from conftest import run_once
from repro.bench.harness import measure_capture_overhead
from repro.bench.reporting import render_capture_overhead
from repro.engine.session import Session
from repro.workloads.scenarios import TWITTER_SCENARIOS, load_workload, scenario

SCALES = (0.5, 1.0, 2.0)
REPEATS = 3


@pytest.mark.parametrize("name", TWITTER_SCENARIOS)
def test_capture_run(benchmark, name):
    """pytest-benchmark timing of one capture-enabled run per scenario."""
    spec = scenario(name)
    data = load_workload(spec.kind, 1.0)

    def run():
        execution = spec.build(Session(4), data).execute(capture=True)
        execution.store.serialize()
        return len(execution)

    rows = benchmark(run)
    assert rows > 0


def test_fig6_table(benchmark, save_result):
    """Regenerate the Fig. 6 series (per scenario x scale, overhead %)."""

    def sweep():
        return measure_capture_overhead(TWITTER_SCENARIOS, scales=SCALES, repeats=REPEATS)

    measurements = run_once(benchmark, sweep)
    save_result(
        "fig6_twitter_capture_overhead",
        render_capture_overhead(measurements, "Fig. 6 -- runtime overhead, Twitter scenarios"),
    )
    # Shape checks: runtime grows with scale for every scenario.
    for name in TWITTER_SCENARIOS:
        series = [m for m in measurements if m.scenario == name]
        series.sort(key=lambda m: m.scale)
        assert series[-1].plain_seconds > series[0].plain_seconds
