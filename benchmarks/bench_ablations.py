"""Ablation benches for the design choices called out in DESIGN.md.

1. **Attribute width** (Sec. 7.3.1's observation): the relative capture
   overhead decreases as items get wider, because per-item annotation cost
   is constant while processing cost grows with width.
2. **Value-level annotation** (Lipstick) vs. top-level ids (Pebble): the
   annotation count -- and hence the capture bookkeeping -- grows with the
   number of nested values instead of the number of items.
3. **Eager vs. lazy as pipelines deepen**: the lazy penalty grows with
   pipeline depth, eager querying stays flat.
"""

import time

from conftest import run_once
from repro.baselines.annotations import ValueAnnotationCapture
from repro.baselines.lazy import LazyProvenanceQuerier
from repro.bench.reporting import format_table
from repro.engine.expressions import col
from repro.engine.session import Session
from repro.nested.values import DataItem
from repro.pebble.query import query_provenance
from repro.workloads.twitter import TwitterConfig, generate_tweets


def test_width_ablation(benchmark, save_result):
    """Relative capture overhead as a function of item width."""

    def sweep():
        rows = []
        for width in (0, 8, 32, 96):
            tweets = [
                DataItem(tweet)
                for tweet in generate_tweets(TwitterConfig(scale=0.5, payload_width=width))
            ]

            def run(capture):
                session = Session(4)
                ds = (
                    session.create_dataset(tweets, "tweets.json")
                    .filter(col("retweet_count") == 0)
                    .flatten("user_mentions", "m_user")
                )
                start = time.perf_counter()
                ds.execute(capture=capture)
                return time.perf_counter() - start

            run(False)  # warm-up
            plain = min(run(False) for _ in range(3))
            captured = min(run(True) for _ in range(3))
            rows.append((width, plain, captured))
        return rows

    rows = run_once(benchmark, sweep)
    rendered = format_table(
        ("payload width", "plain ms", "capture ms", "overhead"),
        [
            (str(width), f"{plain * 1000:.1f}", f"{captured * 1000:.1f}",
             f"{100 * (captured - plain) / plain:+.0f}%")
            for width, plain, captured in rows
        ],
    )
    save_result("ablation_width", "Ablation -- capture overhead vs. item width\n" + rendered)


def test_annotation_count_ablation(benchmark, save_result):
    """Lipstick-style annotations grow with nesting; Pebble ids do not."""

    def sweep():
        rows = []
        for mentions in (0, 2, 4, 8):
            items = [
                DataItem(
                    {
                        "text": "t",
                        "user_mentions": [
                            {"id_str": f"u{i}", "name": f"n{i}"} for i in range(mentions)
                        ],
                    }
                )
                for _ in range(100)
            ]
            capture = ValueAnnotationCapture()
            annotation_count = capture.annotate(items)
            rows.append((mentions, annotation_count, len(items)))
        return rows

    rows = run_once(benchmark, sweep)
    rendered = format_table(
        ("mentions/item", "Lipstick annotations", "Pebble ids"),
        [(str(m), str(a), str(p)) for m, a, p in rows],
    )
    save_result(
        "ablation_annotations",
        "Ablation -- value-level annotations vs. top-level ids\n" + rendered,
    )
    counts = [a for _, a, _ in rows]
    assert counts == sorted(counts) and counts[-1] > counts[0]
    assert all(p == 100 for _, _, p in rows)


def test_depth_ablation(benchmark, save_result):
    """Eager query time stays flat as pipelines deepen; lazy grows."""

    data = [{"a": index, "flag": index % 2 == 0} for index in range(300)]

    def build(depth):
        session = Session(4)
        ds = session.create_dataset(data, "in")
        for _ in range(depth):
            ds = ds.select(col("a"), col("flag")).filter(col("a") >= 0)
        return ds

    def sweep():
        rows = []
        for depth in (1, 4, 8):
            ds = build(depth)
            captured = ds.execute(capture=True)

            start = time.perf_counter()
            query_provenance(captured, "root{/a=7}")
            eager = time.perf_counter() - start

            start = time.perf_counter()
            LazyProvenanceQuerier(build(depth)).query("root{/a=7}")
            lazy = time.perf_counter() - start
            rows.append((depth, eager, lazy))
        return rows

    rows = run_once(benchmark, sweep)
    rendered = format_table(
        ("pipeline depth", "eager ms", "lazy ms", "factor"),
        [
            (str(depth), f"{eager * 1000:.1f}", f"{lazy * 1000:.1f}", f"x{lazy / eager:.1f}")
            for depth, eager, lazy in rows
        ],
    )
    save_result("ablation_depth", "Ablation -- query time vs. pipeline depth\n" + rendered)
    for _, eager, lazy in rows:
        assert lazy > eager


def test_optimizer_rewrite_ablation(benchmark, save_result):
    """Capture-on runtime under the optimizer rewrite ladder (Fig. 6 workload).

    4. **Projection pruning + fusion**: pruning unused attributes before
       capture shrinks the items every downstream operator copies and
       annotates, so capture-on runtime drops on the scenarios that read a
       narrow slice of wide tweets; fusing the narrow chains removes the
       per-operator partition barriers on top.
    """
    from repro.bench.harness import measure_optimizer_ablation
    from repro.bench.reporting import render_optimizer_ablation
    from repro.workloads.scenarios import TWITTER_SCENARIOS

    measurements = run_once(
        benchmark,
        lambda: measure_optimizer_ablation(TWITTER_SCENARIOS, scale=0.2, repeats=3),
    )
    save_result("ablation_optimizer", render_optimizer_ablation(measurements))
    by_config = {}
    for m in measurements:
        by_config.setdefault(m.scenario, {})[m.config_name] = m.seconds
    # Pruning must pay off on at least one scenario that captures less work.
    assert any(
        configs["prune"] < configs["no-opt"] for configs in by_config.values()
    )
