"""Fig. 10 and the Sec. 7.3.5 use-case analyses.

Runs the five DBLP scenarios, merges their provenance, and regenerates

* the 25-item usage heatmap over the inproceedings input (Fig. 10),
* the hot/cold classification and the vertical-partitioning advice, and
* the auditing report with influencing-only (reconstruction-risk)
  attributes -- the paper's ``year`` observation.
"""

from conftest import run_once
from repro.core.usecases.auditing import audit_leak
from repro.core.usecases.usage import UsageAnalysis
from repro.engine.session import Session
from repro.pebble.query import query_provenance
from repro.workloads.scenarios import DBLP_SCENARIOS, load_workload, scenario

SCALE = 0.5
SOURCE = "inproceedings.json"
ATTRIBUTES = ["key", "title", "authors", "year", "crossref", "pages"]


def _merged_usage():
    usage = UsageAnalysis()
    audits = []
    for name in DBLP_SCENARIOS:
        spec = scenario(name)
        data = load_workload(spec.kind, SCALE)
        execution = spec.build(Session(2), data).execute(capture=True)
        provenance = query_provenance(execution, spec.pattern)
        usage.add(provenance)
        audits.append(audit_leak(provenance))
    return usage, audits


def test_fig10_heatmap_and_auditing(benchmark, save_result):
    usage, audits = run_once(benchmark, _merged_usage)
    item_ids = sorted(
        {item_id for item_id, _ in usage.hot_items(SOURCE)}
    )[:25]
    # Pad with cold ids so the heatmap shows blue rows like Fig. 10.
    universe = list(range(1, 26))
    shown = sorted(set(item_ids[:20] + universe))[:25]
    heatmap = usage.render_heatmap(SOURCE, shown, ATTRIBUTES)
    advice = usage.partitioning_advice(SOURCE, ATTRIBUTES)
    leaked = set()
    at_risk = set()
    for audit in audits:
        leaked |= audit.leaked_attributes(SOURCE)
        at_risk |= audit.at_risk_attributes(SOURCE)
    text = (
        "Fig. 10 -- usage heatmap over 25 inproceedings items (D1-D5)\n"
        f"{heatmap}\n\n"
        f"{advice}\n\n"
        "Auditing (Sec. 7.3.5):\n"
        f"leaked attributes:  {sorted(leaked)}\n"
        f"at-risk (accessed): {sorted(at_risk - leaked)}\n"
    )
    save_result("fig10_usage_and_auditing", text)

    # Shape checks mirroring the paper's discussion:
    hot_attrs = {attr for attr, _ in usage.hot_attributes(SOURCE)}
    assert "title" in hot_attrs
    cold_attrs = set(usage.cold_attributes(SOURCE, ATTRIBUTES))
    assert "pages" in cold_attrs  # never touched by D1-D5
    # 'year' influences results (filter/group) without contributing
    # everywhere it is accessed; it must be flagged for reconstruction risk.
    influencing = {attr for attr, _ in usage.influencing_only_attributes(SOURCE)}
    assert "year" in influencing or "year" in hot_attrs
