"""Fig. 9: provenance query runtime, eager (holistic) vs. lazy (PROVision).

Expected shape (Sec. 7.3.3): eager querying is always faster, with the
largest factors on deep, multi-input pipelines (T3, T5, D3) -- the lazy
approach re-runs the pipeline once per input dataset.

A third mode measures cold backtracing from the provenance warehouse on
disk: the run is recorded once, then each query loads a fresh
LazyProvenanceStore and decodes only the segments the backtrace touches;
the table reports that latency plus the segment-cache hit rate.
"""

import pytest

from conftest import run_once
from repro.bench.harness import measure_query_times
from repro.bench.reporting import render_query_times
from repro.engine.session import Session
from repro.pebble.query import query_provenance
from repro.workloads.scenarios import (
    DBLP_SCENARIOS,
    TWITTER_SCENARIOS,
    load_workload,
    scenario,
)

SCALE = 1.0
REPEATS = 3


@pytest.mark.parametrize("name", TWITTER_SCENARIOS + DBLP_SCENARIOS)
def test_eager_query(benchmark, name):
    """pytest-benchmark timing of the eager query (capture already paid)."""
    spec = scenario(name)
    data = load_workload(spec.kind, SCALE)
    captured = spec.build(Session(4), data).execute(capture=True)

    def query():
        return query_provenance(captured, spec.pattern)

    provenance = benchmark(query)
    assert provenance.matched_output_ids


def test_fig9_tables(benchmark, save_result):
    def sweep():
        twitter = measure_query_times(TWITTER_SCENARIOS, scale=SCALE, repeats=REPEATS)
        dblp = measure_query_times(DBLP_SCENARIOS, scale=SCALE, repeats=REPEATS)
        return twitter, dblp

    twitter, dblp = run_once(benchmark, sweep)
    save_result(
        "fig9_query_eager_vs_lazy",
        render_query_times(twitter, "Fig. 9(a) -- query runtime, Twitter")
        + "\n\n"
        + render_query_times(dblp, "Fig. 9(b) -- query runtime, DBLP"),
    )
    for measurement in twitter + dblp:
        assert measurement.lazy_seconds > measurement.eager_seconds, (
            f"{measurement.scenario}: lazy should be slower than eager"
        )
        # The warehouse mode ran and its cache behaved sanely.
        assert measurement.warehouse_seconds is not None
        assert measurement.warehouse_seconds > 0
        assert measurement.segments_decoded is not None
        assert measurement.segments_decoded > 0
        assert 0.0 <= (measurement.cache_hit_rate or 0.0) <= 1.0
    # Multi-input pipelines pay the lazy penalty per input.
    by_name = {m.scenario: m for m in twitter + dblp}
    assert by_name["T3"].source_count == 2
    assert by_name["T3"].speedup > by_name["T1"].speedup
