"""Fig. 8: size of the collected structural provenance.

Expected shapes from the paper (Sec. 7.3.2):

* DBLP provenance is orders of magnitude larger than Twitter provenance for
  the same input scale -- DBLP has far more (narrow) top-level items, and
  Pebble annotates top-level items only.
* The structural share on top of lineage is small in most scenarios.
* T3's provenance is several times T1's (double input annotation, more
  operators, no early filter).
* D3 has the largest DBLP provenance (early flatten followed by a join).
"""

from conftest import run_once
from repro.bench.harness import measure_provenance_size
from repro.bench.reporting import render_provenance_sizes
from repro.workloads.scenarios import DBLP_SCENARIOS, TWITTER_SCENARIOS

SCALE = 1.0


def test_fig8_tables(benchmark, save_result):
    def measure():
        twitter = measure_provenance_size(TWITTER_SCENARIOS, scale=SCALE)
        dblp = measure_provenance_size(DBLP_SCENARIOS, scale=SCALE)
        return twitter, dblp

    twitter, dblp = run_once(benchmark, measure)
    save_result(
        "fig8_provenance_size",
        render_provenance_sizes(twitter, "Fig. 8(a) -- provenance size, Twitter")
        + "\n\n"
        + render_provenance_sizes(dblp, "Fig. 8(b) -- provenance size, DBLP"),
    )

    by_name = {m.scenario: m for m in twitter + dblp}
    # T3 collects several times T1's provenance (double read, deeper plan).
    assert by_name["T3"].total_bytes > 2 * by_name["T1"].total_bytes
    # Per processed byte, DBLP produces far more provenance than Twitter:
    # items are narrow, so there are many more top-level ids per unit input.
    twitter_total = sum(m.total_bytes for m in twitter)
    dblp_total = sum(m.total_bytes for m in dblp)
    assert dblp_total > twitter_total
    # D3 is the largest DBLP scenario (early flatten + join).
    assert by_name["D3"].total_bytes == max(m.total_bytes for m in dblp)
    # The structural extra stays below the lineage share for every scenario.
    for measurement in twitter + dblp:
        assert measurement.structural_bytes < measurement.lineage_bytes
