"""Shared benchmark infrastructure.

Every benchmark writes its paper-style table to ``benchmarks/results/`` so a
run leaves a directly comparable textual artefact per figure, and prints it
(visible with ``pytest -s``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write (and echo) a rendered figure/table."""

    def save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to {path}]")

    return save


def run_once(benchmark, fn):
    """Run a heavyweight measurement exactly once under the benchmark fixture.

    The harness functions already repeat and aggregate internally; wrapping
    them in pytest-benchmark's default rounds would multiply minutes-long
    sweeps.  ``pedantic`` with one round keeps them visible in the benchmark
    report without re-running.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
