"""Sec. 7.3.4: comparison with Titian on a flat workload.

The paper's test program reads DBLP article/inproceedings records as flat
strings, filters lines containing ``2015``, and unions the branches; Titian
measured +5.89 % capture overhead, Pebble +6.98 %.  The shape to reproduce:
both overheads are small, and the structural capture costs at most a few
points more than the lineage-only capture.
"""

from conftest import run_once
from repro.bench.harness import measure_titian_comparison
from repro.bench.reporting import render_titian_comparison

SCALE = 2.0
REPEATS = 15


def test_titian_comparison(benchmark, save_result):
    measurement = run_once(
        benchmark, lambda: measure_titian_comparison(scale=SCALE, repeats=REPEATS)
    )
    save_result("sec734_titian_comparison", render_titian_comparison(measurement))
    # Both captures add overhead, and neither explodes on flat data.
    assert measurement.titian_seconds > 0
    assert measurement.pebble_seconds > 0
    assert measurement.pebble_overhead_pct < 60.0
    # Structural capture may cost a little more than lineage-only, but the
    # gap on flat data stays within a few points (paper: ~1.1 points).
    gap = measurement.pebble_overhead_pct - measurement.titian_overhead_pct
    assert gap < 25.0
