"""Sec. 7.3.1 (per-operator discussion, no graph in the paper).

Single-operator micro-pipelines isolate the capture cost per operator type.
Expected shape: constant per-item annotation cost for filter / select /
union / join / flatten; aggregations relatively more expensive because they
store one identifier per group member.
"""

import pytest

from conftest import run_once
from repro.bench.harness import measure_operator_overhead
from repro.bench.reporting import render_operator_overhead
from repro.engine.expressions import col, collect_list
from repro.engine.session import Session
from repro.workloads.scenarios import load_workload

SCALE = 1.0
REPEATS = 5


def test_operator_overhead_table(benchmark, save_result):
    measurements = run_once(
        benchmark, lambda: measure_operator_overhead(scale=SCALE, repeats=REPEATS)
    )
    save_result("sec731_operator_overhead", render_operator_overhead(measurements))
    assert {m.operator for m in measurements} == {
        "filter",
        "select",
        "flatten",
        "union",
        "join",
        "aggregate",
    }


@pytest.mark.parametrize("operator", ["filter", "flatten", "aggregate"])
def test_single_operator_capture(benchmark, operator):
    """pytest-benchmark timing of one capture-enabled micro-pipeline."""
    tweets = load_workload("twitter", SCALE)

    def run():
        session = Session(4)
        base = session.create_dataset(tweets, "tweets.json")
        if operator == "filter":
            ds = base.filter(col("retweet_count") == 0)
        elif operator == "flatten":
            ds = base.flatten("user_mentions", "m_user")
        else:
            ds = base.group_by(col("user.id_str")).agg(
                collect_list(col("text")).alias("texts")
            )
        return len(ds.execute(capture=True))

    assert benchmark(run) > 0
