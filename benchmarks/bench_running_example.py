"""E1: the running example (Tabs. 1-2, Figs. 1-4) as a benchmark.

Times the full Pebble cycle -- capture-enabled execution of the Fig. 1
pipeline plus the Fig. 4 provenance question -- and writes the resulting
Fig. 2 trees, together with the annotation-count comparison against
value-level (Lipstick-style) annotation (35 vs. 5, Sec. 2).
"""

from conftest import run_once
from repro.baselines.annotations import count_annotations
from repro.engine.session import Session
from repro.nested.values import DataItem
from repro.pebble.query import query_provenance
from repro.workloads.scenarios import (
    RUNNING_EXAMPLE_PATTERN,
    RUNNING_EXAMPLE_TWEETS,
    build_running_example,
)


def test_running_example_cycle(benchmark):
    """Capture + query of the running example, timed end to end."""

    def cycle():
        pipeline = build_running_example(Session(2), list(RUNNING_EXAMPLE_TWEETS))
        execution = pipeline.execute(capture=True)
        return query_provenance(execution, RUNNING_EXAMPLE_PATTERN)

    provenance = benchmark(cycle)
    assert provenance.all_ids()["tweets.json"] == [2, 3]


def test_running_example_artefacts(benchmark, save_result):
    def produce():
        pipeline = build_running_example(Session(2), list(RUNNING_EXAMPLE_TWEETS))
        execution = pipeline.execute(capture=True)
        provenance = query_provenance(execution, RUNNING_EXAMPLE_PATTERN)
        annotations = count_annotations(
            DataItem(tweet) for tweet in RUNNING_EXAMPLE_TWEETS
        )
        return provenance, annotations

    provenance, annotations = run_once(benchmark, produce)
    text = (
        "E1 -- running example (Sec. 2)\n"
        f"value-level annotations needed (Lipstick): {annotations}\n"
        f"top-level identifiers needed (Pebble):     {len(RUNNING_EXAMPLE_TWEETS)}\n\n"
        "Backtraced provenance trees (Fig. 2):\n" + provenance.render()
    )
    save_result("e1_running_example", text)
    assert annotations == 35
