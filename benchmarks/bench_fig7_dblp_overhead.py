"""Fig. 7: capture runtime overhead on the DBLP scenarios D1-D5.

The paper reports lower relative overheads than on Twitter (5-30 %), with
D3 lowest (~8 %) because materialising its large result dominates.  The
same ordering should emerge on the synthetic corpus.
"""

import pytest

from conftest import run_once
from repro.bench.harness import measure_capture_overhead
from repro.bench.reporting import render_capture_overhead
from repro.engine.session import Session
from repro.workloads.scenarios import DBLP_SCENARIOS, load_workload, scenario

SCALES = (0.5, 1.0, 2.0)
REPEATS = 5


@pytest.mark.parametrize("name", DBLP_SCENARIOS)
def test_capture_run(benchmark, name):
    spec = scenario(name)
    data = load_workload(spec.kind, 1.0)

    def run():
        execution = spec.build(Session(4), data).execute(capture=True)
        execution.store.serialize()
        return len(execution)

    rows = benchmark(run)
    assert rows > 0


def test_fig7_table(benchmark, save_result):
    def sweep():
        return measure_capture_overhead(DBLP_SCENARIOS, scales=SCALES, repeats=REPEATS)

    measurements = run_once(benchmark, sweep)
    save_result(
        "fig7_dblp_capture_overhead",
        render_capture_overhead(measurements, "Fig. 7 -- runtime overhead, DBLP scenarios"),
    )
    for name in DBLP_SCENARIOS:
        series = sorted(
            (m for m in measurements if m.scenario == name), key=lambda m: m.scale
        )
        assert series[-1].plain_seconds > series[0].plain_seconds
