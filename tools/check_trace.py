#!/usr/bin/env python
"""Validate a Chrome trace-event JSON file (CI trace-artifact schema check).

Checks, exiting non-zero on the first violation:

* the file is JSON with a ``traceEvents`` list,
* every event carries ``ph``, ``name``, ``ts``, ``pid``, ``tid``,
* every ``B`` event has a matching ``E`` on the same (pid, tid) stack
  (same name, LIFO order, nothing left open),
* optionally (``--require NAME``) that a span with the given name prefix
  exists -- used to assert the traced workload actually exercised a phase.

Usage::

    python tools/check_trace.py trace.json --require backtrace --require segment-read
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.tracer import iter_b_e_pairs  # noqa: E402

REQUIRED_KEYS = ("ph", "name", "ts", "pid", "tid")


def check(path: str, require: list[str]) -> list[str]:
    """Return a list of violations (empty means the trace is well-formed)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path}: not readable JSON: {error}"]

    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no traceEvents list"]
    if not events:
        return [f"{path}: traceEvents is empty"]

    errors = []
    for index, event in enumerate(events):
        missing = [key for key in REQUIRED_KEYS if key not in event]
        if missing:
            errors.append(f"event #{index} ({event.get('name')!r}) missing {missing}")
    if errors:
        return errors

    try:
        pairs = list(iter_b_e_pairs(events))
    except ValueError as error:
        return [f"{path}: unbalanced B/E events: {error}"]
    if not pairs:
        return [f"{path}: no duration (B/E) events"]

    names = {begin["name"] for begin, _ in pairs}
    for prefix in require:
        if not any(name.startswith(prefix) for name in names):
            errors.append(f"{path}: no span named {prefix!r}* (have: {sorted(names)})")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="+", help="trace JSON file(s) to validate")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="require a span whose name starts with NAME (repeatable)",
    )
    args = parser.parse_args(argv)
    failed = False
    for path in args.trace:
        errors = check(path, args.require)
        if errors:
            failed = True
            for error in errors:
                print(f"FAIL {error}", file=sys.stderr)
        else:
            print(f"ok {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
