#!/usr/bin/env python3
"""Fail the build when the bench history shows a performance regression.

Reads the append-only JSONL written by ``repro bench`` (one record per
measurement, keyed by figure/scenario/config) and compares each series'
newest observation against the median of the previous ``--window`` runs.

Exit codes: 0 clean (or no history yet), 1 at least one series regressed
by more than ``--threshold``.

Usage::

    python tools/bench_regress.py
    python tools/bench_regress.py --history benchmarks/history/history.jsonl \
        --threshold 0.2 --window 5
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Runs straight from a checkout without installation.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.history import (  # noqa: E402
    DEFAULT_HISTORY_PATH,
    detect_regressions,
    read_history,
    render_regressions,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare the latest bench run against its rolling baseline"
    )
    parser.add_argument("--history", default=DEFAULT_HISTORY_PATH,
                        help="bench history JSONL (default: %(default)s)")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="allowed slowdown fraction (default: 0.2 = +20%%)")
    parser.add_argument("--window", type=int, default=5,
                        help="baseline = median of this many previous runs")
    args = parser.parse_args(argv)

    records = read_history(args.history)
    if not records:
        print(f"bench history: {args.history} absent or empty, nothing to compare")
        return 0
    findings = detect_regressions(
        records, threshold=args.threshold, window=args.window
    )
    print(f"bench history: {len(records)} record(s) in {args.history}")
    print(render_regressions(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
