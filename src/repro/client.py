"""``repro.connect``: one client for a warehouse path or a served URL.

The 2.0 API collapses the two ways of asking provenance questions --
opening a :class:`~repro.warehouse.Warehouse` directly and talking to a
``repro serve`` (or fleet router) endpoint -- behind a single factory::

    client = repro.connect("file:///data/warehouse")   # or a bare path
    client = repro.connect("http://127.0.0.1:9410")    # server or router

    answer = client.backtrace('root{//id_str="lp"}', run="run-0001-example")
    report = client.sar(["lp"], page=1)["report"]

Both transports implement the same :class:`ProvenanceClient` protocol with
the same keyword-only signatures and return the same payload shapes -- a
``backtrace`` answer carries ``result``/``query_seconds``/``server``
whether it was computed in-process or fetched over HTTP, and audit reports
(including erasure digests) are byte-identical across transports.  Code
written against the protocol runs unchanged when a local prototype grows a
serve fleet.

The local transport is a private :class:`~repro.serve.service.QueryService`
(not a bare warehouse), so both sides share one code path: admission
control, pattern-result caching, and catalog-freshness checks behave the
same way everywhere.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable
from urllib.parse import urlsplit

from repro.errors import ReproError

__all__ = ["connect", "ProvenanceClient", "LocalClient", "RemoteClient"]


@runtime_checkable
class ProvenanceClient(Protocol):
    """What every ``repro.connect`` handle can do, transport aside."""

    def backtrace(
        self,
        pattern: str,
        *,
        run: str | None = None,
        method: str = "lazy",
        analyze: bool = False,
    ) -> dict[str, Any]:
        """Backward provenance of *pattern* over one stored run."""
        ...

    def forward(
        self,
        pattern: str,
        *,
        run: str | None = None,
        method: str = "lazy",
        analyze: bool = False,
    ) -> dict[str, Any]:
        """Forward provenance: matched source items -> derived outputs."""
        ...

    def sar(
        self,
        subjects: list[str],
        *,
        template: str | None = None,
        run: str | None = None,
        runs: list[str] | None = None,
        method: str = "lazy",
        page: int = 1,
        page_size: int = 100,
    ) -> dict[str, Any]:
        """One page of a bulk subject-access request."""
        ...

    def verify_erasure(
        self,
        subjects: list[str],
        *,
        template: str | None = None,
        run: str | None = None,
        runs: list[str] | None = None,
        method: str = "lazy",
    ) -> dict[str, Any]:
        """An erasure verification; ``["report"]["digest"]`` signs it."""
        ...

    def stats(self, *, run: str | None = None) -> dict[str, Any]:
        """The metrics registry describing a run (``repro stats`` JSON)."""
        ...

    def runs(self) -> list[dict[str, Any]]:
        """Every catalogued run, oldest first."""
        ...

    def close(self) -> None:
        """Release transport resources; safe to call twice."""
        ...


class LocalClient:
    """The file transport: an in-process query service over one root."""

    def __init__(self, root: str, **config_overrides: Any):
        from repro.serve.service import QueryService, ServeConfig

        self._service = QueryService.open(
            ServeConfig(root=root, **config_overrides)
        )
        self.root = root

    def backtrace(
        self,
        pattern: str,
        *,
        run: str | None = None,
        method: str = "lazy",
        analyze: bool = False,
    ) -> dict[str, Any]:
        self._service.check_catalog()
        return self._service.query(
            pattern, run_id=run, method=method, analyze=analyze
        )

    def forward(
        self,
        pattern: str,
        *,
        run: str | None = None,
        method: str = "lazy",
        analyze: bool = False,
    ) -> dict[str, Any]:
        self._service.check_catalog()
        return self._service.forward(
            pattern, run_id=run, method=method, analyze=analyze
        )

    def sar(
        self,
        subjects: list[str],
        *,
        template: str | None = None,
        run: str | None = None,
        runs: list[str] | None = None,
        method: str = "lazy",
        page: int = 1,
        page_size: int = 100,
    ) -> dict[str, Any]:
        self._service.check_catalog()
        kwargs: dict[str, Any] = {}
        if template is not None:
            kwargs["template"] = template
        return self._service.sar(
            subjects,
            run_id=run,
            runs=runs,
            method=method,
            page=page,
            page_size=page_size,
            **kwargs,
        )

    def verify_erasure(
        self,
        subjects: list[str],
        *,
        template: str | None = None,
        run: str | None = None,
        runs: list[str] | None = None,
        method: str = "lazy",
    ) -> dict[str, Any]:
        self._service.check_catalog()
        kwargs: dict[str, Any] = {}
        if template is not None:
            kwargs["template"] = template
        return self._service.erasure(
            subjects, run_id=run, runs=runs, method=method, **kwargs
        )

    def stats(self, *, run: str | None = None) -> dict[str, Any]:
        self._service.check_catalog()
        return self._service.run_stats(run).to_json()

    def runs(self) -> list[dict[str, Any]]:
        self._service.check_catalog()
        return self._service.runs()

    def close(self) -> None:
        self._service.close()

    def __enter__(self) -> "LocalClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"LocalClient({self.root!r})"


class RemoteClient:
    """The HTTP transport: a serve worker or fleet router behind ``/v1``."""

    def __init__(self, url: str, **client_options: Any):
        from repro.serve.client import ServeClient

        self._client = ServeClient(url, **client_options)
        self.url = self._client.base_url

    def backtrace(
        self,
        pattern: str,
        *,
        run: str | None = None,
        method: str = "lazy",
        analyze: bool = False,
    ) -> dict[str, Any]:
        return self._client.query(
            pattern, run_id=run, method=method, analyze=analyze
        )

    def forward(
        self,
        pattern: str,
        *,
        run: str | None = None,
        method: str = "lazy",
        analyze: bool = False,
    ) -> dict[str, Any]:
        return self._client.forward(
            pattern, run_id=run, method=method, analyze=analyze
        )

    def sar(
        self,
        subjects: list[str],
        *,
        template: str | None = None,
        run: str | None = None,
        runs: list[str] | None = None,
        method: str = "lazy",
        page: int = 1,
        page_size: int = 100,
    ) -> dict[str, Any]:
        return self._client.sar(
            subjects,
            template=template,
            run_id=run,
            runs=runs,
            method=method,
            page=page,
            page_size=page_size,
        )

    def verify_erasure(
        self,
        subjects: list[str],
        *,
        template: str | None = None,
        run: str | None = None,
        runs: list[str] | None = None,
        method: str = "lazy",
    ) -> dict[str, Any]:
        return self._client.erasure(
            subjects, template=template, run_id=run, runs=runs, method=method
        )

    def stats(self, *, run: str | None = None) -> dict[str, Any]:
        return self._client.run_stats(run)

    def runs(self) -> list[dict[str, Any]]:
        return self._client.runs()

    def close(self) -> None:
        pass  # urllib opens one connection per request; nothing is held

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"RemoteClient({self.url!r})"


def connect(url: str, **options: Any) -> ProvenanceClient:
    """Open a provenance client for a warehouse path or a served endpoint.

    Accepted forms:

    * ``file:///data/warehouse`` or a bare filesystem path -- an in-process
      :class:`LocalClient` (no server involved);
    * ``http://host:port`` / ``https://host:port`` -- a :class:`RemoteClient`
      speaking ``/v1`` to a single ``repro serve`` worker or a fleet router.

    Extra keyword arguments flow to the transport: serving knobs
    (``workers=``, ``cache_size=``, ...) for ``file:``, client knobs
    (``timeout=``, ``policy=``) for ``http(s):``.
    """
    if not isinstance(url, str) or not url.strip():
        raise ReproError("connect needs a path or URL string")
    split = urlsplit(url)
    if split.scheme in ("http", "https"):
        return RemoteClient(url, **options)
    if split.scheme == "file":
        path = (split.netloc or "") + split.path
        if not path:
            raise ReproError(f"file URL carries no path: {url!r}")
        return LocalClient(path, **options)
    if split.scheme in ("", None) or len(split.scheme) == 1:  # bare or C:\ path
        return LocalClient(url, **options)
    raise ReproError(
        f"unsupported connect scheme {split.scheme!r} (use file:// or http(s)://)"
    )
