"""The warehouse facade: record, list, load, and query stored runs.

The paper's motivation for eager capture is that provenance outlives the
pipeline run (auditing and usage queries happen days later, Sec. 7.4).
:class:`Warehouse` is the durable home those queries run against: many
captured executions under one root directory, catalogued in
``catalog.json``, each run spilled into per-operator binary segments that a
:class:`~repro.warehouse.reader.LazyProvenanceStore` decodes on demand.

Directory layout::

    <root>/
      catalog.json                   run registry (name, timestamp, sizes)
      runs/<run_id>/
        manifest.json                footer index: oid -> segment/offsets
        rows.seg                     provenance-annotated result rows
        ops/op-<oid>.seg             one segment per operator
"""

from __future__ import annotations

import json
import time
from contextlib import nullcontext
from pathlib import Path as FsPath
from typing import Any

from repro.core.backtrace.result import ProvenanceResult
from repro.core.treepattern.pattern import TreePattern
from repro.engine.config import resolve_partitions
from repro.engine.executor import ExecutionResult
from repro.engine.metrics import ExecutionMetrics, SegmentCacheMetrics
from repro.engine.partition import partition_rows
from repro.errors import ProvenanceError
from repro.nested.schema import Schema, infer_schema
from repro.nested.types import StructType
from repro.obs.breakdown import QueryBreakdown, activate
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import observe_query, slow_threshold_seconds
from repro.obs.tracer import get_tracer
from repro.warehouse.catalog import Catalog, RunRecord
from repro.warehouse.index import RunIndex, ensure_index
from repro.warehouse.reader import (
    DEFAULT_CACHE_SIZE,
    LazyProvenanceStore,
    RestoredPlanNode,
    load_manifest,
    read_rows,
)
from repro.warehouse.writer import write_run

__all__ = ["Warehouse"]

RUNS_DIR = "runs"

#: Execution accounting recorded next to a run's manifest (``repro stats``).
METRICS_NAME = "metrics.json"

#: Shared no-op context for the breakdown-off query path.
_NO_CONTEXT = nullcontext()


class Warehouse:
    """A persistent, indexed store of many captured executions."""

    def __init__(self, root: FsPath, catalog: Catalog):
        self.root = FsPath(root)
        self._catalog = catalog

    @classmethod
    def open(cls, root: FsPath | str) -> "Warehouse":
        """Open (creating if needed) the warehouse rooted at *root*."""
        root = FsPath(root)
        if root.exists() and not root.is_dir():
            raise ProvenanceError(f"warehouse root {root} is not a directory")
        root.mkdir(parents=True, exist_ok=True)
        return cls(root, Catalog.load(root))

    # -- recording -------------------------------------------------------------

    def record(
        self, execution: ExecutionResult, name: str = "run", index: bool = True
    ) -> RunRecord:
        """Persist one capture-enabled execution; returns its catalog record.

        By default the run's query-side index (``index.seg``) is built in
        the same step; pass ``index=False`` to skip it (``repro index
        build`` backfills later, producing identical bytes).
        """
        if execution.store is None:
            raise ProvenanceError("only capture-enabled executions can be recorded")
        created = time.time()
        run_id = self._catalog.new_run_id(name)
        run_dir = self.root / RUNS_DIR / run_id
        with get_tracer().span("warehouse-record", "warehouse", run_id=run_id):
            manifest = write_run(run_dir, execution, run_id, name, created)
            # Keep the execution's accounting next to the segments so
            # ``repro stats`` can rebuild a registry for the stored run.
            with open(run_dir / METRICS_NAME, "w", encoding="utf-8") as handle:
                json.dump(execution.metrics.to_json(), handle, indent=2)
            if index:
                ensure_index(run_dir, manifest)
        record = RunRecord(
            run_id,
            name,
            created,
            manifest["sink_oid"],
            len(manifest["operators"]),
            manifest["rows"]["count"],
            manifest["total_bytes"],
            indexed=index,
        )
        self._catalog.add(record)
        self._catalog.save()
        get_logger(run_id).event(
            "run-recorded",
            name=name,
            operators=record.operator_count,
            rows=record.row_count,
            bytes=record.total_bytes,
            indexed=index,
        )
        return record

    def build_index(self, run_id: str | None = None, force: bool = False) -> dict[str, Any]:
        """Backfill (or rebuild with ``force``) one run's persisted index.

        Returns the manifest's ``"index"`` entry.  The catalog record's
        ``indexed`` flag is updated and saved, so listings reflect it.
        """
        record = self.resolve(run_id)
        run_dir = self.root / RUNS_DIR / record.run_id
        manifest = load_manifest(run_dir)
        entry = manifest.get("index")
        if entry is None or force or not (run_dir / entry["segment"]).exists():
            entry = ensure_index(run_dir, manifest)
        if not record.indexed:
            record.indexed = True
            self._catalog.save()
        get_logger(record.run_id).event("index-built", **{
            key: entry[key] for key in ("inputs", "terms", "items", "paths")
        })
        return entry

    def load_index(self, run_id: str | None = None) -> "RunIndex | None":
        """The persisted index of a run, or ``None`` (callers fall back to scan)."""
        record = self.resolve(run_id)
        run_dir = self.root / RUNS_DIR / record.run_id
        return RunIndex.load(run_dir, load_manifest(run_dir))

    def forward(
        self,
        run_id: str | None,
        pattern: TreePattern | str,
        method: str = "lazy",
        use_index: bool = True,
        num_partitions: int | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        breakdown: QueryBreakdown | None = None,
    ) -> "ForwardResult":
        """Trace forward: which outputs of a stored run derive from the
        input items matching *pattern*?  The association-level dual of
        :meth:`backtrace` (see :mod:`repro.audit.forward`)."""
        from repro.audit.forward import trace_forward

        return trace_forward(
            self,
            pattern,
            run_id=run_id,
            method=method,
            use_index=use_index,
            num_partitions=num_partitions,
            cache_size=cache_size,
            breakdown=breakdown,
        )

    def refresh(self) -> bool:
        """Reload the catalog from disk; ``True`` if the run set changed.

        A long-lived reader (the ``repro.serve`` query service) opens the
        warehouse once but other processes may keep recording runs into the
        same root; refreshing picks those up without reopening.  Stored runs
        are immutable, so a refresh only ever *adds* visibility -- but name
        resolution ("newest run named X") and cached pattern results must be
        re-derived when the set changes.
        """
        before = {record.run_id for record in self._catalog.runs()}
        self._catalog = Catalog.load(self.root)
        return {record.run_id for record in self._catalog.runs()} != before

    # -- listing / inspection --------------------------------------------------

    def runs(self) -> list[RunRecord]:
        """All catalogued runs, oldest first (reads only the catalog)."""
        return self._catalog.runs()

    def resolve(self, run_id: str | None = None) -> RunRecord:
        """Resolve a run id or name to its record (``None``: the newest run)."""
        return self._catalog.find(run_id) if run_id else self._catalog.latest()

    def run_dir(self, run_id: str) -> FsPath:
        return self.root / RUNS_DIR / self._catalog.find(run_id).run_id

    def inspect(self, run_id: str) -> dict[str, Any]:
        """Per-operator summary of one run, served from its footer index."""
        record = self._catalog.find(run_id)
        manifest = load_manifest(self.run_dir(record.run_id))
        operators = [
            {
                "oid": int(oid),
                "op_type": entry["op_type"],
                "label": entry["label"],
                "kind": entry["kind"],
                "records": entry["records"],
                "segment_bytes": entry["segment_bytes"],
                "source_name": entry.get("source_name"),
            }
            for oid, entry in sorted(
                manifest["operators"].items(), key=lambda pair: int(pair[0])
            )
        ]
        return {
            "run_id": record.run_id,
            "name": record.name,
            "created": record.created_iso(),
            "sink_oid": manifest["sink_oid"],
            "rows": manifest["rows"]["count"],
            "total_bytes": manifest["total_bytes"],
            "operators": operators,
        }

    # -- lazy loading / querying -----------------------------------------------

    def load(
        self,
        run_id: str | None = None,
        num_partitions: int | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        metrics: SegmentCacheMetrics | None = None,
    ) -> ExecutionResult:
        """Restore a run as a queryable execution with a lazy store.

        The result rows are materialised (tree-pattern matching scans them
        anyway), but the provenance store behind the execution is a
        :class:`LazyProvenanceStore`: operators decode only when a backtrace
        touches them.  With no *run_id*, the newest run loads.
        """
        num_partitions = resolve_partitions(num_partitions)
        record = self._catalog.find(run_id) if run_id else self._catalog.latest()
        run_dir = self.root / RUNS_DIR / record.run_id
        with get_tracer().span("warehouse-load", "warehouse", run_id=record.run_id):
            manifest = load_manifest(run_dir)
            store = LazyProvenanceStore(
                run_dir, manifest, cache_size=cache_size, metrics=metrics
            )
            rows = read_rows(run_dir, manifest, metrics=store.metrics)
        from repro.engine.executor import SCHEMA_SAMPLE

        schema = (
            infer_schema(item for _, item in rows[:SCHEMA_SAMPLE])
            if rows
            else Schema(StructType())
        )
        return ExecutionResult(
            RestoredPlanNode(manifest["sink_oid"]),
            partition_rows(rows, num_partitions),
            schema,
            store,
            ExecutionMetrics(),
        )

    def backtrace(
        self,
        run_id: str | None,
        pattern: TreePattern | str,
        num_partitions: int | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        breakdown: QueryBreakdown | None = None,
    ) -> tuple[ProvenanceResult, SegmentCacheMetrics]:
        """Answer a structural provenance question against a stored run.

        Returns the provenance result plus the segment-cache metrics of the
        query, whose miss counter equals the number of operator segments the
        backtrace actually decoded.  Pass a started-or-not
        :class:`QueryBreakdown` to collect per-phase explain-analyze timings;
        when the ``REPRO_SLOW_QUERY_MS`` budget is set, one is built anyway
        so over-budget queries land in the slow log with their breakdown.
        """
        from repro.pebble.query import query_provenance

        threshold = slow_threshold_seconds()
        if breakdown is None and threshold is not None:
            breakdown = QueryBreakdown()
        if breakdown is not None:
            breakdown.start()
        with activate(breakdown) if breakdown is not None else _NO_CONTEXT:
            with get_tracer().span("warehouse-query", "warehouse") as span:
                if breakdown is not None:
                    with breakdown.phase("load"):
                        execution = self.load(
                            run_id, num_partitions=num_partitions, cache_size=cache_size
                        )
                else:
                    execution = self.load(
                        run_id, num_partitions=num_partitions, cache_size=cache_size
                    )
                result = query_provenance(execution, pattern)
                assert isinstance(execution.store, LazyProvenanceStore)
                metrics = execution.store.metrics
                span.set(
                    run_id=execution.store.run_id,
                    segments_decoded=metrics.misses,
                    bytes_read=metrics.bytes_read,
                )
        if breakdown is not None:
            breakdown.count(
                segments_decoded=metrics.misses,
                cache_hits=metrics.hits,
                cache_misses=metrics.misses,
                bytes_read=metrics.bytes_read,
            )
            breakdown.finish()
            observe_query(
                "backtrace",
                execution.store.run_id,
                str(pattern),
                breakdown.total_seconds,
                breakdown=breakdown.to_json(),
                threshold=threshold,
            )
        metrics.publish()
        get_logger(execution.store.run_id).event(
            "warehouse-query",
            pattern=str(pattern),
            matched=len(result.matched_output_ids),
            segments_decoded=metrics.misses,
            bytes_read=metrics.bytes_read,
            hit_rate=metrics.hit_rate,
        )
        return result, metrics

    def stats(
        self,
        run_id: str | None = None,
        pattern: TreePattern | str | None = None,
        registry: MetricsRegistry | None = None,
    ) -> MetricsRegistry:
        """Build a metrics registry describing one stored run.

        Folds the run's footer index (operator/record/byte counts) and the
        execution accounting recorded at ``record`` time into *registry*
        (a fresh one by default).  With *pattern*, additionally runs the
        backtrace and folds its segment-cache behaviour in, so the returned
        registry answers "what would this query touch?" as numbers.
        """
        registry = registry if registry is not None else MetricsRegistry()
        record = self._catalog.find(run_id) if run_id else self._catalog.latest()
        run_dir = self.root / RUNS_DIR / record.run_id
        manifest = load_manifest(run_dir)
        registry.gauge("repro_run_operators", run_id=record.run_id).set(
            len(manifest["operators"])
        )
        registry.gauge("repro_run_rows", run_id=record.run_id).set(
            manifest["rows"]["count"]
        )
        registry.gauge("repro_run_bytes", run_id=record.run_id).set(
            manifest["total_bytes"]
        )
        for oid, entry in sorted(manifest["operators"].items(), key=lambda p: int(p[0])):
            registry.counter(
                "repro_run_operator_records_total", op_type=entry["op_type"]
            ).inc(entry["records"])
        metrics_path = run_dir / METRICS_NAME
        if metrics_path.exists():
            with open(metrics_path, "r", encoding="utf-8") as handle:
                stored = json.load(handle)
            registry.gauge("repro_run_total_seconds", run_id=record.run_id).set(
                stored.get("total_seconds", 0.0)
            )
            for op in stored.get("operators", ()):
                registry.counter(
                    "repro_run_capture_seconds_total", run_id=record.run_id
                ).inc(op.get("capture_seconds", 0.0))
            # Scheduler fault-tolerance accounting (absent in pre-1.1 runs).
            sched = stored.get("scheduler") or {}
            if sched.get("backend"):
                backend = sched["backend"]
                registry.counter(
                    "repro_run_task_attempts_total",
                    run_id=record.run_id,
                    scheduler=backend,
                ).inc(sched.get("task_attempts", 0))
                registry.counter(
                    "repro_run_task_retries_total",
                    run_id=record.run_id,
                    scheduler=backend,
                ).inc(sched.get("task_retries", 0))
                registry.counter(
                    "repro_run_task_timeouts_total",
                    run_id=record.run_id,
                    scheduler=backend,
                ).inc(sched.get("task_timeouts", 0))
        if pattern is not None:
            _, cache_metrics = self.backtrace(record.run_id, pattern)
            cache_metrics.publish(registry)
        return registry

    def __len__(self) -> int:
        return len(self._catalog)

    def __repr__(self) -> str:
        return f"Warehouse({self.root}, {len(self._catalog)} runs)"
