"""The warehouse facade: record, list, load, and query stored runs.

The paper's motivation for eager capture is that provenance outlives the
pipeline run (auditing and usage queries happen days later, Sec. 7.4).
:class:`Warehouse` is the durable home those queries run against: many
captured executions under one root directory, catalogued in
``catalog.json``, each run spilled into per-operator binary segments that a
:class:`~repro.warehouse.reader.LazyProvenanceStore` decodes on demand.

Directory layout::

    <root>/
      catalog.json                   run registry (name, timestamp, sizes)
      runs/<run_id>/                 legacy flat layout (unsharded roots)
        manifest.json                footer index: oid -> segment/offsets
        rows.seg                     provenance-annotated result rows
        ops/op-<oid>.seg             one segment per operator
        ops/range-NNNN/op-<oid>.seg  sub-sharded segments (large runs)
      shards/<shard>/runs/<run_id>/  sharded layout (after ``init_shards``)

A sharded warehouse places each run onto a named shard by consistent-hashing
its run id (:mod:`repro.core.ring`), records the placement in the catalog's
shard manifest, and bumps that shard's epoch -- the per-shard generalisation
of the catalog stat signature that lets long-lived readers invalidate only
what changed.  All read paths go through the catalog record's ``shard``
field, so sharded and flat layouts can coexist in one root (e.g. a legacy
warehouse mid-``rebalance``).
"""

from __future__ import annotations

import json
import time
from contextlib import nullcontext
from pathlib import Path as FsPath
from typing import Any

from repro.core.backtrace.result import ProvenanceResult
from repro.core.ring import DEFAULT_REPLICAS, HashRing
from repro.core.treepattern.pattern import TreePattern
from repro.engine.config import resolve_partitions
from repro.engine.executor import ExecutionResult
from repro.engine.metrics import ExecutionMetrics, SegmentCacheMetrics
from repro.engine.partition import partition_rows
from repro.errors import LiveRunError, ProvenanceError
from repro.nested.schema import Schema, infer_schema
from repro.nested.types import StructType
from repro.obs.breakdown import QueryBreakdown, activate
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import observe_query, slow_threshold_seconds
from repro.obs.tracer import get_tracer
from repro.warehouse.catalog import LEGACY_SHARD, Catalog, RunRecord, ShardManifest
from repro.warehouse.index import RunIndex, ensure_index
from repro.warehouse.live import (
    LiveProvenanceStore,
    MergedRunIndex,
    append_epoch,
    check_not_epoch_layout,
    compact_live_run,
    create_live_manifest,
    is_epoch_layout,
    read_epoch_rows,
    retain_epochs,
    seal_live_manifest,
)
from repro.warehouse.reader import (
    DEFAULT_CACHE_SIZE,
    LazyProvenanceStore,
    RestoredPlanNode,
    load_manifest,
    read_rows,
)
from repro.warehouse.writer import DEFAULT_SUB_SHARD_SPAN, write_run

__all__ = ["Warehouse"]

RUNS_DIR = "runs"
SHARDS_DIR = "shards"

#: Execution accounting recorded next to a run's manifest (``repro stats``).
METRICS_NAME = "metrics.json"

#: Shared no-op context for the breakdown-off query path.
_NO_CONTEXT = nullcontext()


class Warehouse:
    """A persistent, indexed store of many captured executions."""

    def __init__(self, root: FsPath, catalog: Catalog):
        self.root = FsPath(root)
        self._catalog = catalog

    @classmethod
    def open(cls, root: FsPath | str) -> "Warehouse":
        """Open (creating if needed) the warehouse rooted at *root*."""
        root = FsPath(root)
        if root.exists() and not root.is_dir():
            raise ProvenanceError(f"warehouse root {root} is not a directory")
        root.mkdir(parents=True, exist_ok=True)
        return cls(root, Catalog.load(root))

    # -- shard placement -------------------------------------------------------

    @property
    def sharded(self) -> bool:
        return self._catalog.manifest is not None

    def _placement_ring(self) -> HashRing:
        manifest = self._catalog.manifest
        if manifest is None:
            raise ProvenanceError(
                f"warehouse at {self.root} is unsharded (run init_shards first)"
            )
        return HashRing(manifest.shards, replicas=manifest.replicas)

    def shard_for(self, run_id: str) -> str | None:
        """The shard a run with *run_id* belongs on (``None``: flat layout)."""
        if self._catalog.manifest is None:
            return None
        return self._placement_ring().assign(run_id)

    def _dir_for(self, record: RunRecord) -> FsPath:
        """The run's directory under its shard (or the legacy flat layout)."""
        if record.shard:
            return self.root / SHARDS_DIR / record.shard / RUNS_DIR / record.run_id
        return self.root / RUNS_DIR / record.run_id

    def init_shards(
        self, count: int, replicas: int = DEFAULT_REPLICAS, prefix: str = "shard"
    ) -> list[str]:
        """Declare *count* named shards for this warehouse.

        Creates the shard manifest (names ``shard-00 .. shard-NN``) so
        subsequent :meth:`record` calls hash their run ids onto shards.
        Existing runs stay where they are until :meth:`rebalance` moves
        them.  Idempotent for the same count; shrinking is refused (that
        would orphan directories) -- grow and :meth:`rebalance` instead.
        """
        if count < 1:
            raise ProvenanceError(f"shard count must be >= 1, got {count}")
        names = [f"{prefix}-{index:02d}" for index in range(count)]
        manifest = self._catalog.manifest
        if manifest is not None:
            if names == manifest.shards:
                return names
            missing = set(manifest.shards) - set(names)
            if missing:
                raise ProvenanceError(
                    f"cannot drop shards {sorted(missing)}; rebalance to a "
                    "superset instead"
                )
            for name in names:
                if name not in manifest.shards:
                    manifest.shards.append(name)
                    manifest.epochs.setdefault(name, 0)
        else:
            self._catalog.manifest = ShardManifest(
                names, replicas, {name: 0 for name in names}
            )
        for name in names:
            (self.root / SHARDS_DIR / name / RUNS_DIR).mkdir(parents=True, exist_ok=True)
        self._catalog.save()
        get_logger("warehouse").event("shards-initialised", shards=names, replicas=replicas)
        return names

    def rebalance(self, count: int | None = None) -> dict[str, Any]:
        """Move every run to the shard its id hashes to; returns a report.

        With *count*, grows the shard set first (``init_shards``).  Each
        moved run bumps both the source and destination shard epochs, so
        serve workers drop exactly the residents and cache entries whose
        storage moved under them.  Runs already in place are untouched --
        consistent hashing keeps that the common case.
        """
        if count is not None:
            self.init_shards(count)
        ring = self._placement_ring()
        moved: list[dict[str, str | None]] = []
        with get_tracer().span("warehouse-rebalance", "warehouse"):
            for record in self._catalog.runs():
                target = ring.assign(record.run_id)
                if target == record.shard:
                    continue
                source_dir = self._dir_for(record)
                target_dir = self.root / SHARDS_DIR / target / RUNS_DIR / record.run_id
                target_dir.parent.mkdir(parents=True, exist_ok=True)
                source_dir.replace(target_dir)
                moved.append(
                    {"run_id": record.run_id, "from": record.shard, "to": target}
                )
                self._catalog.bump_epoch(record.shard)
                self._catalog.bump_epoch(target)
                record.shard = target
        if moved:
            self._catalog.save()
        report = {
            "shards": list(self._catalog.manifest.shards),  # type: ignore[union-attr]
            "moved": moved,
            "unmoved": len(self._catalog) - len(moved),
        }
        get_logger("warehouse").event("shards-rebalanced", moved=len(moved), unmoved=report["unmoved"])
        return report

    def epoch_vector(self) -> dict[str, int]:
        """``shard -> epoch`` snapshot (see :meth:`Catalog.epoch_vector`)."""
        return self._catalog.epoch_vector()

    def shard_summary(self) -> list[dict[str, Any]]:
        """Per-shard run/row/byte totals for ``repro shard ls``."""
        vector = self._catalog.epoch_vector()
        shards: dict[str, dict[str, Any]] = {
            name: {"shard": name or LEGACY_SHARD, "epoch": epoch, "runs": 0,
                   "rows": 0, "bytes": 0, "run_ids": []}
            for name, epoch in vector.items()
        }
        for record in self._catalog.runs():
            name = record.shard or LEGACY_SHARD
            entry = shards.setdefault(
                name, {"shard": name, "epoch": 0, "runs": 0, "rows": 0,
                       "bytes": 0, "run_ids": []}
            )
            entry["runs"] += 1
            entry["rows"] += record.row_count
            entry["bytes"] += record.total_bytes
            entry["run_ids"].append(record.run_id)
        # The legacy pseudo-shard only shows when it still holds runs.
        if LEGACY_SHARD in shards and not shards[LEGACY_SHARD]["runs"] and self.sharded:
            del shards[LEGACY_SHARD]
        return [shards[name] for name in sorted(shards)]

    # -- recording -------------------------------------------------------------

    def record(
        self,
        execution: ExecutionResult,
        name: str = "run",
        index: bool = True,
        sub_shard_span: int = DEFAULT_SUB_SHARD_SPAN,
    ) -> RunRecord:
        """Persist one capture-enabled execution; returns its catalog record.

        By default the run's query-side index (``index.seg``) is built in
        the same step; pass ``index=False`` to skip it (``repro index
        build`` backfills later, producing identical bytes).  In a sharded
        warehouse the run lands on the shard its id hashes to and that
        shard's epoch advances; *sub_shard_span* bounds operators per
        segment directory (see :func:`write_run`).
        """
        if execution.store is None:
            raise ProvenanceError("only capture-enabled executions can be recorded")
        created = time.time()
        run_id = self._catalog.new_run_id(name)
        shard = self.shard_for(run_id)
        if shard:
            run_dir = self.root / SHARDS_DIR / shard / RUNS_DIR / run_id
        else:
            run_dir = self.root / RUNS_DIR / run_id
        with get_tracer().span(
            "warehouse-record", "warehouse", run_id=run_id, shard=shard or LEGACY_SHARD
        ):
            manifest = write_run(
                run_dir, execution, run_id, name, created, sub_shard_span=sub_shard_span
            )
            # Keep the execution's accounting next to the segments so
            # ``repro stats`` can rebuild a registry for the stored run.
            with open(run_dir / METRICS_NAME, "w", encoding="utf-8") as handle:
                json.dump(execution.metrics.to_json(), handle, indent=2)
            if index:
                ensure_index(run_dir, manifest)
        record = RunRecord(
            run_id,
            name,
            created,
            manifest["sink_oid"],
            len(manifest["operators"]),
            manifest["rows"]["count"],
            manifest["total_bytes"],
            indexed=index,
            shard=shard,
        )
        self._catalog.add(record)
        self._catalog.bump_epoch(shard)
        self._catalog.save()
        get_logger(run_id).event(
            "run-recorded",
            name=name,
            operators=record.operator_count,
            rows=record.row_count,
            bytes=record.total_bytes,
            indexed=index,
            shard=shard or LEGACY_SHARD,
        )
        return record

    # -- streaming capture -----------------------------------------------------

    def create_live_run(self, name: str = "stream", sink_oid: int = 0) -> RunRecord:
        """Start a live (streaming) run; returns its catalog record.

        The run begins empty at segment epoch 0 and grows one epoch per
        :meth:`append_live_epoch` until :meth:`seal_live_run`.  Its catalog
        record carries ``live=True`` plus a segment epoch, so the epoch
        vector gains a per-run entry serve workers can invalidate on.
        """
        created = time.time()
        run_id = self._catalog.new_run_id(name)
        shard = self.shard_for(run_id)
        if shard:
            run_dir = self.root / SHARDS_DIR / shard / RUNS_DIR / run_id
        else:
            run_dir = self.root / RUNS_DIR / run_id
        create_live_manifest(run_dir, run_id, name, created, sink_oid)
        record = RunRecord(
            run_id,
            name,
            created,
            sink_oid,
            0,
            0,
            0,
            indexed=False,
            shard=shard,
            live=True,
            segment_epoch=0,
        )
        self._catalog.add(record)
        self._catalog.bump_epoch(shard)
        self._catalog.save()
        get_logger(run_id).event("live-run-created", name=name, shard=shard or LEGACY_SHARD)
        return record

    def append_live_epoch(
        self,
        run_id: str,
        execution: ExecutionResult,
        *,
        next_pid: int,
        watermark: float | None = None,
        index: bool = True,
    ) -> dict[str, Any]:
        """Append one micro-batch to a live run; returns the epoch entry.

        Only the run's own segment epoch advances -- the shard epoch stays
        put, so serve-side invalidation is segment-granular: cached answers
        over *this* run go stale, everything else on the shard survives.
        """
        record = self._catalog.find(run_id)
        if not record.live:
            raise LiveRunError(f"run {record.run_id!r} is sealed; cannot append")
        run_dir = self._dir_for(record)
        manifest = load_manifest(run_dir)
        with get_tracer().span(
            "warehouse-append-epoch", "warehouse", run_id=record.run_id
        ):
            entry = append_epoch(
                run_dir,
                manifest,
                execution,
                next_pid=next_pid,
                watermark=watermark,
                index=index,
            )
        record.segment_epoch = manifest["segment_epoch"]
        record.row_count = manifest["rows"]["count"]
        record.total_bytes = manifest["total_bytes"]
        oids: set[str] = set()
        for epoch_entry in manifest["epochs"]:
            oids.update(epoch_entry.get("operators", {}))
        record.operator_count = len(oids)
        record.indexed = bool(index)
        # Persist per batch: the catalog's per-run epoch entry is what serve
        # workers stat-compare, so the bump must be durable immediately.
        self._catalog.save()
        get_logger(record.run_id).event(
            "epoch-appended",
            epoch=entry["epoch"],
            rows=entry["rows"],
            watermark=watermark,
        )
        return entry

    def seal_live_run(
        self,
        run_id: str,
        compact: bool = True,
        sub_shard_span: int = DEFAULT_SUB_SHARD_SPAN,
    ) -> RunRecord:
        """Finish a live run: no more appends; optionally compact.

        With ``compact=True`` the epoch layout is rewritten into the
        canonical batch layout (ids remapped to the one-shot batch
        sequence, segments byte-identical to a batch capture) and the
        batch index is built.  With ``compact=False`` the run stays in
        epoch layout -- still fully queryable, and retention still applies.
        """
        record = self._catalog.find(run_id)
        run_dir = self._dir_for(record)
        manifest = load_manifest(run_dir)
        if manifest.get("live"):
            manifest = seal_live_manifest(run_dir, manifest)
        # The seal bumped the manifest's counter; mirror it before compaction
        # replaces the manifest with the (counter-less) batch layout.  The
        # record's epoch stays set forever: dropping it would erase the run's
        # vector entry and mask this very invalidation.
        sealed_epoch = manifest.get("segment_epoch", (record.segment_epoch or 0) + 1)
        if compact:
            with get_tracer().span(
                "warehouse-compact", "warehouse", run_id=record.run_id
            ):
                manifest = compact_live_run(
                    run_dir, manifest, sub_shard_span=sub_shard_span
                )
                ensure_index(run_dir, manifest)
            record.indexed = True
            record.operator_count = len(manifest["operators"])
            record.row_count = manifest["rows"]["count"]
            record.total_bytes = manifest["total_bytes"]
        record.live = False
        record.segment_epoch = sealed_epoch
        self._catalog.save()
        get_logger(record.run_id).event(
            "live-run-sealed", compacted=compact, rows=record.row_count
        )
        return record

    def retain(
        self,
        ttl_seconds: float,
        run_id: str | None = None,
        now: float | None = None,
    ) -> dict[str, Any]:
        """TTL sweep: expire epochs older than *ttl_seconds*; returns a report.

        Applies to every epoch-layout run (or just *run_id*); compacted
        batch runs are untouched (they have no epochs to age out).  Each
        swept run yields a verified retention receipt (see
        :func:`repro.warehouse.live.retain_epochs`).
        """
        records = (
            [self._catalog.find(run_id)] if run_id is not None else self._catalog.runs()
        )
        receipts: list[dict[str, Any]] = []
        for record in records:
            if record.segment_epoch is None:
                continue  # plain batch run: nothing ages out
            run_dir = self._dir_for(record)
            manifest = load_manifest(run_dir)
            receipt = retain_epochs(run_dir, manifest, ttl_seconds, now=now)
            if receipt is None:
                continue
            record.segment_epoch = manifest["segment_epoch"]
            record.row_count = manifest["rows"]["count"]
            record.total_bytes = manifest["total_bytes"]
            receipts.append(receipt)
            get_logger(record.run_id).event(
                "retention-swept",
                expired=len(receipt["expired_epochs"]),
                digest=receipt["digest"][:12],
            )
        if receipts:
            self._catalog.save()
        return {
            "ttl_seconds": ttl_seconds,
            "swept": len(receipts),
            "receipts": receipts,
        }

    def build_index(self, run_id: str | None = None, force: bool = False) -> dict[str, Any]:
        """Backfill (or rebuild with ``force``) one run's persisted index.

        Returns the manifest's ``"index"`` entry.  The catalog record's
        ``indexed`` flag is updated and saved, so listings reflect it.
        Live and sealed-uncompacted runs refuse with :class:`LiveRunError`:
        their indexes grow incrementally, one delta per epoch (the
        ``append_live_epoch(..., index=True)`` path), and are queried
        merged -- there is no full rebuild to run.
        """
        record = self.resolve(run_id)
        run_dir = self._dir_for(record)
        manifest = load_manifest(run_dir)
        check_not_epoch_layout(manifest, "build a batch index")
        entry = manifest.get("index")
        if entry is None or force or not (run_dir / entry["segment"]).exists():
            entry = ensure_index(run_dir, manifest)
        if not record.indexed:
            record.indexed = True
            self._catalog.save()
        get_logger(record.run_id).event("index-built", **{
            key: entry[key] for key in ("inputs", "terms", "items", "paths")
        })
        return entry

    def load_index(self, run_id: str | None = None) -> "RunIndex | MergedRunIndex | None":
        """The persisted index of a run, or ``None`` (callers fall back to scan).

        Epoch-layout runs return a :class:`MergedRunIndex` over their
        per-epoch delta indexes; it answers the same probe surface.
        """
        record = self.resolve(run_id)
        run_dir = self._dir_for(record)
        manifest = load_manifest(run_dir)
        if is_epoch_layout(manifest):
            return MergedRunIndex(run_dir, manifest)
        return RunIndex.load(run_dir, manifest)

    def forward(
        self,
        run_id: str | None,
        pattern: TreePattern | str,
        method: str = "lazy",
        use_index: bool = True,
        num_partitions: int | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        breakdown: QueryBreakdown | None = None,
    ) -> "ForwardResult":
        """Trace forward: which outputs of a stored run derive from the
        input items matching *pattern*?  The association-level dual of
        :meth:`backtrace` (see :mod:`repro.audit.forward`)."""
        from repro.audit.forward import trace_forward

        return trace_forward(
            self,
            pattern,
            run_id=run_id,
            method=method,
            use_index=use_index,
            num_partitions=num_partitions,
            cache_size=cache_size,
            breakdown=breakdown,
        )

    def refresh(self) -> bool:
        """Reload the catalog from disk; ``True`` if membership changed.

        A long-lived reader (the ``repro.serve`` query service) opens the
        warehouse once but other processes may keep recording runs into the
        same root; refreshing picks those up without reopening.  Stored runs
        are immutable, so a refresh only ever *adds* visibility -- but name
        resolution ("newest run named X") and cached pattern results must be
        re-derived when the set changes.  The epoch vector is part of the
        comparison: a rebalance moves run directories without changing the
        run-id set, and open stores must still be dropped.
        """
        before = {record.run_id for record in self._catalog.runs()}
        epochs_before = self._catalog.epoch_vector()
        self._catalog = Catalog.load(self.root)
        return (
            {record.run_id for record in self._catalog.runs()} != before
            or self._catalog.epoch_vector() != epochs_before
        )

    # -- listing / inspection --------------------------------------------------

    def runs(self) -> list[RunRecord]:
        """All catalogued runs, oldest first (reads only the catalog)."""
        return self._catalog.runs()

    def resolve(self, run_id: str | None = None) -> RunRecord:
        """Resolve a run id or name to its record (``None``: the newest run)."""
        return self._catalog.find(run_id) if run_id else self._catalog.latest()

    def run_dir(self, run_id: str) -> FsPath:
        return self._dir_for(self._catalog.find(run_id))

    def inspect(self, run_id: str) -> dict[str, Any]:
        """Per-operator summary of one run, served from its footer index."""
        record = self._catalog.find(run_id)
        manifest = load_manifest(self.run_dir(record.run_id))
        if is_epoch_layout(manifest):
            return self._inspect_epochs(record, manifest)
        operators = [
            {
                "oid": int(oid),
                "op_type": entry["op_type"],
                "label": entry["label"],
                "kind": entry["kind"],
                "records": entry["records"],
                "segment_bytes": entry["segment_bytes"],
                "source_name": entry.get("source_name"),
            }
            for oid, entry in sorted(
                manifest["operators"].items(), key=lambda pair: int(pair[0])
            )
        ]
        return {
            "run_id": record.run_id,
            "name": record.name,
            "created": record.created_iso(),
            "sink_oid": manifest["sink_oid"],
            "rows": manifest["rows"]["count"],
            "total_bytes": manifest["total_bytes"],
            "operators": operators,
        }

    def _inspect_epochs(
        self, record: RunRecord, manifest: dict[str, Any]
    ) -> dict[str, Any]:
        """The epoch-layout inspect view: liveness, watermark, per-epoch sizes."""
        aggregated: dict[int, dict[str, Any]] = {}
        for epoch_entry in manifest["epochs"]:
            for oid_text, entry in epoch_entry.get("operators", {}).items():
                oid = int(oid_text)
                summary = aggregated.setdefault(
                    oid,
                    {
                        "oid": oid,
                        "op_type": entry["op_type"],
                        "label": entry["label"],
                        "kind": entry["kind"],
                        "records": 0,
                        "segment_bytes": 0,
                        "source_name": entry.get("source_name"),
                    },
                )
                summary["records"] += entry["records"]
                summary["segment_bytes"] += entry["segment_bytes"]
        return {
            "run_id": record.run_id,
            "name": record.name,
            "created": record.created_iso(),
            "sink_oid": manifest["sink_oid"],
            "rows": manifest["rows"]["count"],
            "total_bytes": manifest["total_bytes"],
            "operators": [aggregated[oid] for oid in sorted(aggregated)],
            "live": bool(manifest.get("live")),
            "segment_epoch": manifest["segment_epoch"],
            "watermark": manifest.get("watermark"),
            "epochs": [
                {
                    "epoch": entry["epoch"],
                    "rows": entry["rows"],
                    "total_bytes": entry["total_bytes"],
                    "watermark": entry.get("watermark"),
                    "expired": bool(entry.get("expired")),
                }
                for entry in manifest["epochs"]
            ],
        }

    # -- lazy loading / querying -----------------------------------------------

    def load(
        self,
        run_id: str | None = None,
        num_partitions: int | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        metrics: SegmentCacheMetrics | None = None,
        max_epoch: int | None = None,
    ) -> ExecutionResult:
        """Restore a run as a queryable execution with a lazy store.

        The result rows are materialised (tree-pattern matching scans them
        anyway), but the provenance store behind the execution is a
        :class:`LazyProvenanceStore`: operators decode only when a backtrace
        touches them.  With no *run_id*, the newest run loads.

        Epoch-layout runs (live or sealed-uncompacted) load through a
        :class:`LiveProvenanceStore` over the epochs visible *now* -- a
        consistent snapshot, since epoch directories are complete before
        the manifest references them.  *max_epoch* restricts the view to
        epochs admitted at or before it (how a query that was admitted
        mid-ingest stays pinned to what it saw); batch runs ignore it.
        """
        num_partitions = resolve_partitions(num_partitions)
        record = self._catalog.find(run_id) if run_id else self._catalog.latest()
        run_dir = self._dir_for(record)
        with get_tracer().span("warehouse-load", "warehouse", run_id=record.run_id):
            manifest = load_manifest(run_dir)
            store: LazyProvenanceStore | LiveProvenanceStore
            if is_epoch_layout(manifest):
                store = LiveProvenanceStore(run_dir, manifest, max_epoch=max_epoch)
                rows = read_epoch_rows(run_dir, manifest, max_epoch=max_epoch)
            else:
                store = LazyProvenanceStore(
                    run_dir, manifest, cache_size=cache_size, metrics=metrics
                )
                rows = read_rows(run_dir, manifest, metrics=store.metrics)
        from repro.engine.executor import SCHEMA_SAMPLE

        schema = (
            infer_schema(item for _, item in rows[:SCHEMA_SAMPLE])
            if rows
            else Schema(StructType())
        )
        return ExecutionResult(
            RestoredPlanNode(manifest["sink_oid"]),
            partition_rows(rows, num_partitions),
            schema,
            store,
            ExecutionMetrics(),
        )

    def backtrace(
        self,
        run_id: str | None,
        pattern: TreePattern | str,
        num_partitions: int | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        breakdown: QueryBreakdown | None = None,
    ) -> tuple[ProvenanceResult, SegmentCacheMetrics]:
        """Answer a structural provenance question against a stored run.

        Returns the provenance result plus the segment-cache metrics of the
        query, whose miss counter equals the number of operator segments the
        backtrace actually decoded.  Pass a started-or-not
        :class:`QueryBreakdown` to collect per-phase explain-analyze timings;
        when the ``REPRO_SLOW_QUERY_MS`` budget is set, one is built anyway
        so over-budget queries land in the slow log with their breakdown.
        """
        from repro.pebble.query import query_provenance

        threshold = slow_threshold_seconds()
        if breakdown is None and threshold is not None:
            breakdown = QueryBreakdown()
        if breakdown is not None:
            breakdown.start()
        with activate(breakdown) if breakdown is not None else _NO_CONTEXT:
            with get_tracer().span("warehouse-query", "warehouse") as span:
                if breakdown is not None:
                    with breakdown.phase("load"):
                        execution = self.load(
                            run_id, num_partitions=num_partitions, cache_size=cache_size
                        )
                else:
                    execution = self.load(
                        run_id, num_partitions=num_partitions, cache_size=cache_size
                    )
                result = query_provenance(execution, pattern)
                assert isinstance(
                    execution.store, (LazyProvenanceStore, LiveProvenanceStore)
                )
                metrics = execution.store.metrics
                span.set(
                    run_id=execution.store.run_id,
                    segments_decoded=metrics.misses,
                    bytes_read=metrics.bytes_read,
                )
        if breakdown is not None:
            breakdown.count(
                segments_decoded=metrics.misses,
                cache_hits=metrics.hits,
                cache_misses=metrics.misses,
                bytes_read=metrics.bytes_read,
            )
            breakdown.finish()
            observe_query(
                "backtrace",
                execution.store.run_id,
                str(pattern),
                breakdown.total_seconds,
                breakdown=breakdown.to_json(),
                threshold=threshold,
            )
        metrics.publish()
        get_logger(execution.store.run_id).event(
            "warehouse-query",
            pattern=str(pattern),
            matched=len(result.matched_output_ids),
            segments_decoded=metrics.misses,
            bytes_read=metrics.bytes_read,
            hit_rate=metrics.hit_rate,
        )
        return result, metrics

    def stats(
        self,
        run_id: str | None = None,
        pattern: TreePattern | str | None = None,
        registry: MetricsRegistry | None = None,
    ) -> MetricsRegistry:
        """Build a metrics registry describing one stored run.

        Folds the run's footer index (operator/record/byte counts) and the
        execution accounting recorded at ``record`` time into *registry*
        (a fresh one by default).  With *pattern*, additionally runs the
        backtrace and folds its segment-cache behaviour in, so the returned
        registry answers "what would this query touch?" as numbers.
        """
        registry = registry if registry is not None else MetricsRegistry()
        record = self._catalog.find(run_id) if run_id else self._catalog.latest()
        run_dir = self._dir_for(record)
        manifest = load_manifest(run_dir)
        if is_epoch_layout(manifest):
            # Epoch layout: fold per-epoch operator entries into the same
            # shape the batch footer provides, plus streaming gauges.
            operator_entries = self._inspect_epochs(record, manifest)["operators"]
            operators = {str(e["oid"]): e for e in operator_entries}
            registry.gauge("repro_run_segment_epoch", run_id=record.run_id).set(
                manifest["segment_epoch"]
            )
            registry.gauge("repro_run_live", run_id=record.run_id).set(
                1 if manifest.get("live") else 0
            )
        else:
            operators = manifest["operators"]
        # Sharded runs carry their shard as an extra label; unsharded runs
        # keep the historical label set so existing dashboards stay intact.
        size_labels: dict[str, str] = {"run_id": record.run_id}
        if record.shard:
            size_labels["shard"] = record.shard
        registry.gauge("repro_run_operators", **size_labels).set(len(operators))
        registry.gauge("repro_run_rows", **size_labels).set(
            manifest["rows"]["count"]
        )
        registry.gauge("repro_run_bytes", **size_labels).set(
            manifest["total_bytes"]
        )
        for oid, entry in sorted(operators.items(), key=lambda p: int(p[0])):
            registry.counter(
                "repro_run_operator_records_total", op_type=entry["op_type"]
            ).inc(entry["records"])
        metrics_path = run_dir / METRICS_NAME
        if metrics_path.exists():
            with open(metrics_path, "r", encoding="utf-8") as handle:
                stored = json.load(handle)
            registry.gauge("repro_run_total_seconds", run_id=record.run_id).set(
                stored.get("total_seconds", 0.0)
            )
            for op in stored.get("operators", ()):
                registry.counter(
                    "repro_run_capture_seconds_total", run_id=record.run_id
                ).inc(op.get("capture_seconds", 0.0))
            # Scheduler fault-tolerance accounting (absent in pre-1.1 runs).
            sched = stored.get("scheduler") or {}
            if sched.get("backend"):
                backend = sched["backend"]
                registry.counter(
                    "repro_run_task_attempts_total",
                    run_id=record.run_id,
                    scheduler=backend,
                ).inc(sched.get("task_attempts", 0))
                registry.counter(
                    "repro_run_task_retries_total",
                    run_id=record.run_id,
                    scheduler=backend,
                ).inc(sched.get("task_retries", 0))
                registry.counter(
                    "repro_run_task_timeouts_total",
                    run_id=record.run_id,
                    scheduler=backend,
                ).inc(sched.get("task_timeouts", 0))
        if pattern is not None:
            _, cache_metrics = self.backtrace(record.run_id, pattern)
            cache_metrics.publish(registry)
        return registry

    def __len__(self) -> int:
        return len(self._catalog)

    def __repr__(self) -> str:
        return f"Warehouse({self.root}, {len(self._catalog)} runs)"
