"""Live runs: epoch-append storage for micro-batch streaming captures.

A batch run is written once and sealed (:mod:`repro.warehouse.writer`).  A
**live run** grows: every micro-batch appends one immutable *epoch*
directory and rewrites the manifest (write-then-rename), so a reader that
snapshots the manifest at admission sees a frozen, consistent set of
segments no matter how many batches land afterwards.

Directory layout::

    runs/<run_id>/
      manifest.json                 live manifest (rewritten per batch)
      batches/epoch-0001/           one immutable directory per micro-batch
        ops/op-<oid>.seg            delta segments (same codec as batch runs)
        rows.seg                    sink rows this batch emitted
        index.seg                   per-epoch RunIndex (incremental indexing)
      retention/receipt-*.json      erasure-style retention receipts

The live manifest carries ``live`` (still growing?), ``segment_epoch`` (a
monotonic counter bumped per append *and* per retention sweep -- the serve
cache invalidation granule), ``next_pid`` (the executor id counter, so ids
stay globally unique across batches), the ``watermark``, and one entry per
epoch mirroring the batch footer index.

Run lifecycle::

    live --(finish(compact=False))--> sealed, epoch layout   (retention applies)
         --(finish(compact=True))---> compacted, batch layout (byte-identical
                                      to a one-shot batch run of the same rows)

Compaction is a pure association-level rewrite: operators are walked in
chain (topological) order, per-epoch association entries concatenate in
epoch order, and fresh sequential ids are assigned in entry order -- exactly
the order a batch executor would have assigned them for a linear plan -- so
the compacted segments are byte-identical to a batch capture.

Retention expires whole epochs past a TTL and proves it: the sweep records
the expired sink-row and source-item ids, verifies they no longer answer
from the surviving segments, and writes a sha256-digested receipt (the
erasure-verification idiom of :mod:`repro.audit.erasure` applied to
time-based deletion).
"""

from __future__ import annotations

import hashlib
import json
import shutil
import time
from pathlib import Path as FsPath
from typing import Any, Iterator

from repro.core.operator_provenance import (
    AggregationAssociations,
    Associations,
    BinaryAssociations,
    FlattenAssociations,
    InputRef,
    OperatorProvenance,
    ReadAssociations,
    UnaryAssociations,
)
from repro.core.store import ProvenanceSizeReport, ProvenanceStore
from repro.engine.metrics import SegmentCacheMetrics
from repro.errors import BacktraceError, LiveRunError, ProvenanceError, StreamError
from repro.nested.schema import Schema
from repro.nested.types import unify
from repro.nested.values import DataItem
import repro.warehouse.format as wf
from repro.warehouse.index import RunIndex
from repro.warehouse.writer import (
    DEFAULT_SUB_SHARD_SPAN,
    MANIFEST_NAME,
    OPS_DIR,
    ROWS_SEGMENT,
    _operator_segment,
    write_run,
)

__all__ = [
    "BATCHES_DIR",
    "RETENTION_DIR",
    "LiveProvenanceStore",
    "MergedRunIndex",
    "append_epoch",
    "check_not_epoch_layout",
    "compact_live_run",
    "create_live_manifest",
    "is_epoch_layout",
    "read_epoch_rows",
    "retain_epochs",
    "seal_live_manifest",
    "write_live_manifest",
]

BATCHES_DIR = "batches"
RETENTION_DIR = "retention"


def is_epoch_layout(manifest: dict[str, Any]) -> bool:
    """``True`` for live or sealed-uncompacted (epoch-append) manifests."""
    return "epochs" in manifest


def check_not_epoch_layout(manifest: dict[str, Any], operation: str) -> None:
    """Reject batch-only *operation* on an epoch-layout run, with guidance."""
    if is_epoch_layout(manifest):
        state = "live" if manifest.get("live") else "sealed but uncompacted"
        raise LiveRunError(
            f"cannot {operation}: run {manifest.get('run_id')!r} is {state} "
            "(epoch-append layout). Per-epoch index segments are maintained "
            "incrementally on append; seal the stream with compact=True to "
            "get the batch layout."
        )


def write_live_manifest(run_dir: FsPath, manifest: dict[str, Any]) -> None:
    """Persist the live manifest atomically (write-then-rename).

    Epoch directories are written *before* the manifest referencing them,
    so a reader holding a previously loaded manifest keeps resolving every
    segment it can see -- the admission-time snapshot costs nothing.
    """
    run_dir = FsPath(run_dir)
    tmp = run_dir / (MANIFEST_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    tmp.replace(run_dir / MANIFEST_NAME)


def create_live_manifest(
    run_dir: FsPath, run_id: str, name: str, created: float, sink_oid: int
) -> dict[str, Any]:
    """Create the run directory and the epoch-0 live manifest."""
    run_dir = FsPath(run_dir)
    (run_dir / BATCHES_DIR).mkdir(parents=True, exist_ok=False)
    manifest: dict[str, Any] = {
        "format": wf.FORMAT_VERSION,
        "run_id": run_id,
        "name": name,
        "created": created,
        "live": True,
        "segment_epoch": 0,
        "next_pid": 1,
        "watermark": None,
        "sink_oid": sink_oid,
        "rows": {"count": 0},
        "total_bytes": 0,
        "epochs": [],
    }
    write_live_manifest(run_dir, manifest)
    return manifest


def append_epoch(
    run_dir: FsPath,
    manifest: dict[str, Any],
    execution: Any,
    *,
    next_pid: int,
    watermark: float | None = None,
    created: float | None = None,
    index: bool = True,
) -> dict[str, Any]:
    """Append one micro-batch as a sealed epoch; returns the epoch entry.

    *execution* is the batch's capture-enabled execution result (its store
    holds only this batch's delta records).  The epoch directory is written
    completely before the manifest is rewritten to reference it.
    """
    if not manifest.get("live"):
        raise LiveRunError(
            f"run {manifest.get('run_id')!r} is sealed; cannot append epochs"
        )
    store = execution.store
    if store is None:
        raise ProvenanceError("only capture-enabled executions can be appended")
    run_dir = FsPath(run_dir)
    epoch = manifest["segment_epoch"] + 1
    epoch_dir = run_dir / BATCHES_DIR / f"epoch-{epoch:04d}"
    ops_dir = epoch_dir / OPS_DIR
    ops_dir.mkdir(parents=True, exist_ok=False)

    total_bytes = 0
    operators: dict[str, Any] = {}
    for provenance in store.operators():
        segment, entry = _operator_segment(store, provenance)
        (ops_dir / entry["segment"]).write_bytes(segment)
        entry["segment_bytes"] = len(segment)
        total_bytes += len(segment)
        operators[str(provenance.oid)] = entry

    row_count = len(execution)
    rows_segment = wf.encode_segment(
        wf.SEGMENT_ROWS, wf.encode_rows(execution.iter_rows(), count=row_count)
    )
    (epoch_dir / ROWS_SEGMENT).write_bytes(rows_segment)
    total_bytes += len(rows_segment)

    entry = {
        "epoch": epoch,
        "dir": f"{BATCHES_DIR}/epoch-{epoch:04d}",
        "created": created if created is not None else time.time(),
        "rows": row_count,
        "rows_bytes": len(rows_segment),
        "total_bytes": total_bytes,
        "watermark": watermark,
        "operators": operators,
    }
    if index:
        # The per-epoch delta index: derived from the epoch's own segments,
        # exactly like the batch path, so no full-run rebuild ever happens.
        entry["index"] = RunIndex.build(epoch_dir, entry).write(epoch_dir)
        entry["total_bytes"] += entry["index"]["segment_bytes"]

    manifest["segment_epoch"] = epoch
    manifest["next_pid"] = next_pid
    if watermark is not None:
        manifest["watermark"] = watermark
    manifest["rows"]["count"] += row_count
    manifest["total_bytes"] += entry["total_bytes"]
    manifest["epochs"].append(entry)
    write_live_manifest(run_dir, manifest)
    return entry


def seal_live_manifest(run_dir: FsPath, manifest: dict[str, Any]) -> dict[str, Any]:
    """Mark the run finished (no more appends); keeps the epoch layout.

    Sealing bumps ``segment_epoch`` -- what queries see changes (the final
    window flush landed, or compaction is about to remap ids), so cached
    mid-ingest answers must go stale.  The manifest's counter is the ground
    truth the catalog record mirrors; keeping them in lockstep means a later
    retention sweep's bump is never masked by a colliding value.
    """
    manifest["live"] = False
    manifest["segment_epoch"] += 1
    write_live_manifest(run_dir, manifest)
    return manifest


def read_epoch_rows(
    run_dir: FsPath, manifest: dict[str, Any], max_epoch: int | None = None
) -> list[tuple[int | None, DataItem]]:
    """Concatenate the sink rows of every visible (unexpired) epoch."""
    rows: list[tuple[int | None, DataItem]] = []
    for entry in _visible_epochs(manifest, max_epoch):
        buffer = (FsPath(run_dir) / entry["dir"] / ROWS_SEGMENT).read_bytes()
        rows.extend(wf.decode_rows(wf.open_segment(buffer, wf.SEGMENT_ROWS)))
    return rows


def _visible_epochs(
    manifest: dict[str, Any], max_epoch: int | None = None
) -> list[dict[str, Any]]:
    return [
        entry
        for entry in manifest["epochs"]
        if not entry.get("expired")
        and (max_epoch is None or entry["epoch"] <= max_epoch)
    ]


def _merge_associations(parts: list[Associations]) -> Associations:
    """Concatenate association bags of one operator across epochs, in order."""
    first = parts[0]
    if isinstance(first, ReadAssociations):
        ids: list[int] = []
        for part in parts:
            ids.extend(part.ids)  # type: ignore[attr-defined]
        return ReadAssociations(ids)
    records: list[Any] = []
    for part in parts:
        records.extend(part.records)  # type: ignore[attr-defined]
    return type(first)(records)  # type: ignore[call-arg]


def _merge_inputs(parts: list[OperatorProvenance]) -> list[InputRef]:
    """Merge the ``I`` entries of one operator across epochs.

    Predecessors and accessed paths are static plan metadata (identical in
    every epoch); the input *schema* snapshot is not -- it is sampled from
    the rows each micro-batch actually carried, so an epoch that saw no (or
    structurally narrower) rows records a narrower struct.  Unifying the
    snapshots yields the schema a one-shot batch over the concatenated
    input would have sampled, which is what schema-dependent backtracing
    (map marks the whole schema manipulated, join prunes the other side)
    and byte-identical compaction both need.
    """
    merged: list[InputRef] = []
    for index, entry in enumerate(parts[0].inputs):
        schemas = [
            part.inputs[index].schema
            for part in parts
            if part.inputs[index].schema is not None
        ]
        schema = schemas[0] if schemas else None
        for other in schemas[1:]:
            schema = Schema(unify(schema.struct, other.struct))
        merged.append(InputRef(entry.predecessor, entry.accessed, schema))
    return merged


class LiveProvenanceStore:
    """Merged on-demand view over the epoch delta segments of a live run.

    Satisfies the :class:`~repro.core.store.ProvenanceStoreProtocol` (plus
    the lazy store's convenience surface: ``sink_oid``, ``run_id``,
    ``footer_topology``, ``manifest``), so backtracing and forward tracing
    run over a still-growing run unchanged.  An operator's record is the
    concatenation of its per-epoch association entries in epoch order;
    ``M`` comes from the first visible epoch (static plan metadata), while
    the per-input schema snapshots of ``I`` are unified across epochs --
    schema sampling is batch-local, so single epochs can record narrower
    structs than the stream as a whole.

    The constructor snapshots the manifest's epoch list: batches appended
    afterwards are invisible, which is exactly the query-admission contract.
    ``max_epoch`` restricts the view further (used to compare a mid-ingest
    answer against the sealed run).  Expired epochs are skipped.
    """

    def __init__(
        self,
        run_dir: FsPath,
        manifest: dict[str, Any] | None = None,
        max_epoch: int | None = None,
    ):
        self._run_dir = FsPath(run_dir)
        if manifest is None:
            from repro.warehouse.reader import load_manifest

            manifest = load_manifest(run_dir)
        if not is_epoch_layout(manifest):
            raise ProvenanceError(
                f"run {manifest.get('run_id')!r} is not in epoch layout"
            )
        self._manifest = manifest
        self._epochs = _visible_epochs(manifest, max_epoch)
        self.max_epoch = max_epoch
        #: oid -> [(epoch entry, operator entry)] in epoch order.
        self._by_oid: dict[int, list[tuple[dict[str, Any], dict[str, Any]]]] = {}
        for epoch_entry in self._epochs:
            for oid_text, op_entry in epoch_entry["operators"].items():
                self._by_oid.setdefault(int(oid_text), []).append(
                    (epoch_entry, op_entry)
                )
        self._operators: dict[int, OperatorProvenance] = {}
        self._source_items: dict[int, dict[int, DataItem]] = {}
        #: Same accounting surface as the lazy store: a "miss" is one merged
        #: operator decode (however many epoch segments it touched).
        self.metrics = SegmentCacheMetrics()

    # -- identity --------------------------------------------------------------

    @property
    def run_dir_path(self) -> FsPath:
        return self._run_dir

    @property
    def manifest(self) -> dict[str, Any]:
        return self._manifest

    @property
    def run_id(self) -> str:
        return self._manifest["run_id"]

    @property
    def sink_oid(self) -> int:
        return self._manifest["sink_oid"]

    @property
    def live(self) -> bool:
        return bool(self._manifest.get("live"))

    def visible_epochs(self) -> tuple[int, ...]:
        return tuple(entry["epoch"] for entry in self._epochs)

    # -- index-only lookups ----------------------------------------------------

    def has(self, oid: int) -> bool:
        return oid in self._by_oid

    def is_empty(self) -> bool:
        """True when no visible epoch carries provenance.

        A run whose every epoch expired (or which never ingested a batch)
        has no operator segments at all -- not even the sink -- so queries
        must answer empty instead of attempting a topology walk.
        """
        return not self._by_oid

    def _entries(self, oid: int) -> list[tuple[dict[str, Any], dict[str, Any]]]:
        entries = self._by_oid.get(oid)
        if not entries:
            raise BacktraceError(f"no captured provenance for operator {oid}")
        return entries

    def is_source(self, oid: int) -> bool:
        return self._entries(oid)[0][1]["kind"] == "read"

    def source_name(self, oid: int) -> str:
        entries = self._by_oid.get(oid)
        if not entries or "source_name" not in entries[0][1]:
            return f"source-{oid}"
        return entries[0][1]["source_name"]

    def footer_topology(self) -> dict[int, tuple[int, ...]]:
        return {
            oid: tuple(entries[0][1].get("predecessors", ()))
            for oid, entries in self._by_oid.items()
        }

    def size_report(self) -> ProvenanceSizeReport:
        lineage = 0
        structural = 0
        records = 0
        per_operator: dict[int, tuple[str, int, int]] = {}
        for oid, entries in self._by_oid.items():
            op_lineage = sum(entry["lineage_bytes"] for _, entry in entries)
            op_structural = sum(entry["structural_bytes"] for _, entry in entries)
            records += sum(entry["records"] for _, entry in entries)
            lineage += op_lineage
            structural += op_structural
            per_operator[oid] = (entries[0][1]["op_type"], op_lineage, op_structural)
        return ProvenanceSizeReport(lineage, structural, records, per_operator)

    # -- merged decoding -------------------------------------------------------

    def _read_range(
        self, epoch_entry: dict[str, Any], op_entry: dict[str, Any],
        offset_key: str, length_key: str,
    ) -> bytes:
        path = self._run_dir / epoch_entry["dir"] / OPS_DIR / op_entry["segment"]
        with open(path, "rb") as handle:
            handle.seek(op_entry[offset_key])
            raw = handle.read(op_entry[length_key])
        self.metrics.add(bytes_read=len(raw))
        return raw

    def get(self, oid: int) -> OperatorProvenance:
        cached = self._operators.get(oid)
        if cached is not None:
            self.metrics.add(hits=1)
            return cached
        self.metrics.add(misses=1)
        parts = [
            wf.decode_operator(
                wf.Cursor(self._read_range(epoch, entry, "offset", "record_length"))
            )
            for epoch, entry in self._entries(oid)
        ]
        first = parts[0]
        merged = OperatorProvenance(
            first.oid,
            first.op_type,
            _merge_inputs(parts),
            first.manipulations,
            _merge_associations([part.associations for part in parts]),
            label=first.label,
        )
        self._operators[oid] = merged
        return merged

    def source_items(self, oid: int) -> dict[int, DataItem]:
        cached = self._source_items.get(oid)
        if cached is not None:
            return dict(cached)
        merged: dict[int, DataItem] = {}
        for epoch_entry, op_entry in self._entries(oid):
            if "items_offset" not in op_entry:
                raise BacktraceError(f"operator {oid} is not a read operator")
            raw = self._read_range(epoch_entry, op_entry, "items_offset", "items_length")
            _, items = wf.decode_source_items(wf.Cursor(raw))
            merged.update(items)
        self._source_items[oid] = merged
        return dict(merged)

    def decayed_source_id(self, oid: int, item_id: int) -> bool:
        """True when *item_id* was erased out from under a later reference.

        Pids are append-only, so an id a downstream association still
        carries but no visible epoch of read *oid* holds can only have
        lived in an expired (or admission-invisible) epoch.  Window
        aggregates emitted after a TTL sweep decay this way: the window
        closed after its oldest members' epoch was retained away.
        """
        return item_id not in self.source_items(oid)

    def source_item(self, oid: int, item_id: int) -> DataItem:
        items = self._source_items.get(oid)
        if items is None:
            self.source_items(oid)
            items = self._source_items[oid]
        if item_id not in items:
            raise BacktraceError(f"source {oid} has no item with id {item_id}")
        return items[item_id]

    def operators(self) -> Iterator[OperatorProvenance]:
        for oid in sorted(self._by_oid):
            yield self.get(oid)

    def __len__(self) -> int:
        return len(self._by_oid)

    def __repr__(self) -> str:
        state = "live" if self.live else "sealed"
        return (
            f"LiveProvenanceStore({self.run_id!r}, {state}, "
            f"{len(self._epochs)} epochs, {len(self._by_oid)} operators)"
        )


class MergedRunIndex:
    """The incremental index: per-epoch :class:`RunIndex` parts, probed merged.

    Exposes the same probe surface (``consumers`` / ``candidates`` /
    ``item_range`` / ``operators_touching`` / ``source_item``); each append
    only builds the new epoch's part, so indexing cost per batch is
    proportional to the batch, never to the run.
    """

    def __init__(self, run_dir: FsPath, manifest: dict[str, Any],
                 max_epoch: int | None = None):
        self._parts: list[tuple[dict[str, Any], RunIndex]] = []
        run_dir = FsPath(run_dir)
        for entry in _visible_epochs(manifest, max_epoch):
            part = RunIndex.load(run_dir / entry["dir"], entry)
            if part is not None:
                self._parts.append((entry, part))
        self._run_dir = run_dir

    def __len__(self) -> int:
        return len(self._parts)

    def consumers(self, item_id: int) -> tuple[int, ...]:
        oids: set[int] = set()
        for _, part in self._parts:
            oids.update(part.consumers(item_id))
        return tuple(sorted(oids))

    def candidates(self, term: str) -> tuple[tuple[int, int], ...]:
        postings: set[tuple[int, int]] = set()
        for _, part in self._parts:
            postings.update(part.candidates(term))
        return tuple(sorted(postings))

    def item_range(self, oid: int, item_id: int) -> tuple[int, int] | None:
        for _, part in self._parts:
            found = part.item_range(oid, item_id)
            if found is not None:
                return found
        return None

    def operators_touching(self, path: str) -> dict[str, tuple[int, ...]]:
        accessed: set[int] = set()
        manipulated: set[int] = set()
        for _, part in self._parts:
            touching = part.operators_touching(path)
            accessed.update(touching["accessed"])
            manipulated.update(touching["manipulated"])
        return {
            "accessed": tuple(sorted(accessed)),
            "manipulated": tuple(sorted(manipulated)),
        }

    def source_item(self, oid: int, item_id: int) -> DataItem | None:
        for entry, part in self._parts:
            found = part.source_item(
                self._run_dir / entry["dir"], entry, oid, item_id
            )
            if found is not None:
                return found
        return None

    def summary(self) -> dict[str, Any]:
        return {
            "epochs": len(self._parts),
            "inputs": sum(len(part.inputs) for _, part in self._parts),
            "terms": sum(len(part.terms) for _, part in self._parts),
            "items": sum(
                sum(len(r) for r in part.items.values()) for _, part in self._parts
            ),
        }

    def __repr__(self) -> str:
        return f"MergedRunIndex({len(self._parts)} epoch parts)"


# ---------------------------------------------------------------------------
# Compaction: epoch layout -> canonical batch layout
# ---------------------------------------------------------------------------


class _SealedExecution:
    """Adapter feeding a compacted store and rows to :func:`write_run`."""

    def __init__(self, sink_oid: int, rows: list[tuple[int | None, DataItem]],
                 store: ProvenanceStore):
        from repro.warehouse.reader import RestoredPlanNode

        self.root = RestoredPlanNode(sink_oid)
        self.store = store
        self._rows = rows

    def __len__(self) -> int:
        return len(self._rows)

    def iter_rows(self) -> Iterator[tuple[int | None, DataItem]]:
        return iter(self._rows)


def _chain_order(topology: dict[int, tuple[int, ...]]) -> list[int]:
    """Children-first topological order (Kahn, ascending-oid tie-break)."""
    successors: dict[int, list[int]] = {oid: [] for oid in topology}
    in_degree: dict[int, int] = {oid: 0 for oid in topology}
    for oid, preds in topology.items():
        for pred in preds:
            successors[pred].append(oid)
            in_degree[oid] += 1
    ready = sorted(oid for oid, degree in in_degree.items() if degree == 0)
    order: list[int] = []
    while ready:
        oid = ready.pop(0)
        order.append(oid)
        for succ in sorted(successors[oid]):
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                ready.append(succ)
        ready.sort()
    if len(order) != len(topology):
        raise ProvenanceError("live run operator graph contains a cycle")
    return order


def compact_live_run(
    run_dir: FsPath,
    manifest: dict[str, Any] | None = None,
    sub_shard_span: int = DEFAULT_SUB_SHARD_SPAN,
) -> dict[str, Any]:
    """Rewrite a sealed epoch-layout run into the canonical batch layout.

    Ids are remapped to the sequence a one-shot batch execution would have
    assigned (operator-major in chain order, entry order within each
    operator), which makes the resulting segments byte-identical to a batch
    capture of the same data.  The ``batches/`` tree is removed afterwards.
    Only linear (streaming-legal) plans compact; retention must not have
    expired any epoch (the removed rows cannot be re-derived).
    """
    run_dir = FsPath(run_dir)
    if manifest is None:
        from repro.warehouse.reader import load_manifest

        manifest = load_manifest(run_dir)
    if manifest.get("live"):
        raise LiveRunError(
            f"run {manifest.get('run_id')!r} is still live; seal before compacting"
        )
    if not is_epoch_layout(manifest):
        return manifest  # already compacted
    if any(entry.get("expired") for entry in manifest["epochs"]):
        raise LiveRunError(
            f"run {manifest['run_id']!r} has expired epochs; a retained run "
            "stays in epoch layout"
        )
    source = LiveProvenanceStore(run_dir, manifest)
    id_map: dict[int, int] = {}
    next_id = 1
    compacted = ProvenanceStore()
    for oid in _chain_order(source.footer_topology()):
        provenance = source.get(oid)
        associations = provenance.associations
        if isinstance(associations, ReadAssociations):
            fresh = []
            for old in associations.ids:
                id_map[old] = next_id
                fresh.append(next_id)
                next_id += 1
            remapped: Associations = ReadAssociations(fresh)
            items = source.source_items(oid)
            compacted.register_source_items(
                oid,
                source.source_name(oid),
                {id_map[old]: item for old, item in items.items()},
            )
        elif isinstance(associations, UnaryAssociations):
            records = []
            for id_in, id_out in associations.records:
                id_map[id_out] = next_id
                records.append((id_map[id_in], next_id))
                next_id += 1
            remapped = UnaryAssociations(records)
        elif isinstance(associations, FlattenAssociations):
            records = []
            for id_in, pos, id_out in associations.records:
                id_map[id_out] = next_id
                records.append((id_map[id_in], pos, next_id))
                next_id += 1
            remapped = FlattenAssociations(records)
        elif isinstance(associations, AggregationAssociations):
            records = []
            for ids_in, id_out in associations.records:
                id_map[id_out] = next_id
                records.append((tuple(id_map[i] for i in ids_in), next_id))
                next_id += 1
            remapped = AggregationAssociations(records)
        elif isinstance(associations, BinaryAssociations):
            # Binary operators are rejected at stream-open time; a run that
            # somehow holds one cannot be canonically ordered.
            raise StreamError(
                f"cannot compact binary operator {oid}; streaming plans are linear"
            )
        else:  # pragma: no cover -- new association kinds must be handled
            raise ProvenanceError(
                f"cannot compact associations {type(associations).__name__}"
            )
        compacted.register(
            OperatorProvenance(
                provenance.oid,
                provenance.op_type,
                provenance.inputs,
                provenance.manipulations,
                remapped,
                label=provenance.label,
            )
        )
    rows = [
        (id_map[pid] if pid is not None else None, item)
        for pid, item in read_epoch_rows(run_dir, manifest)
    ]
    execution = _SealedExecution(manifest["sink_oid"], rows, compacted)
    sealed = write_run(
        run_dir,
        execution,  # type: ignore[arg-type]
        manifest["run_id"],
        manifest["name"],
        manifest["created"],
        sub_shard_span=sub_shard_span,
    )
    shutil.rmtree(run_dir / BATCHES_DIR)
    return sealed


# ---------------------------------------------------------------------------
# Retention: TTL-based epoch expiry with verified receipts
# ---------------------------------------------------------------------------


def retain_epochs(
    run_dir: FsPath,
    manifest: dict[str, Any],
    ttl_seconds: float,
    now: float | None = None,
) -> dict[str, Any] | None:
    """Expire epochs older than *ttl_seconds*; returns the receipt or ``None``.

    For each expired epoch the sweep records the sink-row ids and source
    item ids it held, deletes the epoch directory, marks the manifest entry
    expired, bumps ``segment_epoch`` (cached answers over the run are now
    stale), and then *verifies* against the surviving segments that none of
    the recorded ids still answers -- the same proof shape as an erasure
    verification, applied to time-based deletion.  The receipt (with a
    sha256 digest over its canonical JSON) persists under ``retention/``.
    """
    if ttl_seconds <= 0:
        raise ProvenanceError(f"retention TTL must be positive, got {ttl_seconds}")
    if not is_epoch_layout(manifest):
        return None
    run_dir = FsPath(run_dir)
    now = time.time() if now is None else now
    horizon = now - ttl_seconds
    due = [
        entry
        for entry in manifest["epochs"]
        if not entry.get("expired") and entry["created"] <= horizon
    ]
    if not due:
        return None

    expired_records: list[dict[str, Any]] = []
    for entry in due:
        epoch_dir = run_dir / entry["dir"]
        sink_ids = sorted(
            pid
            for pid, _ in read_epoch_rows(
                run_dir, {"epochs": [entry]}, max_epoch=None
            )
            if pid is not None
        )
        source_ids: dict[str, list[int]] = {}
        for oid_text, op_entry in entry["operators"].items():
            if "items_offset" not in op_entry:
                continue
            path = epoch_dir / OPS_DIR / op_entry["segment"]
            with open(path, "rb") as handle:
                handle.seek(op_entry["items_offset"])
                raw = handle.read(op_entry["items_length"])
            _, items = wf.decode_source_items(wf.Cursor(raw))
            source_ids[oid_text] = sorted(items)
        expired_records.append(
            {
                "epoch": entry["epoch"],
                "rows": entry["rows"],
                "sink_ids": sink_ids,
                "source_ids": source_ids,
            }
        )
        shutil.rmtree(epoch_dir)
        entry["expired"] = True
        entry["expired_at"] = now
        entry["operators"] = {}
        manifest["rows"]["count"] -= entry["rows"]
        manifest["total_bytes"] -= entry["total_bytes"]

    manifest["segment_epoch"] += 1
    write_live_manifest(run_dir, manifest)

    # Verify the expiry actually removed answerability: surviving sink rows
    # must not carry an expired id, and expired source ids must not resolve.
    survivor = LiveProvenanceStore(run_dir, manifest)
    surviving_ids = {
        pid for pid, _ in read_epoch_rows(run_dir, manifest) if pid is not None
    }
    sink_absent = all(
        not surviving_ids.intersection(record["sink_ids"])
        for record in expired_records
    )
    sources_absent = True
    for record in expired_records:
        for oid_text, ids in record["source_ids"].items():
            oid = int(oid_text)
            for item_id in ids:
                try:
                    if not survivor.has(oid):
                        continue
                    survivor.source_item(oid, item_id)
                except BacktraceError:
                    continue
                sources_absent = False
    payload = {
        "run_id": manifest["run_id"],
        "swept_at": now,
        "ttl_seconds": ttl_seconds,
        "segment_epoch": manifest["segment_epoch"],
        "expired_epochs": expired_records,
        "verified": {
            "sink_ids_absent": sink_absent,
            "source_ids_absent": sources_absent,
        },
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    receipt = dict(payload, digest=hashlib.sha256(canonical.encode()).hexdigest())
    retention_dir = run_dir / RETENTION_DIR
    retention_dir.mkdir(exist_ok=True)
    last = max(record["epoch"] for record in expired_records)
    with open(
        retention_dir / f"receipt-{last:04d}.json", "w", encoding="utf-8"
    ) as handle:
        json.dump(receipt, handle, indent=2)
    if not (sink_absent and sources_absent):
        raise ProvenanceError(
            f"retention verification failed for run {manifest['run_id']!r}: "
            f"receipt {receipt['digest'][:12]} records surviving expired ids"
        )
    return receipt
