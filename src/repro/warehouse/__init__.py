"""Provenance warehouse: a persistent, indexed, multi-run store.

Eager capture only pays off if the collected pebbles outlive the pipeline
run.  This package stores many captured executions under one root directory
in a binary segment format and serves backtrace queries *lazily* -- the
reader decodes only the operator segments a query's backtrace path touches,
never the whole run.

Modules:

* :mod:`~repro.warehouse.format` -- length-prefixed, versioned binary
  encoding of operator provenance, source items, and result rows,
* :mod:`~repro.warehouse.writer` -- spills one segment per operator plus a
  footer index,
* :mod:`~repro.warehouse.catalog` -- the JSON run registry,
* :mod:`~repro.warehouse.reader` -- :class:`LazyProvenanceStore` with an
  LRU segment cache and hit/miss metrics,
* :mod:`~repro.warehouse.index` -- the persisted per-run query index
  (inverted input ids, source-item terms and byte ranges, A/M paths)
  backing forward tracing and the ``repro.audit`` subsystem,
* :mod:`~repro.warehouse.service` -- the :class:`Warehouse` facade used by
  the Pebble API and the CLI.
"""

from repro.warehouse.catalog import Catalog, RunRecord
from repro.warehouse.index import RunIndex, ensure_index
from repro.warehouse.reader import LazyProvenanceStore
from repro.warehouse.service import Warehouse

__all__ = ["Warehouse", "Catalog", "RunRecord", "LazyProvenanceStore", "RunIndex", "ensure_index"]
