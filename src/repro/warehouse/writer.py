"""Segment writer: spill one captured execution into warehouse segments.

Each operator's provenance becomes one segment file under the run's ``ops/``
directory; for read operators the segment additionally carries the
``id -> input item`` block *after* the operator record, at an offset noted
in the footer index, so a lazy reader can decode the operator (needed for
topological backtracing) without touching the usually much larger item
block.  The provenance-annotated result rows go into ``rows.seg``.

The footer index (``manifest.json``) maps every operator id to its segment,
byte offsets, record counts, and the Fig. 8 size split -- everything
``size_report()`` and ``is_source()`` need is answerable from the index
alone, with zero segment decodes.
"""

from __future__ import annotations

import json
from pathlib import Path as FsPath
from typing import Any

from repro.core.operator_provenance import ReadAssociations
from repro.core.store import ProvenanceStore
from repro.engine.executor import ExecutionResult
from repro.errors import ProvenanceError
import repro.warehouse.format as wf

__all__ = ["MANIFEST_NAME", "OPS_DIR", "ROWS_SEGMENT", "write_run"]

MANIFEST_NAME = "manifest.json"
OPS_DIR = "ops"
ROWS_SEGMENT = "rows.seg"

#: Bytes of the segment preamble (magic + version + kind).
_PREAMBLE = len(wf.MAGIC) + 2 + 1


def _operator_segment(
    store: ProvenanceStore, provenance: Any
) -> tuple[bytes, dict[str, Any]]:
    """Encode one operator segment; returns ``(bytes, index entry)``."""
    record = wf.encode_operator(provenance)
    is_source = isinstance(provenance.associations, ReadAssociations)
    payload = record
    entry: dict[str, Any] = {
        "segment": f"op-{provenance.oid:06d}.seg",
        "offset": _PREAMBLE,
        "record_length": len(record),
        "op_type": provenance.op_type,
        "label": provenance.label,
        "kind": wf.kind_name(provenance.associations),
        "records": len(provenance.associations),
        "lineage_bytes": provenance.lineage_bytes(),
        "structural_bytes": provenance.structural_extra_bytes(),
        "predecessors": [
            input_ref.predecessor
            for input_ref in provenance.inputs
            if input_ref.predecessor is not None
        ],
    }
    if is_source:
        items_block = wf.encode_source_items(
            store.source_name(provenance.oid), store.source_items(provenance.oid)
        )
        entry["source_name"] = store.source_name(provenance.oid)
        entry["items_offset"] = _PREAMBLE + len(record)
        entry["items_length"] = len(items_block)
        entry["item_count"] = len(store.source_items(provenance.oid))
        payload = record + items_block
    return wf.encode_segment(wf.SEGMENT_OPERATOR, payload), entry


def write_run(
    run_dir: FsPath,
    execution: ExecutionResult,
    run_id: str,
    name: str,
    created: float,
) -> dict[str, Any]:
    """Write one captured execution under *run_dir*; returns the manifest.

    The manifest is also persisted as ``run_dir/manifest.json``.  Raises
    :class:`ProvenanceError` for capture-disabled executions.
    """
    store = execution.store
    if store is None:
        raise ProvenanceError("only capture-enabled executions can be recorded")
    run_dir = FsPath(run_dir)
    ops_dir = run_dir / OPS_DIR
    ops_dir.mkdir(parents=True, exist_ok=False)

    total_bytes = 0
    operators: dict[str, Any] = {}
    for provenance in store.operators():
        segment, entry = _operator_segment(store, provenance)
        (ops_dir / entry["segment"]).write_bytes(segment)
        entry["segment_bytes"] = len(segment)
        total_bytes += len(segment)
        operators[str(provenance.oid)] = entry

    # Stream rows into the encoder: a columnar execution decodes items one
    # at a time instead of materialising the per-record row lists first.
    row_count = len(execution)
    rows_segment = wf.encode_segment(
        wf.SEGMENT_ROWS, wf.encode_rows(execution.iter_rows(), count=row_count)
    )
    (run_dir / ROWS_SEGMENT).write_bytes(rows_segment)
    total_bytes += len(rows_segment)

    manifest = {
        "format": wf.FORMAT_VERSION,
        "run_id": run_id,
        "name": name,
        "created": created,
        "sink_oid": execution.root.oid,
        "rows": {
            "segment": ROWS_SEGMENT,
            "count": row_count,
            "segment_bytes": len(rows_segment),
        },
        "operators": operators,
        "total_bytes": total_bytes,
    }
    with open(run_dir / MANIFEST_NAME, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    return manifest
