"""Segment writer: spill one captured execution into warehouse segments.

Each operator's provenance becomes one segment file under the run's ``ops/``
directory; for read operators the segment additionally carries the
``id -> input item`` block *after* the operator record, at an offset noted
in the footer index, so a lazy reader can decode the operator (needed for
topological backtracing) without touching the usually much larger item
block.  The provenance-annotated result rows go into ``rows.seg``.

The footer index (``manifest.json``) maps every operator id to its segment,
byte offsets, record counts, and the Fig. 8 size split -- everything
``size_report()`` and ``is_source()`` need is answerable from the index
alone, with zero segment decodes.

Large runs additionally **sub-shard** their segments: when a run has more
operators than ``sub_shard_span``, segments land in ``ops/range-NNNN/``
directories grouping ``span`` consecutive operator ids each.  The manifest's
``segment`` entries are run-dir-relative paths either way, so readers and
the index builder need no layout knowledge -- the split exists so directory
listings stay bounded and a range of a very large run can be copied or
rebalanced as a unit.
"""

from __future__ import annotations

import json
from pathlib import Path as FsPath
from typing import Any

from repro.core.operator_provenance import ReadAssociations
from repro.core.store import ProvenanceStore
from repro.engine.executor import ExecutionResult
from repro.errors import ProvenanceError
import repro.warehouse.format as wf

__all__ = [
    "MANIFEST_NAME",
    "OPS_DIR",
    "ROWS_SEGMENT",
    "DEFAULT_SUB_SHARD_SPAN",
    "write_run",
]

MANIFEST_NAME = "manifest.json"
OPS_DIR = "ops"
ROWS_SEGMENT = "rows.seg"

#: Operators per ``ops/range-NNNN/`` directory; runs at or below the span
#: keep the flat layout.
DEFAULT_SUB_SHARD_SPAN = 256

#: Bytes of the segment preamble (magic + version + kind).
_PREAMBLE = len(wf.MAGIC) + 2 + 1


def _operator_segment(
    store: ProvenanceStore, provenance: Any
) -> tuple[bytes, dict[str, Any]]:
    """Encode one operator segment; returns ``(bytes, index entry)``."""
    record = wf.encode_operator(provenance)
    is_source = isinstance(provenance.associations, ReadAssociations)
    payload = record
    entry: dict[str, Any] = {
        "segment": f"op-{provenance.oid:06d}.seg",
        "offset": _PREAMBLE,
        "record_length": len(record),
        "op_type": provenance.op_type,
        "label": provenance.label,
        "kind": wf.kind_name(provenance.associations),
        "records": len(provenance.associations),
        "lineage_bytes": provenance.lineage_bytes(),
        "structural_bytes": provenance.structural_extra_bytes(),
        "predecessors": [
            input_ref.predecessor
            for input_ref in provenance.inputs
            if input_ref.predecessor is not None
        ],
    }
    if is_source:
        items_block = wf.encode_source_items(
            store.source_name(provenance.oid), store.source_items(provenance.oid)
        )
        entry["source_name"] = store.source_name(provenance.oid)
        entry["items_offset"] = _PREAMBLE + len(record)
        entry["items_length"] = len(items_block)
        entry["item_count"] = len(store.source_items(provenance.oid))
        payload = record + items_block
    return wf.encode_segment(wf.SEGMENT_OPERATOR, payload), entry


def write_run(
    run_dir: FsPath,
    execution: ExecutionResult,
    run_id: str,
    name: str,
    created: float,
    sub_shard_span: int = DEFAULT_SUB_SHARD_SPAN,
) -> dict[str, Any]:
    """Write one captured execution under *run_dir*; returns the manifest.

    The manifest is also persisted as ``run_dir/manifest.json``.  Raises
    :class:`ProvenanceError` for capture-disabled executions.  Runs with
    more than *sub_shard_span* operators split their segments across
    ``ops/range-NNNN/`` directories (span operators per range).
    """
    store = execution.store
    if store is None:
        raise ProvenanceError("only capture-enabled executions can be recorded")
    if sub_shard_span < 1:
        raise ProvenanceError(f"sub_shard_span must be >= 1, got {sub_shard_span}")
    run_dir = FsPath(run_dir)
    ops_dir = run_dir / OPS_DIR
    ops_dir.mkdir(parents=True, exist_ok=False)

    provenances = list(store.operators())
    sub_sharded = len(provenances) > sub_shard_span

    total_bytes = 0
    operators: dict[str, Any] = {}
    for provenance in provenances:
        segment, entry = _operator_segment(store, provenance)
        if sub_sharded:
            # The index entry's "segment" stays a run-dir-relative path, so
            # every reader join (run_dir / OPS_DIR / segment) still works.
            rng = f"range-{provenance.oid // sub_shard_span:04d}"
            (ops_dir / rng).mkdir(exist_ok=True)
            entry["segment"] = f"{rng}/{entry['segment']}"
        (ops_dir / entry["segment"]).write_bytes(segment)
        entry["segment_bytes"] = len(segment)
        total_bytes += len(segment)
        operators[str(provenance.oid)] = entry

    # Stream rows into the encoder: a columnar execution decodes items one
    # at a time instead of materialising the per-record row lists first.
    row_count = len(execution)
    rows_segment = wf.encode_segment(
        wf.SEGMENT_ROWS, wf.encode_rows(execution.iter_rows(), count=row_count)
    )
    (run_dir / ROWS_SEGMENT).write_bytes(rows_segment)
    total_bytes += len(rows_segment)

    manifest = {
        "format": wf.FORMAT_VERSION,
        "run_id": run_id,
        "name": name,
        "created": created,
        "sink_oid": execution.root.oid,
        "rows": {
            "segment": ROWS_SEGMENT,
            "count": row_count,
            "segment_bytes": len(rows_segment),
        },
        "operators": operators,
        "total_bytes": total_bytes,
    }
    if sub_sharded:
        ranges = sorted({entry["segment"].split("/", 1)[0] for entry in operators.values()})
        manifest["sub_shards"] = {"span": sub_shard_span, "ranges": ranges}
    with open(run_dir / MANIFEST_NAME, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    return manifest
