"""Binary segment format of the provenance warehouse.

Segments hold the captured provenance of one run in a length-prefixed,
versioned binary encoding that can be decoded piecemeal: one operator's
provenance (and, for read operators, its source items) lives in one
contiguous byte range, so a lazy reader can seek to exactly the operators a
backtrace touches instead of loading the whole capture.

Layout of one segment::

    MAGIC (4B) | version (u16) | kind (u8) | payload

Payloads are built from four primitives -- ``u32``/``u64`` little-endian
integers, length-prefixed UTF-8 strings, and sentinel-encoded optional
identifiers -- so every record is self-delimiting (unlike the historic
``ProvenanceStore.serialize()`` blob, whose aggregation records had no
length prefix and whose binary records could not distinguish a legitimate
id ``0`` from "no match").

Identifier widths match the space accounting of
:mod:`repro.core.operator_provenance` (8 bytes per id, 4 per position), so
segment sizes stay comparable with ``size_report()`` figures.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from repro.core.operator_provenance import (
    AggregationAssociations,
    Associations,
    BinaryAssociations,
    FlattenAssociations,
    InputRef,
    OperatorProvenance,
    ReadAssociations,
    UNDEFINED,
    UnaryAssociations,
)
from repro.core.paths import parse_path
from repro.errors import ProvenanceError
from repro.nested.json_io import _jsonable
from repro.nested.schema import Schema
from repro.nested.types import type_from_obj, type_to_obj
from repro.nested.values import DataItem

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "SEGMENT_OPERATOR",
    "SEGMENT_ROWS",
    "SEGMENT_INDEX",
    "NONE_ID",
    "Cursor",
    "kind_name",
    "encode_operator",
    "decode_operator",
    "encode_source_items",
    "decode_source_items",
    "encode_rows",
    "decode_rows",
    "encode_segment",
    "open_segment",
    "encode_store_blob",
    "decode_store_blob",
]

MAGIC = b"PBWH"  # "PeBble WareHouse"
FORMAT_VERSION = 2  # version 1 was the whole-document JSON format

SEGMENT_OPERATOR = 1
SEGMENT_ROWS = 2
SEGMENT_INDEX = 3

#: Sentinel for an absent optional identifier (union/outer-join sides).  A
#: real id of 0 is legitimate, so absence needs its own code point.
NONE_ID = 2**64 - 1
#: Sentinel for an absent predecessor reference (read operators).
_NONE_PRED = 2**32 - 1

_KIND_READ = 1
_KIND_UNARY = 2
_KIND_FLATTEN = 3
_KIND_BINARY = 4
_KIND_AGGREGATION = 5

_ASSOCIATION_KINDS = {
    ReadAssociations: _KIND_READ,
    UnaryAssociations: _KIND_UNARY,
    FlattenAssociations: _KIND_FLATTEN,
    BinaryAssociations: _KIND_BINARY,
    AggregationAssociations: _KIND_AGGREGATION,
}

#: Association kind names used by the footer index (no decode needed to
#: answer ``is_source`` or render a run summary).
KIND_NAMES = {
    _KIND_READ: "read",
    _KIND_UNARY: "unary",
    _KIND_FLATTEN: "flatten",
    _KIND_BINARY: "binary",
    _KIND_AGGREGATION: "aggregation",
}


def kind_name(associations: "Associations") -> str:
    """The footer-index name of an association bag's kind."""
    kind = _ASSOCIATION_KINDS.get(type(associations))
    if kind is None:
        raise ProvenanceError(
            f"cannot encode associations {type(associations).__name__}"
        )
    return KIND_NAMES[kind]


# -- primitives ---------------------------------------------------------------


def _u8(value: int) -> bytes:
    return value.to_bytes(1, "little")


def _u16(value: int) -> bytes:
    return value.to_bytes(2, "little")


def _u32(value: int) -> bytes:
    return value.to_bytes(4, "little")


def _u64(value: int) -> bytes:
    return value.to_bytes(8, "little")


def _string(text: str) -> bytes:
    raw = text.encode("utf-8")
    return _u32(len(raw)) + raw


def _opt_id(value: int | None) -> bytes:
    if value is None:
        return _u64(NONE_ID)
    if value >= NONE_ID:
        raise ProvenanceError(f"identifier {value} collides with the NONE_ID sentinel")
    return _u64(value)


class Cursor:
    """Sequential decoder over one byte buffer."""

    __slots__ = ("buffer", "offset")

    def __init__(self, buffer: bytes, offset: int = 0):
        self.buffer = buffer
        self.offset = offset

    def _take(self, count: int) -> bytes:
        end = self.offset + count
        if end > len(self.buffer):
            raise ProvenanceError(
                f"truncated segment: needed {count} bytes at offset {self.offset}, "
                f"have {len(self.buffer) - self.offset}"
            )
        raw = self.buffer[self.offset : end]
        self.offset = end
        return raw

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return int.from_bytes(self._take(2), "little")

    def u32(self) -> int:
        return int.from_bytes(self._take(4), "little")

    def u64(self) -> int:
        return int.from_bytes(self._take(8), "little")

    def string(self) -> str:
        return self._take(self.u32()).decode("utf-8")

    def opt_id(self) -> int | None:
        value = self.u64()
        return None if value == NONE_ID else value

    def expect_magic(self) -> tuple[int, int]:
        """Check the segment preamble; returns ``(version, segment kind)``."""
        magic = self._take(4)
        if magic != MAGIC:
            raise ProvenanceError(f"not a warehouse segment (magic {magic!r})")
        version = self.u16()
        if version != FORMAT_VERSION:
            raise ProvenanceError(f"unsupported segment format version {version}")
        return version, self.u8()


# -- associations -------------------------------------------------------------


def _encode_associations(associations: Associations) -> bytes:
    kind = _ASSOCIATION_KINDS.get(type(associations))
    if kind is None:
        raise ProvenanceError(
            f"cannot encode associations {type(associations).__name__}"
        )
    parts = [_u8(kind)]
    if isinstance(associations, ReadAssociations):
        parts.append(_u64(len(associations.ids)))
        parts.extend(_u64(id_out) for id_out in associations.ids)
    elif isinstance(associations, UnaryAssociations):
        parts.append(_u64(len(associations.records)))
        for id_in, id_out in associations.records:
            parts.append(_u64(id_in) + _u64(id_out))
    elif isinstance(associations, FlattenAssociations):
        parts.append(_u64(len(associations.records)))
        for id_in, pos, id_out in associations.records:
            parts.append(_u64(id_in) + _u32(pos) + _u64(id_out))
    elif isinstance(associations, BinaryAssociations):
        parts.append(_u64(len(associations.records)))
        for id_in1, id_in2, id_out in associations.records:
            parts.append(_opt_id(id_in1) + _opt_id(id_in2) + _u64(id_out))
    else:
        assert isinstance(associations, AggregationAssociations)
        parts.append(_u64(len(associations.records)))
        for ids_in, id_out in associations.records:
            parts.append(_u32(len(ids_in)))
            parts.extend(_u64(id_in) for id_in in ids_in)
            parts.append(_u64(id_out))
    return b"".join(parts)


def _decode_associations(cursor: Cursor) -> Associations:
    kind = cursor.u8()
    count = cursor.u64()
    if kind == _KIND_READ:
        return ReadAssociations([cursor.u64() for _ in range(count)])
    if kind == _KIND_UNARY:
        return UnaryAssociations([(cursor.u64(), cursor.u64()) for _ in range(count)])
    if kind == _KIND_FLATTEN:
        return FlattenAssociations(
            [(cursor.u64(), cursor.u32(), cursor.u64()) for _ in range(count)]
        )
    if kind == _KIND_BINARY:
        return BinaryAssociations(
            [(cursor.opt_id(), cursor.opt_id(), cursor.u64()) for _ in range(count)]
        )
    if kind == _KIND_AGGREGATION:
        records = []
        for _ in range(count):
            width = cursor.u32()
            ids_in = tuple(cursor.u64() for _ in range(width))
            records.append((ids_in, cursor.u64()))
        return AggregationAssociations(records)
    raise ProvenanceError(f"unknown association kind code {kind}")


# -- operator records ---------------------------------------------------------

_FLAG_UNDEFINED = 0
_FLAG_PRESENT = 1


def encode_operator(provenance: OperatorProvenance) -> bytes:
    """Encode one operator's provenance 5-tuple as a self-delimiting record."""
    parts = [_u32(provenance.oid), _string(provenance.op_type), _string(provenance.label)]
    parts.append(_u32(len(provenance.inputs)))
    for input_ref in provenance.inputs:
        pred = input_ref.predecessor
        parts.append(_u32(_NONE_PRED if pred is None else pred))
        if input_ref.accessed is UNDEFINED:
            parts.append(_u8(_FLAG_UNDEFINED))
        else:
            parts.append(_u8(_FLAG_PRESENT))
            accessed = sorted(input_ref.accessed, key=str)
            parts.append(_u32(len(accessed)))
            parts.extend(_string(str(path)) for path in accessed)
        if input_ref.schema is None:
            parts.append(_u8(_FLAG_UNDEFINED))
        else:
            parts.append(_u8(_FLAG_PRESENT))
            parts.append(_string(json.dumps(type_to_obj(input_ref.schema.struct))))
    if provenance.manipulations_undefined():
        parts.append(_u8(_FLAG_UNDEFINED))
    else:
        pairs = provenance.manipulations_or_empty()
        parts.append(_u8(_FLAG_PRESENT))
        parts.append(_u32(len(pairs)))
        for path_in, path_out in pairs:
            parts.append(_string(str(path_in)) + _string(str(path_out)))
    parts.append(_encode_associations(provenance.associations))
    return b"".join(parts)


def decode_operator(cursor: Cursor) -> OperatorProvenance:
    """Decode one operator record at the cursor position."""
    oid = cursor.u32()
    op_type = cursor.string()
    label = cursor.string()
    inputs = []
    for _ in range(cursor.u32()):
        pred_raw = cursor.u32()
        predecessor = None if pred_raw == _NONE_PRED else pred_raw
        if cursor.u8() == _FLAG_UNDEFINED:
            accessed: Any = UNDEFINED
        else:
            accessed = [parse_path(cursor.string()) for _ in range(cursor.u32())]
        schema = None
        if cursor.u8() == _FLAG_PRESENT:
            schema = Schema(type_from_obj(json.loads(cursor.string())))
        inputs.append(InputRef(predecessor, accessed, schema=schema))
    if cursor.u8() == _FLAG_UNDEFINED:
        manipulations: Any = UNDEFINED
    else:
        manipulations = [
            (parse_path(cursor.string()), parse_path(cursor.string()))
            for _ in range(cursor.u32())
        ]
    associations = _decode_associations(cursor)
    return OperatorProvenance(oid, op_type, inputs, manipulations, associations, label)


# -- source items and result rows ---------------------------------------------


def encode_source_items(name: str, items: dict[int, DataItem]) -> bytes:
    """Encode a read operator's ``id -> input item`` mapping."""
    parts = [_string(name), _u64(len(items))]
    for item_id, item in sorted(items.items()):
        parts.append(_u64(item_id))
        parts.append(_string(json.dumps(_jsonable(item))))
    return b"".join(parts)


def decode_source_items(cursor: Cursor) -> tuple[str, dict[int, DataItem]]:
    name = cursor.string()
    items = {}
    for _ in range(cursor.u64()):
        item_id = cursor.u64()
        items[item_id] = DataItem(json.loads(cursor.string()))
    return name, items


def encode_rows(
    rows: "Sequence[tuple[int | None, DataItem]] | Iterable[tuple[int | None, DataItem]]",
    count: int | None = None,
) -> bytes:
    """Encode the provenance-annotated result rows of one run.

    *rows* may be any iterable when *count* is given, so a columnar
    execution streams ``iter_rows()`` straight into the encoder without
    materialising a row list first.
    """
    if count is None:
        count = len(rows)  # type: ignore[arg-type]
    parts = [_u64(count)]
    encoded = 0
    for pid, item in rows:
        parts.append(_opt_id(pid))
        parts.append(_string(json.dumps(_jsonable(item))))
        encoded += 1
    if encoded != count:
        raise ProvenanceError(f"row count mismatch: declared {count}, encoded {encoded}")
    return b"".join(parts)


def decode_rows(cursor: Cursor) -> list[tuple[int | None, DataItem]]:
    return [
        (cursor.opt_id(), DataItem(json.loads(cursor.string())))
        for _ in range(cursor.u64())
    ]


def encode_segment(kind: int, payload: bytes) -> bytes:
    """Wrap *payload* with the segment preamble."""
    return MAGIC + _u16(FORMAT_VERSION) + _u8(kind) + payload


def open_segment(buffer: bytes, expected_kind: int) -> Cursor:
    """Validate a segment preamble and return a cursor over its payload."""
    cursor = Cursor(buffer)
    _, kind = cursor.expect_magic()
    if kind != expected_kind:
        raise ProvenanceError(
            f"wrong segment kind: expected {expected_kind}, found {kind}"
        )
    return cursor


# -- whole-store blob (ProvenanceStore.serialize) -----------------------------


def encode_store_blob(operators: Sequence[OperatorProvenance]) -> bytes:
    """Encode an operator sequence as one decodable blob.

    This backs :meth:`repro.core.store.ProvenanceStore.serialize`; source
    items are not included (they live in their own warehouse segments).
    """
    parts = [MAGIC, _u16(FORMAT_VERSION), _u32(len(operators))]
    parts.extend(encode_operator(provenance) for provenance in operators)
    return b"".join(parts)


def decode_store_blob(blob: bytes) -> list[OperatorProvenance]:
    """Decode a :func:`encode_store_blob` byte string."""
    cursor = Cursor(blob)
    magic = cursor._take(4)
    if magic != MAGIC:
        raise ProvenanceError(f"not a provenance blob (magic {magic!r})")
    version = cursor.u16()
    if version != FORMAT_VERSION:
        raise ProvenanceError(f"unsupported provenance blob version {version}")
    return [decode_operator(cursor) for _ in range(cursor.u32())]
