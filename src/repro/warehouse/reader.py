"""Lazy reader: serve backtrace queries from segments without a full load.

:class:`LazyProvenanceStore` satisfies the
:class:`~repro.core.store.ProvenanceStoreProtocol`, so the backtracing
algorithm runs over it unchanged -- but operators decode on demand from
their segment files, an LRU cache bounds resident provenance, and the
footer index answers ``is_source``/``source_name``/``size_report`` with
zero decodes.  Source-item blocks are decoded separately from operator
records: backtracing walks every reachable operator's record (it needs the
predecessor references and associations), while item blocks are only read
for sources that actually end up with provenance entries.

Cache hits and misses feed a
:class:`~repro.engine.metrics.SegmentCacheMetrics`, making "how much of the
run did this query touch?" an observable rather than a hope.

The store is **thread safe**: one re-entrant lock guards the LRU maps and
the decode path, so concurrent backtraces (the ``repro.serve`` query service
shares one resident store per run across request threads) see a consistent
cache and deterministic hit/miss accounting -- each segment decodes exactly
once, never twice under a racing double-miss.  Segment file handles are
opened per read (open/seek/read/close), so no file-position state is shared
between threads.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path as FsPath
from typing import Any, Iterator

from repro.core.operator_provenance import OperatorProvenance
from repro.core.store import ProvenanceSizeReport
from repro.engine.metrics import SegmentCacheMetrics
from repro.engine.plan import PlanNode
from repro.errors import BacktraceError, ProvenanceError
from repro.nested.values import DataItem
from repro.obs.breakdown import get_breakdown
from repro.obs.tracer import get_tracer
import repro.warehouse.format as wf
from repro.warehouse.writer import MANIFEST_NAME, OPS_DIR

__all__ = ["LazyProvenanceStore", "RestoredPlanNode", "load_manifest", "read_rows"]

#: Default number of decoded operator segments kept resident.
DEFAULT_CACHE_SIZE = 64


class RestoredPlanNode(PlanNode):
    """Placeholder plan root carrying only the sink's operator id.

    A restored execution supports querying, not re-running; the original
    program is the source of truth for the plan itself.
    """

    op_type = "restored"

    def __init__(self, oid: int):
        super().__init__(oid, ())


def load_manifest(run_dir: FsPath) -> dict[str, Any]:
    """Read and validate a run's footer index."""
    path = FsPath(run_dir) / MANIFEST_NAME
    if not path.exists():
        raise ProvenanceError(f"no run manifest at {path}")
    with open(path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format") != wf.FORMAT_VERSION:
        raise ProvenanceError(
            f"unsupported run manifest format: {manifest.get('format')!r}"
        )
    return manifest


def read_rows(
    run_dir: FsPath,
    manifest: dict[str, Any],
    metrics: SegmentCacheMetrics | None = None,
) -> list[tuple[int | None, DataItem]]:
    """Decode the result rows segment of a run."""
    with get_tracer().span("segment-read rows", "warehouse") as span:
        buffer = (FsPath(run_dir) / manifest["rows"]["segment"]).read_bytes()
        if metrics is not None:
            metrics.add(bytes_read=len(buffer))
        span.set(bytes=len(buffer))
        return wf.decode_rows(wf.open_segment(buffer, wf.SEGMENT_ROWS))


class LazyProvenanceStore:
    """An on-disk provenance store decoding operator segments on demand."""

    def __init__(
        self,
        run_dir: FsPath,
        manifest: dict[str, Any] | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        metrics: SegmentCacheMetrics | None = None,
    ):
        if cache_size < 1:
            raise ProvenanceError(f"segment cache needs capacity >= 1, got {cache_size}")
        self._run_dir = FsPath(run_dir)
        self._manifest = manifest if manifest is not None else load_manifest(run_dir)
        #: oid -> footer index entry (segment, offsets, counts, sizes).
        self._index: dict[int, dict[str, Any]] = {
            int(oid): entry for oid, entry in self._manifest["operators"].items()
        }
        self._cache_size = cache_size
        self._operators: OrderedDict[int, OperatorProvenance] = OrderedDict()
        self._source_items: OrderedDict[int, dict[int, DataItem]] = OrderedDict()
        self.metrics = metrics if metrics is not None else SegmentCacheMetrics()
        #: Guards the two LRU maps and the decode path; re-entrant because
        #: ``source_item`` may fall through to ``source_items`` while held.
        self._lock = threading.RLock()

    # -- index-only lookups (zero decodes) -----------------------------------

    def has(self, oid: int) -> bool:
        return oid in self._index

    def is_source(self, oid: int) -> bool:
        """Answer from the footer index; no segment decode."""
        return self._entry(oid)["kind"] == "read"

    def source_name(self, oid: int) -> str:
        entry = self._index.get(oid)
        if entry is None or "source_name" not in entry:
            return f"source-{oid}"
        return entry["source_name"]

    def size_report(self) -> ProvenanceSizeReport:
        """Fig. 8 accounting straight from the footer index."""
        lineage = 0
        structural = 0
        records = 0
        per_operator: dict[int, tuple[str, int, int]] = {}
        for oid, entry in self._index.items():
            lineage += entry["lineage_bytes"]
            structural += entry["structural_bytes"]
            records += entry["records"]
            per_operator[oid] = (
                entry["op_type"],
                entry["lineage_bytes"],
                entry["structural_bytes"],
            )
        return ProvenanceSizeReport(lineage, structural, records, per_operator)

    @property
    def sink_oid(self) -> int:
        return self._manifest["sink_oid"]

    @property
    def run_id(self) -> str:
        return self._manifest["run_id"]

    @property
    def run_dir_path(self) -> FsPath:
        return self._run_dir

    @property
    def manifest(self) -> dict[str, Any]:
        """The footer index (shared, not copied -- treat as read-only)."""
        return self._manifest

    def footer_topology(self) -> dict[int, tuple[int, ...]]:
        """``oid -> predecessor oids`` for every operator, with zero decodes.

        The forward tracer orders its walk from this map alone; only the
        operators its frontier actually reaches ever decode.
        """
        return {
            oid: tuple(entry.get("predecessors", ()))
            for oid, entry in self._index.items()
        }

    def _entry(self, oid: int) -> dict[str, Any]:
        entry = self._index.get(oid)
        if entry is None:
            raise BacktraceError(f"no captured provenance for operator {oid}")
        return entry

    # -- lazy decoding --------------------------------------------------------

    def _read_range(self, entry: dict[str, Any], offset_key: str, length_key: str) -> bytes:
        path = self._run_dir / OPS_DIR / entry["segment"]
        with open(path, "rb") as handle:
            handle.seek(entry[offset_key])
            raw = handle.read(entry[length_key])
        self.metrics.add(bytes_read=len(raw))
        return raw

    def get(self, oid: int) -> OperatorProvenance:
        """Return operator *oid*, decoding its segment on a cache miss.

        Decoding happens under the store lock: concurrent readers of a cold
        operator serialise on the decode instead of duplicating it, which
        keeps the miss counter equal to the number of unique segments read.
        """
        with self._lock:
            cached = self._operators.get(oid)
            if cached is not None:
                self.metrics.add(hits=1)
                self._operators.move_to_end(oid)
                return cached
            entry = self._entry(oid)
            self.metrics.add(misses=1)
            with get_tracer().span(
                f"segment-read op-{oid}",
                "warehouse",
                segment=entry["segment"],
                op_type=entry["op_type"],
                bytes=entry["record_length"],
            ), get_breakdown().phase("segment_decode"):
                raw = self._read_range(entry, "offset", "record_length")
                provenance = wf.decode_operator(wf.Cursor(raw))
            self._operators[oid] = provenance
            if len(self._operators) > self._cache_size:
                self._operators.popitem(last=False)
                self.metrics.add(evictions=1)
            return provenance

    def source_items(self, oid: int) -> dict[int, DataItem]:
        """Return a read operator's ``id -> item`` block (decoded on demand)."""
        with self._lock:
            cached = self._source_items.get(oid)
            if cached is not None:
                self.metrics.add(item_hits=1)
                self._source_items.move_to_end(oid)
                return dict(cached)
            entry = self._entry(oid)
            if "items_offset" not in entry:
                raise BacktraceError(f"operator {oid} is not a read operator")
            self.metrics.add(item_misses=1)
            with get_tracer().span(
                f"segment-read items op-{oid}",
                "warehouse",
                segment=entry["segment"],
                bytes=entry["items_length"],
            ), get_breakdown().phase("segment_decode"):
                raw = self._read_range(entry, "items_offset", "items_length")
                _, items = wf.decode_source_items(wf.Cursor(raw))
            self._source_items[oid] = items
            if len(self._source_items) > self._cache_size:
                self._source_items.popitem(last=False)
                self.metrics.add(evictions=1)
            return dict(items)

    def source_item(self, oid: int, item_id: int) -> DataItem:
        with self._lock:
            items = self._source_items.get(oid)
            if items is None:
                self.source_items(oid)
                items = self._source_items[oid]
            else:
                self.metrics.add(item_hits=1)
            if item_id not in items:
                raise BacktraceError(f"source {oid} has no item with id {item_id}")
            return items[item_id]

    def operators(self) -> Iterator[OperatorProvenance]:
        """Iterate over every operator (decodes the whole run; avoid on hot
        paths -- exists for protocol parity and offline tooling)."""
        for oid in sorted(self._index):
            yield self.get(oid)

    def __len__(self) -> int:
        return len(self._index)

    def __repr__(self) -> str:
        return (
            f"LazyProvenanceStore({self._manifest['run_id']!r}, "
            f"{len(self._index)} operators, {len(self._operators)} resident)"
        )
