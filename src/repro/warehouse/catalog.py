"""Run catalog: the JSON manifest listing every execution in a warehouse.

One warehouse root stores many captured executions (the multi-run shape the
paper's use-cases need: auditing and data-usage queries span runs recorded
days apart).  ``catalog.json`` is the only file a listing has to read -- it
carries per run the name, creation timestamp, sink operator, and size
figures, so ``repro warehouse ls`` never touches a segment.
"""

from __future__ import annotations

import json
import time
from pathlib import Path as FsPath
from typing import Any

from repro.errors import ProvenanceError

__all__ = ["RunRecord", "Catalog", "CATALOG_VERSION"]

CATALOG_VERSION = 1


class RunRecord:
    """One catalog entry: the identity and vital statistics of a stored run."""

    __slots__ = (
        "run_id",
        "name",
        "created",
        "sink_oid",
        "operator_count",
        "row_count",
        "total_bytes",
        "indexed",
    )

    def __init__(
        self,
        run_id: str,
        name: str,
        created: float,
        sink_oid: int,
        operator_count: int,
        row_count: int,
        total_bytes: int,
        indexed: bool = False,
    ):
        self.run_id = run_id
        self.name = name
        #: Seconds since the epoch at :meth:`Warehouse.record` time.
        self.created = created
        self.sink_oid = sink_oid
        self.operator_count = operator_count
        self.row_count = row_count
        #: Bytes of all segments on disk (operators + rows).
        self.total_bytes = total_bytes
        #: Whether the run carries a persisted ``index.seg`` (forward/audit
        #: queries fall back to a full scan when false).
        self.indexed = indexed

    def created_iso(self) -> str:
        return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(self.created))

    def to_obj(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "name": self.name,
            "created": self.created,
            "sink_oid": self.sink_oid,
            "operator_count": self.operator_count,
            "row_count": self.row_count,
            "total_bytes": self.total_bytes,
            "indexed": self.indexed,
        }

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "RunRecord":
        return cls(
            obj["run_id"],
            obj["name"],
            obj["created"],
            obj["sink_oid"],
            obj["operator_count"],
            obj["row_count"],
            obj["total_bytes"],
            # Pre-1.3 catalogs have no flag; such runs may still be indexed
            # on disk (RunIndex.load checks the manifest, the ground truth).
            obj.get("indexed", False),
        )

    def __repr__(self) -> str:
        return f"RunRecord({self.run_id!r}, name={self.name!r}, {self.row_count} rows)"


class Catalog:
    """The warehouse's run registry, persisted as ``catalog.json``."""

    FILENAME = "catalog.json"

    def __init__(self, root: FsPath):
        self.root = FsPath(root)
        self._records: list[RunRecord] = []
        self._next_seq = 1

    @property
    def path(self) -> FsPath:
        return self.root / self.FILENAME

    @classmethod
    def load(cls, root: FsPath) -> "Catalog":
        """Read the catalog under *root*, or start an empty one."""
        catalog = cls(root)
        if not catalog.path.exists():
            return catalog
        with open(catalog.path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if document.get("version") != CATALOG_VERSION:
            raise ProvenanceError(
                f"unsupported catalog version: {document.get('version')!r}"
            )
        catalog._records = [RunRecord.from_obj(entry) for entry in document["runs"]]
        catalog._next_seq = document.get("next_seq", len(catalog._records) + 1)
        return catalog

    def save(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        document = {
            "version": CATALOG_VERSION,
            "next_seq": self._next_seq,
            "runs": [record.to_obj() for record in self._records],
        }
        # Write-then-rename keeps the catalog readable if a record() crashes
        # mid-write (the fresh run directory is then simply unreferenced).
        tmp = self.path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
        tmp.replace(self.path)

    def new_run_id(self, name: str) -> str:
        """Mint the next run identifier: a sequence number plus a name slug."""
        slug = "".join(ch if ch.isalnum() else "-" for ch in name.lower()).strip("-")
        run_id = f"run-{self._next_seq:04d}" + (f"-{slug}" if slug else "")
        self._next_seq += 1
        return run_id

    def add(self, record: RunRecord) -> None:
        if any(existing.run_id == record.run_id for existing in self._records):
            raise ProvenanceError(f"run {record.run_id!r} already catalogued")
        self._records.append(record)

    def runs(self) -> list[RunRecord]:
        """All records, oldest first."""
        return list(self._records)

    def latest(self) -> RunRecord:
        if not self._records:
            raise ProvenanceError(f"warehouse at {self.root} holds no runs")
        return self._records[-1]

    def find(self, run_id: str) -> RunRecord:
        """Resolve a run id or name (names resolve to their newest run)."""
        for record in self._records:
            if record.run_id == run_id:
                return record
        named = [record for record in self._records if record.name == run_id]
        if named:
            return named[-1]
        raise ProvenanceError(f"no run {run_id!r} in warehouse at {self.root}")

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return f"Catalog({self.root}, {len(self._records)} runs)"
