"""Run catalog: the JSON manifest listing every execution in a warehouse.

One warehouse root stores many captured executions (the multi-run shape the
paper's use-cases need: auditing and data-usage queries span runs recorded
days apart).  ``catalog.json`` is the only file a listing has to read -- it
carries per run the name, creation timestamp, sink operator, and size
figures, so ``repro warehouse ls`` never touches a segment.

Sharded warehouses additionally persist a **shard manifest** here: the list
of named shards, the consistent-hash replica count that places runs onto
them, and a monotonically increasing **epoch** per shard.  An epoch bumps
whenever that shard's membership changes (a run recorded into it, a run
moved by rebalancing), which generalizes the single catalog stat signature
into a vector: a serve worker compares epoch vectors and invalidates only
the cache entries and resident stores of shards that actually changed.
Catalogs written before sharding load unchanged -- they have no manifest
and behave as one anonymous shard at epoch 0.
"""

from __future__ import annotations

import json
import time
from pathlib import Path as FsPath
from typing import Any

from repro.errors import ProvenanceError

__all__ = [
    "RunRecord",
    "ShardManifest",
    "Catalog",
    "CATALOG_VERSION",
    "RUN_EPOCH_PREFIX",
]

CATALOG_VERSION = 1

#: Pseudo-shard name for runs stored in the legacy flat layout
#: (``<root>/runs/<run_id>``, no shard directory).
LEGACY_SHARD = ""

#: Epoch-vector key prefix for per-run segment epochs.  Shard names never
#: contain a colon, so run keys are unambiguous in the same vector.
RUN_EPOCH_PREFIX = "run:"


class ShardManifest:
    """The catalog's record of shard names, placement, and epochs."""

    def __init__(self, shards: list[str], replicas: int, epochs: dict[str, int]):
        #: Shard names in creation order (placement hashes the names, so the
        #: order is cosmetic; the names are load-bearing).
        self.shards = list(shards)
        #: Virtual points per shard on the placement ring -- persisted so
        #: every process places runs identically.
        self.replicas = int(replicas)
        #: ``shard -> epoch``; monotonically increasing per shard.
        self.epochs = dict(epochs)

    def to_obj(self) -> dict[str, Any]:
        return {
            "shards": list(self.shards),
            "replicas": self.replicas,
            "epochs": {name: self.epochs.get(name, 0) for name in self.shards},
        }

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "ShardManifest":
        return cls(obj["shards"], obj.get("replicas", 64), obj.get("epochs", {}))

    def bump(self, shard: str) -> int:
        """Advance *shard*'s epoch (membership changed) and return it."""
        self.epochs[shard] = self.epochs.get(shard, 0) + 1
        return self.epochs[shard]

    def __repr__(self) -> str:
        return f"ShardManifest({self.shards!r}, epochs={self.epochs!r})"


class RunRecord:
    """One catalog entry: the identity and vital statistics of a stored run."""

    __slots__ = (
        "run_id",
        "name",
        "created",
        "sink_oid",
        "operator_count",
        "row_count",
        "total_bytes",
        "indexed",
        "shard",
        "live",
        "segment_epoch",
    )

    def __init__(
        self,
        run_id: str,
        name: str,
        created: float,
        sink_oid: int,
        operator_count: int,
        row_count: int,
        total_bytes: int,
        indexed: bool = False,
        shard: str | None = None,
        live: bool = False,
        segment_epoch: int | None = None,
    ):
        self.run_id = run_id
        self.name = name
        #: Seconds since the epoch at :meth:`Warehouse.record` time.
        self.created = created
        self.sink_oid = sink_oid
        self.operator_count = operator_count
        self.row_count = row_count
        #: Bytes of all segments on disk (operators + rows).
        self.total_bytes = total_bytes
        #: Whether the run carries a persisted ``index.seg`` (forward/audit
        #: queries fall back to a full scan when false).
        self.indexed = indexed
        #: Storage shard holding the run's directory, or ``None`` for the
        #: legacy flat layout (``<root>/runs/<run_id>``).
        self.shard = shard
        #: ``True`` while a streaming capture is still appending micro-batch
        #: epochs; sealed and batch runs are ``False``.
        self.live = live
        #: Monotonic per-run segment counter: bumps on every epoch append
        #: and retention sweep.  ``None`` for plain batch runs -- such runs
        #: never change, so they need no per-run invalidation granule.
        self.segment_epoch = segment_epoch

    def created_iso(self) -> str:
        return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(self.created))

    def to_obj(self) -> dict[str, Any]:
        obj = {
            "run_id": self.run_id,
            "name": self.name,
            "created": self.created,
            "sink_oid": self.sink_oid,
            "operator_count": self.operator_count,
            "row_count": self.row_count,
            "total_bytes": self.total_bytes,
            "indexed": self.indexed,
        }
        if self.shard is not None:
            obj["shard"] = self.shard
        # Streaming fields are emitted only when meaningful, so catalogs of
        # batch-only warehouses keep their pre-2.1 shape byte for byte.
        if self.live:
            obj["live"] = True
        if self.segment_epoch is not None:
            obj["segment_epoch"] = self.segment_epoch
        return obj

    @classmethod
    def from_obj(cls, obj: dict[str, Any]) -> "RunRecord":
        return cls(
            obj["run_id"],
            obj["name"],
            obj["created"],
            obj["sink_oid"],
            obj["operator_count"],
            obj["row_count"],
            obj["total_bytes"],
            # Pre-1.3 catalogs have no flag; such runs may still be indexed
            # on disk (RunIndex.load checks the manifest, the ground truth).
            obj.get("indexed", False),
            obj.get("shard"),
            # Pre-2.1 catalogs know nothing of streaming; their runs load
            # as plain sealed batch runs.
            obj.get("live", False),
            obj.get("segment_epoch"),
        )

    def __repr__(self) -> str:
        return f"RunRecord({self.run_id!r}, name={self.name!r}, {self.row_count} rows)"


class Catalog:
    """The warehouse's run registry, persisted as ``catalog.json``."""

    FILENAME = "catalog.json"

    def __init__(self, root: FsPath):
        self.root = FsPath(root)
        self._records: list[RunRecord] = []
        self._next_seq = 1
        #: Shard layout, or ``None`` for an unsharded (flat-layout) warehouse.
        self.manifest: ShardManifest | None = None
        #: Epoch of the legacy pseudo-shard: bumps on every record into the
        #: flat layout so unsharded warehouses still get epoch invalidation.
        self.legacy_epoch = 0

    @property
    def path(self) -> FsPath:
        return self.root / self.FILENAME

    @classmethod
    def load(cls, root: FsPath) -> "Catalog":
        """Read the catalog under *root*, or start an empty one."""
        catalog = cls(root)
        if not catalog.path.exists():
            return catalog
        with open(catalog.path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if document.get("version") != CATALOG_VERSION:
            raise ProvenanceError(
                f"unsupported catalog version: {document.get('version')!r}"
            )
        catalog._records = [RunRecord.from_obj(entry) for entry in document["runs"]]
        catalog._next_seq = document.get("next_seq", len(catalog._records) + 1)
        if "shards" in document:
            catalog.manifest = ShardManifest.from_obj(document["shards"])
        catalog.legacy_epoch = document.get("epoch", 0)
        return catalog

    def save(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        document: dict[str, Any] = {
            "version": CATALOG_VERSION,
            "next_seq": self._next_seq,
            "epoch": self.legacy_epoch,
            "runs": [record.to_obj() for record in self._records],
        }
        if self.manifest is not None:
            document["shards"] = self.manifest.to_obj()
        # Write-then-rename keeps the catalog readable if a record() crashes
        # mid-write (the fresh run directory is then simply unreferenced).
        tmp = self.path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
        tmp.replace(self.path)

    def epoch_vector(self) -> dict[str, int]:
        """``shard -> epoch`` snapshot, always including the legacy shard.

        Two equal vectors mean the catalog describes the same membership:
        a serve worker compares vectors and drops only what belongs to
        entries whose epoch moved.  Runs with a segment epoch (streaming
        captures) additionally contribute a ``run:<run_id>`` entry -- a
        micro-batch append bumps only that entry, so serve invalidation is
        segment-granular instead of shard-granular.
        """
        vector = {LEGACY_SHARD: self.legacy_epoch}
        if self.manifest is not None:
            for name in self.manifest.shards:
                vector[name] = self.manifest.epochs.get(name, 0)
        for record in self._records:
            if record.segment_epoch is not None:
                vector[RUN_EPOCH_PREFIX + record.run_id] = record.segment_epoch
        return vector

    def bump_epoch(self, shard: str | None) -> None:
        """Record a membership change in *shard* (``None`` = legacy layout)."""
        if shard is None or shard == LEGACY_SHARD:
            self.legacy_epoch += 1
        else:
            if self.manifest is None:
                raise ProvenanceError(
                    f"cannot bump epoch of shard {shard!r}: warehouse is unsharded"
                )
            self.manifest.bump(shard)

    def new_run_id(self, name: str) -> str:
        """Mint the next run identifier: a sequence number plus a name slug."""
        slug = "".join(ch if ch.isalnum() else "-" for ch in name.lower()).strip("-")
        run_id = f"run-{self._next_seq:04d}" + (f"-{slug}" if slug else "")
        self._next_seq += 1
        return run_id

    def add(self, record: RunRecord) -> None:
        if any(existing.run_id == record.run_id for existing in self._records):
            raise ProvenanceError(f"run {record.run_id!r} already catalogued")
        self._records.append(record)

    def runs(self) -> list[RunRecord]:
        """All records, oldest first."""
        return list(self._records)

    def latest(self) -> RunRecord:
        if not self._records:
            raise ProvenanceError(f"warehouse at {self.root} holds no runs")
        return self._records[-1]

    def find(self, run_id: str) -> RunRecord:
        """Resolve a run id or name (names resolve to their newest run)."""
        for record in self._records:
            if record.run_id == run_id:
                return record
        named = [record for record in self._records if record.name == run_id]
        if named:
            return named[-1]
        raise ProvenanceError(f"no run {run_id!r} in warehouse at {self.root}")

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return f"Catalog({self.root}, {len(self._records)} runs)"
