"""Persisted warehouse indexes: the query-side acceleration structures.

Backtracing reads a run from the sink downwards, so the footer index
(``manifest.json``) is enough to make it sublinear: only reachable
operators decode.  The *forward* direction ("which outputs derive from
these input items?", the GDPR audit question) starts at the sources, and
without extra structure every operator segment and every source-item block
must be scanned.  This module persists, per run, one extra segment file
(``index.seg``, kind :data:`~repro.warehouse.format.SEGMENT_INDEX`) holding
four sections:

``INPUTS``
    The inverted ``input id -> consuming operator oids`` map.  Identifiers
    are unique across a whole run (one executor counter), so the forward
    closure can jump from a frontier id straight to the operators that
    consume it and skip (never decode) everything else.

``TERMS``
    ``string leaf value -> sorted (source oid, item id) postings`` over the
    source items.  Every string leaf of length <= :data:`MAX_TERM_LEN` is
    indexed, which makes the index **complete** for such terms: a probe for
    an indexable term that has no postings proves zero candidates.  Probing
    a longer term must fall back to a scan.

``ITEMS``
    Per source oid, the absolute byte range of each item record inside its
    segment file -- a subject lookup decodes candidate items only, not the
    whole block.

``PATHS``
    The A/M records inverted: ``path -> accessing oids`` and ``path ->
    manipulating oids`` (the usage-analysis questions, answered with zero
    operator decodes).

The index is *derived* data built by re-reading the already-written
segments (:func:`RunIndex.build`), so record-time indexing and
``repro index build`` backfill share one code path and produce identical
bytes.  ``manifest.json`` gains an ``"index"`` entry pointing at the
segment; a run without that entry (or whose segment file is missing) loads
as ``None`` and every reader falls back to the full scan.
"""

from __future__ import annotations

import json
from pathlib import Path as FsPath
from typing import Any, Iterator

from repro.core.operator_provenance import (
    AggregationAssociations,
    BinaryAssociations,
    FlattenAssociations,
    ReadAssociations,
    UnaryAssociations,
)
from repro.errors import ProvenanceError
from repro.nested.values import DataItem
import repro.warehouse.format as wf
from repro.warehouse.writer import MANIFEST_NAME, OPS_DIR

__all__ = [
    "INDEX_SEGMENT",
    "INDEX_VERSION",
    "MAX_TERM_LEN",
    "RunIndex",
    "ensure_index",
    "walk_string_leaves",
]

INDEX_SEGMENT = "index.seg"
INDEX_VERSION = 1

#: Longest string leaf the TERMS section indexes.  Tweet texts and names
#: fit; probing anything longer falls back to the scan path (the index is
#: complete only for terms within the cap).
MAX_TERM_LEN = 120


def walk_string_leaves(value: Any) -> Iterator[str]:
    """Yield every string leaf of a JSON-shaped value (dicts/lists/scalars)."""
    if isinstance(value, str):
        yield value
    elif isinstance(value, dict):
        for child in value.values():
            yield from walk_string_leaves(child)
    elif isinstance(value, (list, tuple)):
        for child in value:
            yield from walk_string_leaves(child)


def _consumed_ids(associations: Any) -> Iterator[int]:
    """The input-side identifiers one operator's associations reference."""
    if isinstance(associations, ReadAssociations):
        return
    if isinstance(associations, UnaryAssociations):
        for id_in, _ in associations.records:
            yield id_in
    elif isinstance(associations, FlattenAssociations):
        for id_in, _, _ in associations.records:
            yield id_in
    elif isinstance(associations, BinaryAssociations):
        for id_in1, id_in2, _ in associations.records:
            if id_in1 is not None:
                yield id_in1
            if id_in2 is not None:
                yield id_in2
    elif isinstance(associations, AggregationAssociations):
        for ids_in, _ in associations.records:
            yield from ids_in
    else:  # pragma: no cover -- new association kinds must be handled here
        raise ProvenanceError(
            f"cannot index associations {type(associations).__name__}"
        )


class RunIndex:
    """The decoded persisted index of one stored run."""

    __slots__ = ("inputs", "terms", "items", "accessed", "manipulated")

    def __init__(
        self,
        inputs: dict[int, tuple[int, ...]],
        terms: dict[str, tuple[tuple[int, int], ...]],
        items: dict[int, dict[int, tuple[int, int]]],
        accessed: dict[str, tuple[int, ...]],
        manipulated: dict[str, tuple[int, ...]],
    ):
        #: input id -> sorted oids of the operators consuming it.
        self.inputs = inputs
        #: string leaf -> sorted (source oid, item id) postings.
        self.terms = terms
        #: source oid -> item id -> (absolute offset, length) in its segment.
        self.items = items
        #: path text -> sorted oids with the path in an A record.
        self.accessed = accessed
        #: input path text -> sorted oids with the path in an M record.
        self.manipulated = manipulated

    # -- lookups ---------------------------------------------------------------

    def consumers(self, item_id: int) -> tuple[int, ...]:
        return self.inputs.get(item_id, ())

    def candidates(self, term: str) -> tuple[tuple[int, int], ...]:
        """Postings for an indexable term; raises beyond :data:`MAX_TERM_LEN`.

        The TERMS section is complete for terms within the cap, so an empty
        result is a proof of absence -- callers must not silently probe
        over-cap terms (that would turn "not indexed" into "no candidates").
        """
        if len(term) > MAX_TERM_LEN:
            raise ProvenanceError(
                f"term of length {len(term)} exceeds the index cap {MAX_TERM_LEN}"
            )
        return self.terms.get(term, ())

    def item_range(self, oid: int, item_id: int) -> tuple[int, int] | None:
        return self.items.get(oid, {}).get(item_id)

    def operators_touching(self, path: str) -> dict[str, tuple[int, ...]]:
        """A/M operators of one path (the PATHS section, both directions)."""
        return {
            "accessed": self.accessed.get(path, ()),
            "manipulated": self.manipulated.get(path, ()),
        }

    def summary(self) -> dict[str, Any]:
        return {
            "version": INDEX_VERSION,
            "inputs": len(self.inputs),
            "terms": len(self.terms),
            "items": sum(len(ranges) for ranges in self.items.values()),
            "paths": len(self.accessed) + len(self.manipulated),
        }

    # -- building --------------------------------------------------------------

    @classmethod
    def build(cls, run_dir: FsPath, manifest: dict[str, Any]) -> "RunIndex":
        """Derive the index by re-reading a written run's segments.

        Works identically at ``record`` time and for backfill: the stored
        segments are the single source of truth, so both paths produce
        byte-identical index segments.
        """
        run_dir = FsPath(run_dir)
        inputs: dict[int, set[int]] = {}
        terms: dict[str, set[tuple[int, int]]] = {}
        items: dict[int, dict[int, tuple[int, int]]] = {}
        accessed: dict[str, set[int]] = {}
        manipulated: dict[str, set[int]] = {}
        for oid_text, entry in manifest["operators"].items():
            oid = int(oid_text)
            path = run_dir / OPS_DIR / entry["segment"]
            with open(path, "rb") as handle:
                handle.seek(entry["offset"])
                record = handle.read(entry["record_length"])
                provenance = wf.decode_operator(wf.Cursor(record))
                for item_id in _consumed_ids(provenance.associations):
                    inputs.setdefault(item_id, set()).add(oid)
                for input_ref in provenance.inputs:
                    for acc in input_ref.accessed_or_empty():
                        accessed.setdefault(str(acc), set()).add(oid)
                for path_in, _path_out in provenance.manipulations_or_empty():
                    manipulated.setdefault(str(path_in), set()).add(oid)
                if "items_offset" not in entry:
                    continue
                handle.seek(entry["items_offset"])
                block = handle.read(entry["items_length"])
            cursor = wf.Cursor(block)
            cursor.string()  # source name
            count = cursor.u64()
            ranges: dict[int, tuple[int, int]] = {}
            for _ in range(count):
                start = cursor.offset
                item_id = cursor.u64()
                payload = cursor.string()
                ranges[item_id] = (entry["items_offset"] + start, cursor.offset - start)
                for leaf in walk_string_leaves(json.loads(payload)):
                    if len(leaf) <= MAX_TERM_LEN:
                        terms.setdefault(leaf, set()).add((oid, item_id))
            items[oid] = ranges
        return cls(
            {item_id: tuple(sorted(oids)) for item_id, oids in inputs.items()},
            {term: tuple(sorted(postings)) for term, postings in terms.items()},
            items,
            {text: tuple(sorted(oids)) for text, oids in accessed.items()},
            {text: tuple(sorted(oids)) for text, oids in manipulated.items()},
        )

    # -- codec -----------------------------------------------------------------

    def encode(self) -> bytes:
        parts = [wf._u8(INDEX_VERSION)]
        parts.append(wf._u64(len(self.inputs)))
        for item_id in sorted(self.inputs):
            oids = self.inputs[item_id]
            parts.append(wf._u64(item_id) + wf._u32(len(oids)))
            parts.extend(wf._u32(oid) for oid in oids)
        parts.append(wf._u64(len(self.terms)))
        for term in sorted(self.terms):
            postings = self.terms[term]
            parts.append(wf._string(term) + wf._u32(len(postings)))
            for oid, item_id in postings:
                parts.append(wf._u32(oid) + wf._u64(item_id))
        parts.append(wf._u32(len(self.items)))
        for oid in sorted(self.items):
            ranges = self.items[oid]
            parts.append(wf._u32(oid) + wf._u64(len(ranges)))
            for item_id in sorted(ranges):
                offset, length = ranges[item_id]
                parts.append(wf._u64(item_id) + wf._u64(offset) + wf._u32(length))
        for section in (self.accessed, self.manipulated):
            parts.append(wf._u64(len(section)))
            for text in sorted(section):
                oids = section[text]
                parts.append(wf._string(text) + wf._u32(len(oids)))
                parts.extend(wf._u32(oid) for oid in oids)
        return wf.encode_segment(wf.SEGMENT_INDEX, b"".join(parts))

    @classmethod
    def decode(cls, buffer: bytes) -> "RunIndex":
        cursor = wf.open_segment(buffer, wf.SEGMENT_INDEX)
        version = cursor.u8()
        if version != INDEX_VERSION:
            raise ProvenanceError(f"unsupported run index version {version}")
        inputs = {}
        for _ in range(cursor.u64()):
            item_id = cursor.u64()
            inputs[item_id] = tuple(cursor.u32() for _ in range(cursor.u32()))
        terms = {}
        for _ in range(cursor.u64()):
            term = cursor.string()
            terms[term] = tuple(
                (cursor.u32(), cursor.u64()) for _ in range(cursor.u32())
            )
        items: dict[int, dict[int, tuple[int, int]]] = {}
        for _ in range(cursor.u32()):
            oid = cursor.u32()
            ranges = {}
            for _ in range(cursor.u64()):
                item_id = cursor.u64()
                ranges[item_id] = (cursor.u64(), cursor.u32())
            items[oid] = ranges
        sections = []
        for _ in range(2):
            section = {}
            for _ in range(cursor.u64()):
                text = cursor.string()
                section[text] = tuple(cursor.u32() for _ in range(cursor.u32()))
            sections.append(section)
        return cls(inputs, terms, items, sections[0], sections[1])

    # -- persistence -----------------------------------------------------------

    def write(self, run_dir: FsPath) -> dict[str, Any]:
        """Write ``index.seg`` under *run_dir*; returns the manifest entry."""
        encoded = self.encode()
        (FsPath(run_dir) / INDEX_SEGMENT).write_bytes(encoded)
        return dict(
            self.summary(), segment=INDEX_SEGMENT, segment_bytes=len(encoded)
        )

    @classmethod
    def load(cls, run_dir: FsPath, manifest: dict[str, Any]) -> "RunIndex | None":
        """The run's persisted index, or ``None`` when absent (scan fallback)."""
        entry = manifest.get("index")
        if not entry:
            return None
        path = FsPath(run_dir) / entry["segment"]
        if not path.exists():
            return None
        return cls.decode(path.read_bytes())

    def source_item(
        self, run_dir: FsPath, manifest: dict[str, Any], oid: int, item_id: int
    ) -> DataItem | None:
        """Decode one source item through its ITEMS byte range, if indexed."""
        byte_range = self.item_range(oid, item_id)
        if byte_range is None:
            return None
        entry = manifest["operators"][str(oid)]
        offset, length = byte_range
        with open(FsPath(run_dir) / OPS_DIR / entry["segment"], "rb") as handle:
            handle.seek(offset)
            raw = handle.read(length)
        cursor = wf.Cursor(raw)
        decoded_id = cursor.u64()
        if decoded_id != item_id:
            raise ProvenanceError(
                f"index range for item {item_id} decoded id {decoded_id}"
            )
        return DataItem(json.loads(cursor.string()))

    def __repr__(self) -> str:
        return (
            f"RunIndex({len(self.inputs)} input ids, {len(self.terms)} terms, "
            f"{sum(len(r) for r in self.items.values())} item ranges)"
        )


def ensure_index(
    run_dir: FsPath, manifest: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Build and persist the index of one run; returns its manifest entry.

    Rewrites ``manifest.json`` (write-then-rename) with the ``"index"``
    entry, so record-time indexing and ``repro index build`` backfill both
    leave the run in the same state.  Idempotent: an already-indexed run is
    re-derived and rewritten to the same bytes.
    """
    run_dir = FsPath(run_dir)
    if manifest is None:
        with open(run_dir / MANIFEST_NAME, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    entry = RunIndex.build(run_dir, manifest).write(run_dir)
    manifest["index"] = entry
    tmp = run_dir / (MANIFEST_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    tmp.replace(run_dir / MANIFEST_NAME)
    return entry
