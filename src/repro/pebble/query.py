"""Provenance query processing: tree-pattern match + backtrace (Sec. 6).

One function, :func:`query_provenance`, covers the two phases of the paper's
provenance querying: the distributed tree-pattern matching over the
pipeline's (provenance-annotated) result, and the backtracing of the matched
items through the captured operator provenance to every input dataset.
"""

from __future__ import annotations

from repro.core.backtrace.algorithms import Backtracer
from repro.core.backtrace.result import ProvenanceResult
from repro.core.treepattern.matcher import PatternMatch, match_rows, seed_structure
from repro.core.treepattern.parser import parse_pattern
from repro.core.treepattern.pattern import TreePattern
from repro.engine.columnar import ColumnarRows, match_columnar
from repro.engine.executor import ExecutionResult
from repro.errors import CaptureDisabledError
from repro.obs.breakdown import get_breakdown
from repro.obs.tracer import get_tracer

__all__ = ["query_provenance", "as_pattern"]


def as_pattern(pattern: TreePattern | str) -> TreePattern:
    """Coerce a pattern argument: text is parsed, patterns pass through."""
    if isinstance(pattern, TreePattern):
        return pattern
    return parse_pattern(pattern)


def query_provenance(
    execution: ExecutionResult, pattern: TreePattern | str
) -> ProvenanceResult:
    """Answer a structural provenance question over a captured execution.

    Phase 1 matches the tree pattern against the execution's result
    partitions, identifying the queried items and seeding the backtracing
    structure with their matched paths (contributing nodes).  Phase 2 runs
    the backtracing algorithm over the captured operator provenance down to
    every read operator and resolves the surviving input identifiers to the
    actual input items.
    """
    if execution.store is None:
        raise CaptureDisabledError(
            "provenance was not captured for this execution; re-run with capture=True"
        )
    tracer = get_tracer()
    breakdown = get_breakdown()
    tree_pattern = as_pattern(pattern)
    with tracer.span("pattern-match", "query", pattern=str(pattern)) as span:
        with breakdown.phase("pattern_match"):
            # Columnar partitions match through the vectorized candidate
            # pre-filter without decoding non-candidates; row partitions take
            # the per-item path.  Both produce the same match list.
            matches: list[PatternMatch] = []
            rows_visited = 0
            for partition in execution.raw_partitions:
                try:
                    rows_visited += len(partition)
                except TypeError:
                    pass
                if isinstance(partition, ColumnarRows):
                    matches.extend(match_columnar(tree_pattern, partition))
                else:
                    matches.extend(match_rows(tree_pattern, partition))
            seeds = seed_structure(matches)
        span.set(matched=len(matches))
    breakdown.count(rows_visited=rows_visited, matched=len(matches))
    matched_ids = sorted(match.item_id for match in matches if match.item_id is not None)
    is_empty = getattr(execution.store, "is_empty", None)
    if is_empty is not None and is_empty():
        # Every epoch of a live run can expire out from under a query (or a
        # run may not have ingested a batch yet); an erased run answers
        # nothing rather than failing the sink-topology walk.
        return ProvenanceResult([], matched_ids)
    backtracer = Backtracer(execution.store)
    with tracer.span("backtrace", "query", seeds=len(matches)):
        with breakdown.phase("closure"):
            raw = backtracer.backtrace(execution.root.oid, seeds)
    with tracer.span("source-resolution", "query", sources=len(raw)):
        with breakdown.phase("source_resolution"):
            return ProvenanceResult.resolve(execution.store, raw, matched_ids)
