"""Export paths: Graphviz/DOT renderings and the plain-JSON interchange.

The paper's outlook mentions a user-friendly front-end for interacting with
structural provenance; a DOT rendering is the lightweight version of that:
``plan_to_dot`` draws the operator DAG (Fig. 1 style), ``provenance_to_dot``
draws the backtracing trees of a query answer (Fig. 2 style) with
contributing nodes filled green-ish and influencing nodes dashed.

The whole-document JSON capture format (the predecessor of the binary
provenance warehouse) also lives on here as an interchange path:
:func:`export_execution_json` writes one self-contained JSON document that
external tools can read without knowing the segment format.
"""

from __future__ import annotations

from pathlib import Path as FsPath

from repro.core.backtrace.result import ProvenanceResult
from repro.core.backtrace.tree import BacktraceNode
from repro.core.paths import POS
from repro.engine.executor import ExecutionResult
from repro.engine.plan import PlanNode

__all__ = ["plan_to_dot", "provenance_to_dot", "export_execution_json"]


def export_execution_json(execution: ExecutionResult, path: FsPath | str) -> None:
    """Export a capture-enabled execution as one plain-JSON document."""
    from repro.pebble.persistence import save_execution_json

    save_execution_json(execution, path)


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def plan_to_dot(root: PlanNode, name: str = "pipeline") -> str:
    """Render the logical plan DAG as a DOT digraph (data flows upward)."""
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=box];"]
    for node in root.walk():
        lines.append(f'  op{node.oid} [label="{_escape(f"[{node.oid}] {node.label()}")}"];')
        for child in node.children:
            lines.append(f"  op{child.oid} -> op{node.oid};")
    lines.append("}")
    return "\n".join(lines)


def _tree_nodes(
    lines: list[str], prefix: str, label: str, node: BacktraceNode
) -> None:
    shown = "[pos]" if node.label is POS else str(label)
    marks = []
    if node.access:
        marks.append("A=" + ",".join(map(str, sorted(node.access))))
    if node.manipulation:
        marks.append("M=" + ",".join(map(str, sorted(node.manipulation))))
    suffix = ("\\n" + "; ".join(marks)) if marks else ""
    if node.contributing:
        style = 'style=filled, fillcolor="#c8e6c9"'
    else:
        style = 'style="filled,dashed", fillcolor="#e8f5e9"'
    lines.append(f'  {prefix} [label="{_escape(shown + suffix)}", {style}];')
    for child_label, child in sorted(
        node.children.items(), key=lambda pair: str(pair[0])
    ):
        child_prefix = f"{prefix}_{_node_key(child_label)}"
        _tree_nodes(lines, child_prefix, str(child_label), child)
        lines.append(f"  {prefix} -> {child_prefix};")


def _node_key(label: object) -> str:
    text = "pos" if label is POS else str(label)
    return "".join(ch if ch.isalnum() else "_" for ch in text)


def provenance_to_dot(provenance: ProvenanceResult, name: str = "provenance") -> str:
    """Render all backtraced trees as one DOT digraph, grouped per source.

    Contributing nodes are filled solid (the paper's dark green),
    influencing nodes are dashed (medium green).
    """
    lines = [f"digraph {name} {{", "  node [shape=ellipse];"]
    for source_index, source in enumerate(provenance.sources):
        lines.append(f"  subgraph cluster_{source_index} {{")
        lines.append(f'    label="{_escape(source.name)} (operator {source.oid})";')
        for entry in source:
            root_id = f"s{source_index}_i{entry.item_id}"
            lines.append(f'    {root_id} [label="id {entry.item_id}", shape=box];')
            for label, child in sorted(
                entry.tree.root.children.items(), key=lambda pair: str(pair[0])
            ):
                prefix = f"{root_id}_{_node_key(label)}"
                _tree_nodes(lines, prefix, str(label), child)
                lines.append(f"    {root_id} -> {prefix};")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
