"""The Pebble system: integrated capture and querying (paper Sec. 7.1)."""

from repro.pebble.api import CapturedExecution, PebbleSession
from repro.pebble.export import plan_to_dot, provenance_to_dot
from repro.pebble.persistence import load_execution, save_execution
from repro.pebble.query import query_provenance

__all__ = [
    "CapturedExecution",
    "PebbleSession",
    "plan_to_dot",
    "provenance_to_dot",
    "load_execution",
    "save_execution",
    "query_provenance",
]
