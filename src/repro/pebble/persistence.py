"""Persisting captured provenance for later querying.

Eager capture is only useful if the collected pebbles outlive the pipeline
run: auditing and data-usage analyses happen days after execution.  The
durable home for captured executions is the provenance warehouse
(:mod:`repro.warehouse`): :func:`save_execution` and :func:`load_execution`
are thin wrappers that record into / load from a single-run warehouse
directory, so existing callers and benchmarks keep working while gaining
indexed storage and lazy backtracing.

The original whole-document JSON format is retained as an *export* path
(:func:`save_execution_json` / re-exported through
:mod:`repro.pebble.export`): one plain-JSON document with the result rows,
the per-operator provenance, and the source items, so external tools can
read it too.  :func:`load_execution` still accepts such files.
"""

from __future__ import annotations

import json
from pathlib import Path as FsPath
from typing import Any

from repro.core.operator_provenance import (
    AggregationAssociations,
    Associations,
    BinaryAssociations,
    FlattenAssociations,
    InputRef,
    OperatorProvenance,
    ReadAssociations,
    UNDEFINED,
    UnaryAssociations,
)
from repro.core.paths import parse_path
from repro.core.store import ProvenanceStore
from repro.engine.config import resolve_partitions
from repro.engine.executor import SCHEMA_SAMPLE, ExecutionResult
from repro.engine.metrics import ExecutionMetrics
from repro.errors import ProvenanceError
from repro.nested.json_io import _jsonable  # shared encoder for model values
from repro.nested.schema import Schema
from repro.nested.types import type_from_obj, type_to_obj
from repro.nested.values import DataItem
from repro.warehouse.reader import RestoredPlanNode

__all__ = [
    "save_execution",
    "save_execution_json",
    "load_execution",
    "load_execution_json",
]

_FORMAT_VERSION = 1


def _encode_associations(associations: Associations) -> dict[str, Any]:
    if isinstance(associations, ReadAssociations):
        return {"kind": "read", "ids": list(associations.ids)}
    if isinstance(associations, UnaryAssociations):
        return {"kind": "unary", "records": [list(record) for record in associations.records]}
    if isinstance(associations, FlattenAssociations):
        return {"kind": "flatten", "records": [list(record) for record in associations.records]}
    if isinstance(associations, BinaryAssociations):
        return {"kind": "binary", "records": [list(record) for record in associations.records]}
    if isinstance(associations, AggregationAssociations):
        return {
            "kind": "aggregation",
            "records": [[list(ids_in), id_out] for ids_in, id_out in associations.records],
        }
    raise ProvenanceError(f"cannot encode associations {type(associations).__name__}")


def _decode_associations(obj: dict[str, Any]) -> Associations:
    kind = obj["kind"]
    if kind == "read":
        return ReadAssociations(obj["ids"])
    if kind == "unary":
        return UnaryAssociations([tuple(record) for record in obj["records"]])
    if kind == "flatten":
        return FlattenAssociations([tuple(record) for record in obj["records"]])
    if kind == "binary":
        return BinaryAssociations([tuple(record) for record in obj["records"]])
    if kind == "aggregation":
        return AggregationAssociations(
            [(tuple(ids_in), id_out) for ids_in, id_out in obj["records"]]
        )
    raise ProvenanceError(f"unknown association kind {kind!r}")


def _encode_operator(provenance: OperatorProvenance) -> dict[str, Any]:
    inputs = []
    for input_ref in provenance.inputs:
        inputs.append(
            {
                "predecessor": input_ref.predecessor,
                "accessed": (
                    None
                    if input_ref.accessed is UNDEFINED
                    else sorted(str(path) for path in input_ref.accessed)
                ),
                "schema": (
                    None if input_ref.schema is None else type_to_obj(input_ref.schema.struct)
                ),
            }
        )
    return {
        "oid": provenance.oid,
        "type": provenance.op_type,
        "label": provenance.label,
        "inputs": inputs,
        "manipulations": (
            None
            if provenance.manipulations_undefined()
            else [
                [str(path_in), str(path_out)]
                for path_in, path_out in provenance.manipulations_or_empty()
            ]
        ),
        "associations": _encode_associations(provenance.associations),
    }


def _decode_operator(obj: dict[str, Any]) -> OperatorProvenance:
    inputs = []
    for entry in obj["inputs"]:
        accessed = (
            UNDEFINED
            if entry["accessed"] is None
            else [parse_path(text) for text in entry["accessed"]]
        )
        schema = (
            None if entry["schema"] is None else Schema(type_from_obj(entry["schema"]))
        )
        inputs.append(InputRef(entry["predecessor"], accessed, schema=schema))
    manipulations = (
        UNDEFINED
        if obj["manipulations"] is None
        else [
            (parse_path(path_in), parse_path(path_out))
            for path_in, path_out in obj["manipulations"]
        ]
    )
    return OperatorProvenance(
        obj["oid"],
        obj["type"],
        inputs,
        manipulations,
        _decode_associations(obj["associations"]),
        obj["label"],
    )


def save_execution(execution: ExecutionResult, path: FsPath | str, name: str = "run") -> None:
    """Persist a capture-enabled execution as a single-run warehouse.

    *path* becomes (or extends) a warehouse root directory; the execution is
    recorded as one catalogued run in binary segments.  Use
    :func:`save_execution_json` for the plain-JSON export format.
    """
    from repro.warehouse import Warehouse

    if execution.store is None:
        raise ProvenanceError("only capture-enabled executions can be persisted")
    Warehouse.open(path).record(execution, name=name)


def save_execution_json(execution: ExecutionResult, path: FsPath | str) -> None:
    """Export a capture-enabled execution (rows + provenance) to JSON."""
    if execution.store is None:
        raise ProvenanceError("only capture-enabled executions can be persisted")
    store = execution.store
    sources = []
    for provenance in store.operators():
        if not isinstance(provenance.associations, ReadAssociations):
            continue
        sources.append(
            {
                "oid": provenance.oid,
                "name": store.source_name(provenance.oid),
                "items": [
                    [item_id, _jsonable(item)]
                    for item_id, item in sorted(store.source_items(provenance.oid).items())
                ],
            }
        )
    document = {
        "format": _FORMAT_VERSION,
        "sink": execution.root.oid,
        "rows": [[pid, _jsonable(item)] for pid, item in execution.rows()],
        "operators": [_encode_operator(provenance) for provenance in store.operators()],
        "sources": sources,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)


def load_execution(
    path: FsPath | str, num_partitions: int | None = None
) -> ExecutionResult:
    """Restore a persisted execution into a queryable object.

    A directory restores from the warehouse (newest run, lazy provenance
    store); a file restores from the JSON export format.  Either way the
    result supports everything provenance querying needs: tree-pattern
    matching over its partitions and backtracing over its store.  The plan
    itself is not restored (only the sink id), so the execution cannot be
    re-run -- that is what the original program is for.
    """
    num_partitions = resolve_partitions(num_partitions)
    path = FsPath(path)
    if path.is_dir():
        from repro.warehouse import Warehouse

        return Warehouse.open(path).load(num_partitions=num_partitions)
    return load_execution_json(path, num_partitions)


def _validated_pid(pid: object, context: str) -> int | None:
    """Check a decoded provenance id: an int or ``None``, nothing else.

    JSON cannot tell ``None`` (capture off / no annotation) apart from a
    malformed or stringified id once the document has been edited by an
    external tool, so loads re-validate instead of trusting the file.
    """
    if pid is None:
        return None
    if isinstance(pid, bool) or not isinstance(pid, int):
        raise ProvenanceError(
            f"invalid provenance id {pid!r} in {context}: expected an integer or null"
        )
    if pid < 0:
        raise ProvenanceError(f"invalid provenance id {pid} in {context}: must be >= 0")
    return pid


def _required_pid(pid: object, context: str) -> int:
    """Like :func:`_validated_pid`, but ``None`` is also rejected (source ids
    are always assigned, only result rows may be unannotated)."""
    validated = _validated_pid(pid, context)
    if validated is None:
        raise ProvenanceError(f"missing provenance id in {context}: source ids cannot be null")
    return validated


def load_execution_json(
    path: FsPath | str, num_partitions: int | None = None
) -> ExecutionResult:
    """Restore a JSON-exported execution (see :func:`save_execution_json`)."""
    num_partitions = resolve_partitions(num_partitions)
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != _FORMAT_VERSION:
        raise ProvenanceError(f"unsupported provenance file format: {document.get('format')!r}")
    store = ProvenanceStore()
    for entry in document["operators"]:
        store.register(_decode_operator(entry))
    for source in document["sources"]:
        store.register_source_items(
            source["oid"],
            source["name"],
            {
                _required_pid(item_id, f"source {source['oid']}"): DataItem(raw)
                for item_id, raw in source["items"]
            },
        )
    rows = [
        (_validated_pid(pid, "result rows"), DataItem(raw))
        for pid, raw in document["rows"]
    ]
    from repro.engine.partition import partition_rows
    from repro.nested.schema import infer_schema
    from repro.nested.types import StructType

    schema = (
        infer_schema(item for _, item in rows[:SCHEMA_SAMPLE])
        if rows
        else Schema(StructType())
    )
    return ExecutionResult(
        RestoredPlanNode(document["sink"]),
        partition_rows(rows, num_partitions),
        schema,
        store,
        ExecutionMetrics(),
    )
