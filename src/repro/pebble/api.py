"""PebbleSession: the user-facing API wrapper (paper Sec. 7.1, Fig. 5).

Pebble wraps the engine's session so that user programs look exactly like
plain engine programs; the wrapper routes execution either to the plain
engine (capture off) or to the capture-enabled executor, and exposes
provenance querying on the captured execution -- the "integrated" user
experience the paper contrasts with offloading provenance to external
tools.

>>> pebble = PebbleSession()
>>> tweets = pebble.create_dataset([...], "tweets.json")      # doctest: +SKIP
>>> result = tweets.filter(...).select(...)                   # doctest: +SKIP
>>> captured = pebble.run(result)                             # doctest: +SKIP
>>> provenance = captured.backtrace('root{//id_str="lp"}')    # doctest: +SKIP
"""

from __future__ import annotations

from pathlib import Path as FsPath
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.warehouse import Warehouse

from repro.core.backtrace.result import ProvenanceResult
from repro.core.store import ProvenanceSizeReport
from repro.core.treepattern.matcher import PatternMatch, match_partitions
from repro.core.treepattern.pattern import TreePattern
from repro.engine.config import EngineConfig
from repro.engine.dataset import Dataset
from repro.engine.executor import ExecutionResult
from repro.engine.session import Session
from repro.errors import CaptureDisabledError
from repro.nested.values import DataItem
from repro.pebble.query import as_pattern, query_provenance

__all__ = ["PebbleSession", "CapturedExecution"]


class CapturedExecution:
    """A pipeline execution with eagerly captured structural provenance."""

    def __init__(self, execution: ExecutionResult):
        if execution.store is None:
            raise CaptureDisabledError("CapturedExecution needs a capture-enabled run")
        self._execution = execution

    @property
    def execution(self) -> ExecutionResult:
        return self._execution

    def items(self) -> list[DataItem]:
        """The pipeline's result items."""
        return self._execution.items()

    def rows(self) -> list[tuple[int, DataItem]]:
        """The result items with their provenance identifiers."""
        return self._execution.rows()

    def match(self, pattern: TreePattern | str) -> list[PatternMatch]:
        """Run only the tree-pattern matching phase over the result."""
        return match_partitions(as_pattern(pattern), self._execution.partitions)

    def backtrace(self, pattern: TreePattern | str) -> ProvenanceResult:
        """Answer a structural provenance question (match + backtrace)."""
        return query_provenance(self._execution, pattern)

    def size_report(self) -> ProvenanceSizeReport:
        """Space taken by the captured provenance (Fig. 8 accounting)."""
        assert self._execution.store is not None
        return self._execution.store.size_report()

    def save(self, path: FsPath | str, name: str = "run") -> None:
        """Persist the annotated result and provenance durably.

        Records the execution into the provenance warehouse rooted at
        *path* (created if needed); queries can later be served lazily with
        :meth:`load` or ``repro warehouse query`` without re-loading the
        whole capture.
        """
        from repro.pebble.persistence import save_execution

        save_execution(self._execution, path, name=name)

    def record_to(self, warehouse: "Warehouse | FsPath | str", name: str = "run"):
        """Record this execution into a warehouse; returns the run record."""
        from repro.warehouse import Warehouse

        if not isinstance(warehouse, Warehouse):
            warehouse = Warehouse.open(warehouse)
        return warehouse.record(self._execution, name=name)

    def export_json(self, path: FsPath | str) -> None:
        """Export rows + provenance as one plain-JSON document.

        The JSON format is the interchange path for external tools; the
        warehouse (:meth:`save`) is the queryable store.
        """
        from repro.pebble.persistence import save_execution_json

        save_execution_json(self._execution, path)

    @classmethod
    def load(
        cls, path: FsPath | str, num_partitions: int | None = None
    ) -> "CapturedExecution":
        """Restore a persisted capture; supports querying, not re-running.

        Accepts a warehouse root directory (loads the newest run with a
        lazy provenance store) or a JSON export file.  ``num_partitions``
        defaults to the engine-wide default partition count.
        """
        from repro.engine.config import resolve_partitions
        from repro.pebble.persistence import load_execution

        return cls(load_execution(path, resolve_partitions(num_partitions)))

    def __repr__(self) -> str:
        return f"CapturedExecution({len(self._execution)} result items)"


class PebbleSession:
    """Transparent wrapper over the engine session (the PebbleAPI of Fig. 5).

    The constructor is **keyword-only** and accepts every
    :class:`~repro.engine.config.EngineConfig` knob directly, so scheduler,
    retry, and fault-injection settings are settable in code without
    touching environment variables:

    >>> pebble = PebbleSession(scheduler="processes", max_retries=3)
    >>> pebble = PebbleSession(num_partitions=8, config=my_config)

    An explicit ``config`` provides the base (``EngineConfig.from_env()``
    otherwise -- environment variables are overrides of the defaults, not
    the only path); extra knobs are applied on top via
    :meth:`EngineConfig.replace`, and unknown knob names raise ``TypeError``.
    """

    def __init__(
        self,
        *,
        num_partitions: int | None = None,
        config: "EngineConfig | None" = None,
        **knobs: object,
    ):
        base = config if config is not None else EngineConfig.from_env()
        if knobs:
            base = base.replace(**knobs)
        self.session = Session(num_partitions=num_partitions, config=base)

    @property
    def config(self) -> "EngineConfig":
        return self.session.config

    # -- dataset creation (routed to the engine) ------------------------------

    def create_dataset(self, items: Iterable[object], name: str = "inline") -> Dataset:
        """Create a dataset from in-memory items."""
        return self.session.create_dataset(items, name)

    def read_jsonl(self, path: FsPath | str, name: str | None = None) -> Dataset:
        """Create a dataset reading a JSON-lines file."""
        return self.session.read_jsonl(path, name)

    # -- execution -------------------------------------------------------------

    def run(self, dataset: Dataset) -> CapturedExecution:
        """Execute with provenance capture (the Pebble Core path)."""
        return CapturedExecution(dataset.execute(capture=True))

    def run_plain(self, dataset: Dataset) -> ExecutionResult:
        """Execute without capture (the plain SparkSQL path)."""
        return dataset.execute(capture=False)

    # -- persistence -----------------------------------------------------------

    def warehouse(self, root: FsPath | str) -> "Warehouse":
        """Open (creating if needed) a provenance warehouse for this session."""
        from repro.warehouse import Warehouse

        return Warehouse.open(root)

    def __repr__(self) -> str:
        return f"PebbleSession({self.session!r})"
