"""GDPR audit subsystem: forward provenance over the warehouse.

Backtracing answers "where did this output come from?"; this package
answers the regulator's dual -- "which outputs, anywhere in the warehouse,
derive from this subject's input items?" -- and packages it as the two
workflows compliance teams actually run:

* :func:`trace_forward` / :class:`ForwardTracer` -- one forward trace,
  from a tree pattern over the source items to every derived output,
  index-assisted when the run carries a persisted
  :class:`~repro.warehouse.index.RunIndex`;
* :func:`subject_access_request` -- a bulk, paginated SAR over many
  subjects and many runs;
* :func:`verify_erasure` -- the Art. 17 receipt: assert nothing derives
  from the subjects any more, signed with a reproducible sha256 digest.

All answers are byte-stable across scheduler backends, loading strategies,
and indexed-vs-scan evaluation.
"""

from repro.audit.bench import run_audit_bench, write_audit_report
from repro.audit.forward import (
    AUDIT_METHODS,
    ForwardResult,
    ForwardTracer,
    SubjectMatch,
    trace_forward,
)
from repro.audit.sar import (
    DEFAULT_SUBJECT_TEMPLATE,
    sar_over_tracers,
    subject_access_request,
    subject_pattern,
    verify_erasure,
)

__all__ = [
    "AUDIT_METHODS",
    "DEFAULT_SUBJECT_TEMPLATE",
    "ForwardResult",
    "ForwardTracer",
    "SubjectMatch",
    "run_audit_bench",
    "sar_over_tracers",
    "subject_access_request",
    "subject_pattern",
    "trace_forward",
    "verify_erasure",
    "write_audit_report",
]
