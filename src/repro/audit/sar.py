"""Subject-access requests and erasure verification over forward traces.

GDPR Art. 15 ("what do you hold about me?") and Art. 17 ("prove you
deleted it") become, over a provenance warehouse, bulk forward-trace
queries: every subject identifier is matched against the recorded source
items, and its matches are traced to the outputs that derive from them.
A subject-access request reports those outputs per run; an erasure
verification asserts there are none left and signs the finding.

Reports are **deliberately timing-free**: two SAR runs over the same
warehouse state -- indexed or scanning, lazy or eager, today or next week
-- serialise byte-identically, which is what makes the erasure digest a
meaningful receipt and lets CI compare indexed against scan answers with
``cmp``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable, Sequence

from repro.errors import AuditError
from repro.obs.log import get_logger
from repro.audit.forward import ForwardTracer, load_execution

__all__ = [
    "DEFAULT_SUBJECT_TEMPLATE",
    "build_tracers",
    "erasure_over_tracers",
    "report_digest",
    "sar_over_tracers",
    "subject_access_request",
    "subject_pattern",
    "verify_erasure",
]

#: Default subject selector: any string leaf anywhere equal to the subject
#: identifier.  Override with a sharper template (e.g.
#: ``root{//user{/id_str="{subject}"}}``) when field names are known.
DEFAULT_SUBJECT_TEMPLATE = 'root{//*="{subject}"}'


def subject_pattern(subject: str, template: str = DEFAULT_SUBJECT_TEMPLATE) -> str:
    """Instantiate *template* for one subject, escaping pattern syntax."""
    if "{subject}" not in template:
        raise AuditError(
            f"subject template must contain a {{subject}} placeholder: {template!r}"
        )
    escaped = subject.replace("\\", "\\\\").replace('"', '\\"')
    return template.replace("{subject}", escaped)


def _paginate(subjects: Iterable[str], page: int, page_size: int) -> tuple[list[str], int, int]:
    """Deduplicate, order, and slice the subject list for one page."""
    if page < 1:
        raise AuditError(f"page numbers start at 1, got {page}")
    if page_size < 1:
        raise AuditError(f"page size must be >= 1, got {page_size}")
    ordered = sorted(set(subjects))
    pages = max(1, -(-len(ordered) // page_size))
    if page > pages:
        raise AuditError(f"page {page} out of range (report has {pages} pages)")
    start = (page - 1) * page_size
    return ordered[start : start + page_size], len(ordered), pages


def sar_over_tracers(
    tracers: Sequence[tuple[str, ForwardTracer]],
    subjects: Iterable[str],
    template: str = DEFAULT_SUBJECT_TEMPLATE,
    page: int = 1,
    page_size: int = 100,
    include_items: bool = False,
) -> dict[str, Any]:
    """The SAR core: trace each page subject through every given tracer.

    ``tracers`` is an ordered ``(run_id, tracer)`` sequence; the serve layer
    passes its resident executions here, the warehouse API freshly loaded
    ones -- the report is identical either way.  Runs in which a subject
    matched nothing are omitted from that subject's entry, so the report
    stays proportional to actual exposure.
    """
    page_subjects, total, pages = _paginate(subjects, page, page_size)
    entries = []
    for subject in page_subjects:
        pattern = subject_pattern(subject, template)
        runs = []
        outputs_total = 0
        for run_id, tracer in tracers:
            result = tracer.trace(pattern)
            if result.matched_input_count == 0 and not result.output_ids:
                continue
            entry: dict[str, Any] = {
                "run_id": run_id,
                "matched_inputs": result.matched_input_count,
                "sources": [source.to_json() for source in result.sources if source.ids],
                "output_ids": list(result.output_ids),
                "output_count": len(result.output_ids),
            }
            if include_items:
                entry["outputs"] = [
                    {"id": pid, "item": _item_json(item)} for pid, item in result.outputs
                ]
            runs.append(entry)
            outputs_total += len(result.output_ids)
        entries.append(
            {
                "subject": subject,
                "runs": runs,
                "run_count": len(runs),
                "total_outputs": outputs_total,
            }
        )
    return {
        "report": "subject-access-request",
        "template": template,
        "page": page,
        "page_size": page_size,
        "pages": pages,
        "total_subjects": total,
        "subjects": entries,
    }


def _item_json(item: Any) -> Any:
    from repro.nested.json_io import _jsonable

    return _jsonable(item)


def build_tracers(
    warehouse: Any,
    runs: Sequence[str] | None = None,
    method: str = "lazy",
    use_index: bool = True,
) -> list[tuple[str, ForwardTracer]]:
    """Load one :class:`ForwardTracer` per requested (default: every) run."""
    if runs is None:
        warehouse.refresh()
        run_ids = [record.run_id for record in warehouse.runs()]
    else:
        run_ids = [warehouse.resolve(run_id).run_id for run_id in runs]
    tracers = []
    for run_id in run_ids:
        _, execution = load_execution(warehouse, run_id, method=method)
        index = warehouse.load_index(run_id) if use_index else None
        tracers.append((run_id, ForwardTracer(execution, index)))
    return tracers


def subject_access_request(
    warehouse: Any,
    subjects: Iterable[str],
    runs: Sequence[str] | None = None,
    template: str = DEFAULT_SUBJECT_TEMPLATE,
    method: str = "lazy",
    page: int = 1,
    page_size: int = 100,
    use_index: bool = True,
    include_items: bool = False,
) -> dict[str, Any]:
    """One bulk subject-access request across warehouse runs (paginated)."""
    tracers = build_tracers(warehouse, runs, method=method, use_index=use_index)
    report = sar_over_tracers(
        tracers,
        subjects,
        template=template,
        page=page,
        page_size=page_size,
        include_items=include_items,
    )
    get_logger("audit").event(
        "audit-sar",
        subjects=report["total_subjects"],
        page=page,
        runs=len(tracers),
        method=method,
        use_index=use_index,
    )
    return report


def report_digest(body: dict[str, Any]) -> str:
    """The sha256 over the canonical JSON serialisation of *body*."""
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def erasure_over_tracers(
    tracers: Sequence[tuple[str, ForwardTracer]],
    subjects: Iterable[str],
    template: str = DEFAULT_SUBJECT_TEMPLATE,
) -> dict[str, Any]:
    """The erasure-verification core, shared by the library and serve paths.

    Like :func:`sar_over_tracers`, the report depends only on the warehouse
    state and the request shape -- a serve worker answering from resident
    executions produces the same bytes (and therefore the same ``digest``)
    as a fresh library call, which is what makes fleet-served receipts
    interchangeable with direct ones.
    """
    ordered = sorted(set(subjects))
    findings = []
    for subject in ordered:
        pattern = subject_pattern(subject, template)
        residuals = []
        for run_id, tracer in tracers:
            result = tracer.trace(pattern)
            if result.matched_input_count == 0 and not result.output_ids:
                continue
            residuals.append(
                {
                    "run_id": run_id,
                    "matched_inputs": result.matched_input_count,
                    "output_ids": list(result.output_ids),
                }
            )
        findings.append(
            {"subject": subject, "clean": not residuals, "residuals": residuals}
        )
    body = {
        "report": "erasure-verification",
        "template": template,
        "subjects": findings,
        "subject_count": len(findings),
        "clean": all(finding["clean"] for finding in findings),
        "runs_checked": [run_id for run_id, _ in tracers],
    }
    return dict(body, digest=report_digest(body))


def verify_erasure(
    warehouse: Any,
    subjects: Iterable[str],
    runs: Sequence[str] | None = None,
    template: str = DEFAULT_SUBJECT_TEMPLATE,
    method: str = "lazy",
    use_index: bool = True,
) -> dict[str, Any]:
    """Assert no warehouse output still derives from any of *subjects*.

    The returned report carries ``clean`` (no residual matches anywhere)
    plus a sha256 ``digest`` over its canonical body, so it can be archived
    as a verifiable erasure receipt: re-running the check against the same
    warehouse state reproduces the digest exactly.
    """
    tracers = build_tracers(warehouse, runs, method=method, use_index=use_index)
    report = erasure_over_tracers(tracers, subjects, template=template)
    get_logger("audit").event(
        "audit-erasure",
        subjects=report["subject_count"],
        clean=report["clean"],
        runs=len(tracers),
    )
    return report
