"""``repro bench audit``: indexed-vs-scan SAR latency over real scenarios.

The benchmark answers the question the persisted index exists for: *how
much faster does a bulk subject-access request get when forward tracing is
index-assisted instead of scanning every segment?*  It records one or more
workload scenarios into a throwaway warehouse, harvests subject
identifiers from the **actual source items** (distinct string leaves, so
every probe is a realistic hit candidate), then times one forward trace
per subject twice -- once with the persisted index, once with
``use_index=False`` -- over thousands of cycled subjects.

Reported per scenario: p50/p95/p99 latency for both modes, the speedup,
operators decoded vs skipped, and the segment-cache counters of both
stores.  The CI ``audit-smoke`` job asserts the indexed answer is
byte-identical to the scan answer *and* cheaper; this benchmark puts the
margin on the record in ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path as FsPath
from typing import Any

from repro.audit.forward import ForwardTracer, load_execution
from repro.audit.sar import DEFAULT_SUBJECT_TEMPLATE, subject_pattern
from repro.errors import AuditError
from repro.nested.json_io import _jsonable
from repro.serve.bench import percentile
from repro.warehouse.index import walk_string_leaves
from repro.warehouse.service import Warehouse
from repro.workloads.scenarios import SCENARIOS

__all__ = ["harvest_subjects", "run_audit_bench", "write_audit_report"]

#: Scenarios benchmarked by default: the twitter and DBLP Fig. 9 baselines.
DEFAULT_SCENARIOS = ("T1", "D1")
DEFAULT_SUBJECT_COUNT = 2000


def harvest_subjects(execution: Any, limit: int = 500) -> list[str]:
    """Distinct string leaves of the run's source items, sorted, capped.

    Subjects drawn from the data itself keep the benchmark honest: every
    probe exercises the term-postings path (and most also the closure),
    instead of short-circuiting on guaranteed misses.
    """
    store = execution.store
    leaves: set[str] = set()
    for provenance in store.operators():
        if not store.is_source(provenance.oid):
            continue
        for item in store.source_items(provenance.oid).values():
            leaves.update(walk_string_leaves(_jsonable(item)))
    return sorted(leaves)[:limit]


def _cycle(subjects: list[str], count: int) -> list[str]:
    if not subjects:
        raise AuditError("no string leaves in source items to use as subjects")
    return [subjects[index % len(subjects)] for index in range(count)]


def _timed_pass(
    tracer: ForwardTracer, probes: list[str], template: str
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Trace every probe, returning latency stats plus per-probe answers."""
    latencies: list[float] = []
    answers: list[dict[str, Any]] = []
    decoded = 0
    skipped = 0
    for subject in probes:
        started = time.perf_counter()
        result = tracer.trace(subject_pattern(subject, template))
        latencies.append(time.perf_counter() - started)
        decoded += result.stats["operators_decoded"]
        skipped += result.stats["operators_skipped"]
        answers.append(result.to_json(include_items=False))
    latencies.sort()
    stats = {
        "probes": len(probes),
        "wall_seconds": sum(latencies),
        "p50_ms": percentile(latencies, 0.50) * 1000,
        "p95_ms": percentile(latencies, 0.95) * 1000,
        "p99_ms": percentile(latencies, 0.99) * 1000,
        "operators_decoded": decoded,
        "operators_skipped": skipped,
    }
    return stats, answers


def _cache_counters(execution: Any) -> dict[str, int]:
    metrics = execution.store.metrics
    return {
        "hits": metrics.hits,
        "misses": metrics.misses,
        "item_hits": metrics.item_hits,
        "item_misses": metrics.item_misses,
        "bytes_read": metrics.bytes_read,
        "evictions": metrics.evictions,
    }


def run_audit_bench(
    scenarios: tuple[str, ...] = DEFAULT_SCENARIOS,
    scale: float = 0.25,
    subjects: int = DEFAULT_SUBJECT_COUNT,
    subject_pool: int = 500,
    template: str = DEFAULT_SUBJECT_TEMPLATE,
    method: str = "lazy",
    warehouse_root: str | FsPath | None = None,
) -> dict[str, Any]:
    """Record the scenarios, then sweep *subjects* probes indexed and scan."""
    import tempfile

    if warehouse_root is None:
        workdir = tempfile.mkdtemp(prefix="repro-audit-bench-")
    else:
        workdir = str(warehouse_root)
    warehouse = Warehouse.open(workdir)
    report: dict[str, Any] = {
        "benchmark": "audit",
        "scale": scale,
        "subjects": subjects,
        "template": template,
        "method": method,
        "scenarios": [],
    }
    for name in scenarios:
        spec = SCENARIOS[name]
        execution = spec.instantiate(scale=scale).execute(capture=True)
        record = warehouse.record(execution, name=f"audit-{name.lower()}")
        pool = harvest_subjects(warehouse.load(record.run_id), limit=subject_pool)
        probes = _cycle(pool, subjects)

        _, indexed_execution = load_execution(warehouse, record.run_id, method=method)
        indexed_tracer = ForwardTracer(
            indexed_execution, warehouse.load_index(record.run_id)
        )
        indexed_stats, indexed_answers = _timed_pass(indexed_tracer, probes, template)
        indexed_cache = _cache_counters(indexed_execution)

        _, scan_execution = load_execution(warehouse, record.run_id, method=method)
        scan_tracer = ForwardTracer(scan_execution, None)
        scan_stats, scan_answers = _timed_pass(scan_tracer, probes, template)
        scan_cache = _cache_counters(scan_execution)

        if indexed_answers != scan_answers:
            raise AuditError(
                f"indexed and scan forward answers diverge on scenario {name}"
            )
        speedup = (
            scan_stats["wall_seconds"] / indexed_stats["wall_seconds"]
            if indexed_stats["wall_seconds"] > 0
            else float("inf")
        )
        report["scenarios"].append(
            {
                "scenario": name,
                "description": spec.description,
                "run_id": record.run_id,
                "operator_count": record.operator_count,
                "subject_pool": len(pool),
                "answers_identical": True,
                "indexed": dict(indexed_stats, cache=indexed_cache),
                "scan": dict(scan_stats, cache=scan_cache),
                "speedup": speedup,
            }
        )
    return report


def render_audit_report(report: dict[str, Any]) -> str:
    lines = [
        f"audit bench: {report['subjects']} subject probes per scenario "
        f"(scale={report['scale']}, method={report['method']})"
    ]
    for entry in report["scenarios"]:
        lines.append(
            f"  {entry['scenario']}: pool={entry['subject_pool']} "
            f"ops={entry['operator_count']}"
        )
        for mode in ("indexed", "scan"):
            stats = entry[mode]
            lines.append(
                f"    {mode:7s} p50={stats['p50_ms']:.3f}ms "
                f"p95={stats['p95_ms']:.3f}ms p99={stats['p99_ms']:.3f}ms "
                f"decoded={stats['operators_decoded']} "
                f"skipped={stats['operators_skipped']}"
            )
        lines.append(f"    speedup {entry['speedup']:.2f}x (identical answers)")
    return "\n".join(lines)


def write_audit_report(
    report: dict[str, Any], json_path: str | FsPath
) -> tuple[FsPath, FsPath]:
    """Write the JSON report plus a text rendering next to it."""
    json_path = FsPath(json_path)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    text_path = json_path.with_suffix(".txt")
    with open(text_path, "w", encoding="utf-8") as handle:
        handle.write(render_audit_report(report) + "\n")
    return json_path, text_path
