"""Forward provenance: input items -> every derived output (the audit dual).

Backtracing (Sec. 6.3) answers "which inputs produced this output?".  The
GDPR questions run the other way: *given a data subject's input items,
which outputs anywhere in the warehouse derive from them?*  This module
answers that as the association-level dual of the backtrace walk: operators
are visited in **forward** topological order and each one maps the ids of
its frontier inputs to the output ids its association records derive from
them.

Per operator kind the forward step mirrors the backward step of
:class:`~repro.core.backtrace.algorithms.Backtracer` exactly:

* **unary / map / flatten** -- an output derives from its single recorded
  input id;
* **union / join** -- an output derives from each *defined* input side;
* **distinct** -- every duplicate member derives the surviving output (the
  backward step passes all members through unchanged);
* **aggregation** -- an output derives from *every* group member.  This is
  the one conservative spot: the backward direction filters members by
  ``inProv`` (a ``collect_set`` that deduplicates may drop members), so the
  forward answer can **over-approximate** for deduplicating collectors --
  it never under-reports, which is the safe direction for an audit ("this
  output may contain traces of the subject").  For all other operators,
  and for aggregations whose members are all ``inProv`` (``collect_list``,
  ``count``, ``min``/``max``/``sum``/``avg``), forward and backward agree
  exactly -- the duality the property tests pin.

Subjects are selected with the same tree-pattern language queries use,
matched against the *source items* instead of the results.  With a
persisted :class:`~repro.warehouse.index.RunIndex` the matching is
index-assisted (TERMS postings narrow the candidates, ITEMS byte ranges
decode only those candidates, and the closure skips every operator the
INPUTS map proves untouched); without one everything falls back to a full
scan.  Both paths confirm every candidate with
:func:`~repro.core.treepattern.matcher.match_item`, so their answers are
byte-identical -- the index is an accelerator, never an oracle.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Iterable

from repro.core.operator_provenance import (
    AggregationAssociations,
    BinaryAssociations,
    FlattenAssociations,
    OperatorProvenance,
    ReadAssociations,
    UnaryAssociations,
)
from repro.core.store import ProvenanceStoreProtocol
from repro.core.treepattern.pattern import TreePattern
from repro.engine.executor import ExecutionResult
from repro.errors import AuditError
from repro.nested.json_io import _jsonable
from repro.nested.values import DataItem
from repro.obs.breakdown import QueryBreakdown, activate, get_breakdown
from repro.obs.log import get_logger
from repro.obs.slowlog import observe_query, slow_threshold_seconds
from repro.obs.tracer import get_tracer
from repro.pebble.query import as_pattern
from repro.core.treepattern.matcher import match_item
from repro.warehouse.index import MAX_TERM_LEN, RunIndex
from repro.warehouse.live import LiveProvenanceStore
from repro.warehouse.reader import DEFAULT_CACHE_SIZE, LazyProvenanceStore

__all__ = [
    "AUDIT_METHODS",
    "ForwardResult",
    "ForwardTracer",
    "SubjectMatch",
    "load_execution",
    "required_terms",
    "trace_forward",
]

#: The two run-loading strategies an audit query may request (mirrors
#: :data:`repro.serve.service.QUERY_METHODS` without importing serve).
AUDIT_METHODS = ("lazy", "eager")


def required_terms(pattern: TreePattern) -> set[str]:
    """String constants every match must contain somewhere as a leaf.

    A node's equality term is *required* when the node and all its
    ancestors demand at least one occurrence (``count`` absent or with a
    lower bound >= 1).  A ``[0,n]`` count is an upper bound -- possibly a
    negation -- so nothing below it is required.  The result is the set of
    necessary TERMS-index probes; an empty set means the index cannot help
    and matching falls back to a scan.
    """
    terms: set[str] = set()

    def visit(node: Any, positive: bool) -> None:
        positive = positive and (node.count is None or node.count[0] >= 1)
        if positive and isinstance(node.equals, str):
            terms.add(node.equals)
        for child in node.children:
            visit(child, positive)

    for child in pattern.children:
        visit(child, True)
    return terms


class SubjectMatch:
    """The items of one source that match the subject pattern."""

    __slots__ = ("oid", "name", "ids")

    def __init__(self, oid: int, name: str, ids: tuple[int, ...]):
        self.oid = oid
        self.name = name
        #: Matched input item ids, ascending.
        self.ids = ids

    def to_json(self) -> dict[str, Any]:
        return {"oid": self.oid, "name": self.name, "ids": list(self.ids)}

    def __repr__(self) -> str:
        return f"SubjectMatch({self.name!r}, ids={list(self.ids)})"


class ForwardResult:
    """One forward trace: matched inputs, reached ids, derived outputs.

    ``stats`` carries the evaluation accounting (index used, operators
    decoded/skipped); it is deliberately **excluded** from :meth:`to_json`
    so indexed and scan answers to the same question serialise
    byte-identically.
    """

    __slots__ = ("run_id", "pattern", "sources", "reached", "output_ids", "outputs", "stats")

    def __init__(
        self,
        run_id: str | None,
        pattern: str,
        sources: list[SubjectMatch],
        reached: frozenset[int],
        output_ids: tuple[int, ...],
        outputs: list[tuple[int, DataItem]],
        stats: dict[str, Any],
    ):
        self.run_id = run_id
        self.pattern = pattern
        self.sources = sources
        #: Every provenance id the closure reached (inputs included).
        self.reached = reached
        #: Sink output ids deriving from the matched inputs, ascending.
        self.output_ids = output_ids
        #: The derived result rows in row order.
        self.outputs = outputs
        self.stats = stats

    @property
    def matched_input_count(self) -> int:
        return sum(len(source.ids) for source in self.sources)

    def to_json(self, include_items: bool = True) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "direction": "forward",
            "run_id": self.run_id,
            "pattern": self.pattern,
            "sources": [source.to_json() for source in self.sources],
            "matched_inputs": self.matched_input_count,
            "output_ids": list(self.output_ids),
            "output_count": len(self.output_ids),
        }
        if include_items:
            payload["outputs"] = [
                {"id": pid, "item": _jsonable(item)} for pid, item in self.outputs
            ]
        return payload

    def render(self) -> str:
        lines = [f"forward trace of {self.pattern}"]
        for source in self.sources:
            lines.append(f"  {source.name}: {len(source.ids)} matched input items")
        lines.append(
            f"  derived outputs: {len(self.output_ids)} "
            f"(of {len(self.outputs)} rows listed)"
        )
        for pid, item in self.outputs[:20]:
            lines.append(f"    [{pid}] {item}")
        if len(self.outputs) > 20:
            lines.append(f"    ... {len(self.outputs) - 20} more")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ForwardResult({self.pattern!r}, inputs={self.matched_input_count}, "
            f"outputs={len(self.output_ids)})"
        )


class ForwardTracer:
    """Traces matched source items forward to every derived output.

    Works over any captured execution (in-memory or warehouse-restored);
    pass the run's :class:`RunIndex` to evaluate index-assisted.  Results
    are byte-stable: identifiers are assigned by one deterministic executor
    counter regardless of scheduler backend, and every collection here is
    visited in sorted order -- so serial, threaded, and process-pool
    captures of the same pipeline produce identical forward answers.
    """

    def __init__(self, execution: ExecutionResult, index: RunIndex | None = None):
        if execution.store is None:
            raise AuditError("forward tracing needs a capture-enabled execution")
        self._execution = execution
        self._store: ProvenanceStoreProtocol = execution.store
        self._index = index

    # -- subject matching ------------------------------------------------------

    def match_sources(self, pattern: TreePattern | str) -> list[SubjectMatch]:
        """Match *pattern* against every source's items, in oid order."""
        tree_pattern = as_pattern(pattern)
        with get_breakdown().phase("pattern_match"):
            topology = self._topology()
            matches = []
            for oid in sorted(topology):
                if not self._store.is_source(oid):
                    continue
                ids = self._match_source(tree_pattern, oid)
                matches.append(SubjectMatch(oid, self._store.source_name(oid), ids))
        return matches

    def _match_source(self, pattern: TreePattern, oid: int) -> tuple[int, ...]:
        index = self._index
        if index is not None:
            terms = [
                term for term in sorted(required_terms(pattern))
                if len(term) <= MAX_TERM_LEN
            ]
            if terms:
                with get_breakdown().phase("index_probe"):
                    candidates: set[int] | None = None
                    for term in terms:
                        ids = {
                            item_id
                            for source_oid, item_id in index.candidates(term)
                            if source_oid == oid
                        }
                        candidates = ids if candidates is None else candidates & ids
                        if not candidates:
                            break
                if not candidates:
                    # TERMS is complete for in-cap terms: no postings
                    # proves no source item can satisfy the pattern.
                    return ()
                confirmed = []
                for item_id in sorted(candidates):
                    item = self._candidate_item(oid, item_id)
                    if match_item(pattern, item) is not None:
                        confirmed.append(item_id)
                return tuple(confirmed)
        items = self._store.source_items(oid)
        return tuple(
            item_id
            for item_id in sorted(items)
            if match_item(pattern, items[item_id]) is not None
        )

    def _candidate_item(self, oid: int, item_id: int) -> DataItem:
        """One source item, through the ITEMS byte range when available."""
        store = self._store
        if self._index is not None and isinstance(store, LazyProvenanceStore):
            with get_breakdown().phase("index_probe"):
                item = self._index.source_item(
                    store.run_dir_path, store.manifest, oid, item_id
                )
            if item is not None:
                return item
        return store.source_item(oid, item_id)

    # -- the forward closure ---------------------------------------------------

    def closure(self, seed_ids: Iterable[int]) -> set[int]:
        """Every provenance id reachable forward from *seed_ids* (inclusive).

        With an index, operators none of whose recorded inputs are on the
        frontier are skipped without decoding; without one, every operator
        decodes once in forward topological order.  Both paths compute the
        same set: the INPUTS map is complete by construction, and by the
        time an operator is visited all its predecessors have settled.
        """
        breakdown = get_breakdown()
        with breakdown.phase("closure"):
            topology = self._topology()
            order = _forward_order(topology)
            reached: set[int] = set(seed_ids)
            decoded = 0
            skipped = 0
            store = self._store
            if self._index is not None:
                pending: dict[int, set[int]] = {}

                def feed(ids: Iterable[int]) -> None:
                    for item_id in ids:
                        for oid in self._index.consumers(item_id):
                            pending.setdefault(oid, set()).add(item_id)

                feed(reached)
                for oid in order:
                    if store.is_source(oid):
                        continue
                    frontier = pending.get(oid)
                    if not frontier:
                        skipped += 1
                        continue
                    outputs = _emit(store.get(oid), frontier)
                    decoded += 1
                    fresh = outputs - reached
                    reached |= fresh
                    feed(fresh)
            else:
                for oid in order:
                    if store.is_source(oid):
                        continue
                    reached |= _emit(store.get(oid), reached)
                    decoded += 1
        self._last_stats = {
            "index_used": self._index is not None,
            "operators_decoded": decoded,
            "operators_skipped": skipped,
        }
        breakdown.count(**self._last_stats)
        return reached

    def trace(self, pattern: TreePattern | str) -> ForwardResult:
        """Match subjects and trace them to the sink's derived output rows."""
        tree_pattern = as_pattern(pattern)
        with get_tracer().span(
            "forward-trace", "audit", pattern=tree_pattern.render()
        ) as span:
            sources = self.match_sources(tree_pattern)
            seeds = [item_id for source in sources for item_id in source.ids]
            reached = self.closure(seeds)
            rows = self._execution.rows()
            outputs = [
                (pid, item) for pid, item in rows if pid is not None and pid in reached
            ]
            span.set(inputs=len(seeds), outputs=len(outputs))
            get_breakdown().count(matched_inputs=len(seeds), outputs=len(outputs))
        return ForwardResult(
            getattr(self._store, "run_id", None),
            tree_pattern.render(),
            sources,
            frozenset(reached),
            tuple(sorted(pid for pid, _ in outputs)),
            outputs,
            dict(self._last_stats),
        )

    def derived_output_ids(self, seed_ids: Iterable[int]) -> tuple[int, ...]:
        """Sink output ids derived from raw *seed_ids* (the oracle hook)."""
        reached = self.closure(seed_ids)
        return tuple(
            sorted(
                pid
                for pid, _ in self._execution.rows()
                if pid is not None and pid in reached
            )
        )

    # -- plumbing --------------------------------------------------------------

    _last_stats: dict[str, Any] = {
        "index_used": False,
        "operators_decoded": 0,
        "operators_skipped": 0,
    }

    def _topology(self) -> dict[int, tuple[int, ...]]:
        store = self._store
        # Warehouse-backed stores (lazy batch reader, live epoch store) keep
        # the operator graph in their footer; only in-memory stores decode.
        footer = getattr(store, "footer_topology", None)
        if footer is not None:
            return footer()
        return {
            provenance.oid: tuple(
                ref.predecessor
                for ref in provenance.inputs
                if ref.predecessor is not None
            )
            for provenance in store.operators()
        }


def _forward_order(topology: dict[int, tuple[int, ...]]) -> list[int]:
    """Kahn's algorithm, sources first, deterministic (ascending-oid ties)."""
    remaining = {
        oid: sum(1 for pred in preds if pred in topology)
        for oid, preds in topology.items()
    }
    successors: dict[int, list[int]] = {oid: [] for oid in topology}
    for oid, preds in topology.items():
        for pred in preds:
            if pred in topology:
                successors[pred].append(oid)
    ready = sorted((oid for oid, count in remaining.items() if count == 0), reverse=True)
    order: list[int] = []
    while ready:
        ready.sort(reverse=True)
        oid = ready.pop()
        order.append(oid)
        for succ in successors[oid]:
            remaining[succ] -= 1
            if remaining[succ] == 0:
                ready.append(succ)
    if len(order) != len(topology):
        raise AuditError("captured operator graph contains a cycle")
    return order


def _emit(provenance: OperatorProvenance, frontier: set[int]) -> set[int]:
    """Output ids one operator derives from frontier input ids."""
    associations = provenance.associations
    outputs: set[int] = set()
    if isinstance(associations, ReadAssociations):
        return outputs
    if isinstance(associations, UnaryAssociations):
        for id_in, id_out in associations.records:
            if id_in in frontier:
                outputs.add(id_out)
    elif isinstance(associations, FlattenAssociations):
        for id_in, _pos, id_out in associations.records:
            if id_in in frontier:
                outputs.add(id_out)
    elif isinstance(associations, BinaryAssociations):
        for id_in1, id_in2, id_out in associations.records:
            if (id_in1 is not None and id_in1 in frontier) or (
                id_in2 is not None and id_in2 in frontier
            ):
                outputs.add(id_out)
    elif isinstance(associations, AggregationAssociations):
        for members, id_out in associations.records:
            if any(member in frontier for member in members):
                outputs.add(id_out)
    else:  # pragma: no cover -- new association kinds must be handled here
        raise AuditError(
            f"cannot trace forward through {type(associations).__name__}"
        )
    return outputs


def load_execution(
    warehouse: Any,
    run_id: str | None = None,
    method: str = "lazy",
    num_partitions: int | None = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
) -> tuple[Any, ExecutionResult]:
    """Restore ``(record, execution)`` with the lazy or eager strategy.

    ``eager`` widens the segment cache to the whole run and decodes every
    operator and source-item block up front -- the paper's eager query
    evaluation, so audits over it never touch disk.
    """
    if method not in AUDIT_METHODS:
        raise AuditError(
            f"unknown audit method {method!r}; expected one of {AUDIT_METHODS}"
        )
    record = warehouse.resolve(run_id)
    if method == "eager":
        cache_size = max(cache_size, record.operator_count)
    execution = warehouse.load(
        record.run_id, num_partitions=num_partitions, cache_size=cache_size
    )
    if method == "eager":
        store = execution.store
        assert isinstance(store, (LazyProvenanceStore, LiveProvenanceStore))
        for oid in sorted(store.size_report().per_operator):
            store.get(oid)
            if store.is_source(oid):
                store.source_items(oid)
    return record, execution


def trace_forward(
    warehouse: Any,
    pattern: TreePattern | str,
    run_id: str | None = None,
    method: str = "lazy",
    use_index: bool = True,
    num_partitions: int | None = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
    breakdown: QueryBreakdown | None = None,
) -> ForwardResult:
    """One warehouse-level forward trace (load, index, trace, log).

    Pass a :class:`QueryBreakdown` to collect explain-analyze timings; when
    ``REPRO_SLOW_QUERY_MS`` is set, one is built regardless so over-budget
    traces land in the slow log with their breakdown attached.
    """
    threshold = slow_threshold_seconds()
    if breakdown is None and threshold is not None:
        breakdown = QueryBreakdown()
    if breakdown is not None:
        breakdown.start()
    with activate(breakdown) if breakdown is not None else nullcontext():
        with get_breakdown().phase("load") if breakdown is not None else nullcontext():
            record, execution = load_execution(
                warehouse,
                run_id,
                method=method,
                num_partitions=num_partitions,
                cache_size=cache_size,
            )
            index = warehouse.load_index(record.run_id) if use_index else None
        tracer = ForwardTracer(execution, index)
        result = tracer.trace(pattern)
    if breakdown is not None:
        store = execution.store
        if isinstance(store, (LazyProvenanceStore, LiveProvenanceStore)):
            breakdown.count(
                segments_decoded=store.metrics.misses,
                cache_hits=store.metrics.hits,
                cache_misses=store.metrics.misses,
                bytes_read=store.metrics.bytes_read,
            )
        breakdown.count(method=method)
        breakdown.finish()
        observe_query(
            "forward",
            record.run_id,
            result.pattern,
            breakdown.total_seconds,
            method=method,
            breakdown=breakdown.to_json(),
            threshold=threshold,
        )
    get_logger(record.run_id).event(
        "forward-trace",
        pattern=result.pattern,
        method=method,
        matched_inputs=result.matched_input_count,
        outputs=len(result.output_ids),
        **result.stats,
    )
    return result
