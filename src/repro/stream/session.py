"""StreamSession: micro-batch streaming capture into a live warehouse run.

The paper captures provenance of one bounded execution.  Streaming pipelines
never finish, so capture must happen **incrementally**: each micro-batch runs
through the same compiled plan (same operators, same A/M records, any layout
or scheduler), and its provenance delta lands as one sealed *epoch* of a
live warehouse run.  Queries admitted mid-ingest resolve against the epochs
visible at admission; sealing the run optionally compacts the epochs into
the canonical batch layout, byte-identical to a one-shot capture of the
concatenated input (the streaming == batch property).

>>> stream = StreamSession(warehouse="wh", name="feed")       # doctest: +SKIP
>>> tweets = stream.source("tweets")                          # doctest: +SKIP
>>> plan = stream.dataset(tweets).filter(...)                 # doctest: +SKIP
>>> stream.open(plan)                                         # doctest: +SKIP
>>> stream.ingest(batch_1); stream.ingest(batch_2)            # doctest: +SKIP
>>> stream.finish()                                           # doctest: +SKIP

Two restrictions keep incremental capture exact rather than approximate:

* **Single source** -- the plan reads exactly one :class:`StreamSource`
  (the feed); a second input would need cross-batch join state.
* **Linear, non-blocking plans** -- narrow operators (filter, select, map,
  with_column, flatten) plus windowed aggregation
  (:func:`repro.stream.window.window_by`).  Joins, unions, distinct, sort,
  limit, and *unbounded* aggregations are rejected at :meth:`open` with a
  :class:`~repro.errors.StreamError`: over an unbounded input they either
  never emit or emit answers a later batch would retract, and retraction
  has no sound provenance story in the paper's model.

Provenance ids are globally unique across batches: each per-batch executor
is seeded with the session's persistent id counter (also persisted in the
live manifest as ``next_pid``, so a crashed session can resume without id
collisions).
"""

from __future__ import annotations

from pathlib import Path as FsPath
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.warehouse import Warehouse
    from repro.warehouse.catalog import RunRecord

from repro.engine.config import EngineConfig
from repro.engine.dataset import Dataset
from repro.engine.executor import ExecutionResult, Executor
from repro.engine.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    FlattenNode,
    JoinNode,
    LimitNode,
    MapNode,
    PlanNode,
    ReadNode,
    SelectNode,
    SortNode,
    UnionNode,
    WithColumnNode,
)
from repro.engine.session import Session
from repro.errors import DataModelError, StreamError
from repro.nested.values import DataItem, coerce_value
from repro.stream.window import WindowAggregateNode, WindowRuntime

__all__ = ["StreamSession", "StreamSource"]

#: Narrow operators legal between the source and the (optional) window sink.
_NARROW = (ReadNode, FilterNode, SelectNode, MapNode, WithColumnNode, FlattenNode)


class StreamSource:
    """The unbounded feed: holds exactly the current micro-batch.

    The plan's read operator loads whatever :meth:`feed` last supplied, so
    re-executing the same compiled plan per batch consumes the stream
    batch by batch.  Items are coerced like an in-memory dataset's.
    """

    def __init__(self, name: str):
        self.name = name
        self._batch: list[DataItem] = []

    def feed(self, items: Iterable[object]) -> int:
        """Replace the current batch; returns its size."""
        coerced: list[DataItem] = []
        for item in items:
            value = coerce_value(item)
            if not isinstance(value, DataItem):
                raise DataModelError(
                    f"stream items must be data items, got {type(item).__name__}"
                )
            coerced.append(value)
        self._batch = coerced
        return len(coerced)

    def load(self) -> list[DataItem]:
        return list(self._batch)

    def loader(self):
        """Zero-argument loader for the read plan node (Source protocol)."""
        return self.load

    def __repr__(self) -> str:
        return f"StreamSource({self.name!r}, {len(self._batch)} queued)"


class StreamSession:
    """Micro-batch streaming capture session (keyword-only, like PebbleSession).

    Owns an engine :class:`Session` (so the plan-building API is unchanged),
    one :class:`StreamSource`, and one live warehouse run.  Lifecycle::

        source() -> dataset() -> open(plan) -> ingest()* -> finish()

    Extra keyword arguments are :class:`EngineConfig` knobs applied on top
    of ``config`` (or the environment defaults), exactly like
    :class:`~repro.pebble.api.PebbleSession`.
    """

    def __init__(
        self,
        *,
        warehouse: "Warehouse | FsPath | str",
        name: str = "stream",
        num_partitions: int | None = None,
        config: "EngineConfig | None" = None,
        **knobs: object,
    ):
        from repro.warehouse import Warehouse

        base = config if config is not None else EngineConfig.from_env()
        if knobs:
            base = base.replace(**knobs)
        self.session = Session(num_partitions=num_partitions, config=base)
        self.warehouse = (
            warehouse if isinstance(warehouse, Warehouse) else Warehouse.open(warehouse)
        )
        self.name = name
        self._source: StreamSource | None = None
        self._dataset: Dataset | None = None
        self._runtime = WindowRuntime()
        self._has_window = False
        self._next_pid = 1
        self._run_id: str | None = None
        self._finished = False
        self._epochs = 0

    # -- plan building ---------------------------------------------------------

    def source(self, name: str = "stream") -> StreamSource:
        """Declare the session's (single) unbounded input feed."""
        if self._source is not None:
            raise StreamError(
                "a stream session has exactly one source; "
                f"{self._source.name!r} is already declared"
            )
        self._source = StreamSource(name)
        return self._source

    def dataset(self, source: StreamSource | None = None) -> Dataset:
        """A dataset reading the stream source (declares one if needed)."""
        if source is None:
            source = self._source if self._source is not None else self.source()
        return self.session.from_source(source)

    # -- lifecycle -------------------------------------------------------------

    def open(self, dataset: Dataset) -> "RunRecord":
        """Validate *dataset*'s plan for streaming and start the live run."""
        if self._run_id is not None:
            raise StreamError(f"stream session already open on run {self._run_id!r}")
        if self._source is None:
            raise StreamError("declare a source() before open()")
        self._validate_plan(dataset.plan)
        self._dataset = dataset
        self._has_window = any(
            isinstance(node, WindowAggregateNode) for node in dataset.plan.walk()
        )
        record = self.warehouse.create_live_run(self.name, sink_oid=dataset.plan.oid)
        self._run_id = record.run_id
        return record

    def ingest(self, items: Iterable[object]) -> dict[str, object]:
        """Run one micro-batch through the plan; append it as an epoch."""
        if self._finished:
            raise StreamError("stream session is finished; cannot ingest")
        if self._run_id is None or self._dataset is None:
            raise StreamError("open() a plan before ingesting")
        assert self._source is not None
        self._source.feed(items)
        return self._run_batch()

    def finish(self, compact: bool = True) -> "RunRecord":
        """Seal the run: flush open windows, stop appends, optionally compact.

        With windows in the plan a final batch runs first (empty feed,
        watermark pushed to ``+inf``) so every still-open window emits --
        the streaming counterpart of a batch aggregation's single flush.
        ``compact=True`` rewrites the epochs into the canonical batch
        layout (byte-identical to a one-shot capture); ``compact=False``
        keeps the epoch layout, which stays queryable and retainable.
        """
        if self._finished:
            raise StreamError("stream session is already finished")
        if self._run_id is None:
            raise StreamError("open() a plan before finishing")
        if self._has_window:
            assert self._source is not None
            self._runtime.final = True
            self._source.feed([])
            self._run_batch()
        self._finished = True
        return self.warehouse.seal_live_run(self._run_id, compact=compact)

    # -- introspection ---------------------------------------------------------

    @property
    def run_id(self) -> str | None:
        return self._run_id

    @property
    def epochs(self) -> int:
        """Micro-batches appended so far (including a final window flush)."""
        return self._epochs

    @property
    def watermark(self) -> float | None:
        """Lowest watermark across window operators (``None`` if windowless)."""
        return self._runtime.watermark()

    @property
    def late_rows(self) -> int:
        """Rows dropped because every window they belonged to had flushed."""
        return self._runtime.late_rows()

    # -- internals -------------------------------------------------------------

    def _run_batch(self) -> dict[str, object]:
        executor = Executor(capture=True, config=self.session.config)
        # Seed global id uniqueness and cross-batch window state.  Ids are
        # assigned only in the driver, so process schedulers stay safe.
        executor._next_id = self._next_pid
        executor._window_runtime = self._runtime  # type: ignore[attr-defined]
        assert self._dataset is not None and self._run_id is not None
        execution: ExecutionResult = executor.execute(self._dataset.plan)
        self._next_pid = executor._next_id
        entry = self.warehouse.append_live_epoch(
            self._run_id,
            execution,
            next_pid=self._next_pid,
            watermark=self._runtime.watermark(),
        )
        self._epochs += 1
        return entry

    def _validate_plan(self, plan: PlanNode) -> None:
        """Reject plans that cannot stream exactly (see module docstring)."""
        nodes = plan.walk()
        consumers: dict[int, int] = {}
        for node in nodes:
            for child in node.children:
                consumers[child.oid] = consumers.get(child.oid, 0) + 1
        for node in nodes:
            if isinstance(node, (JoinNode, UnionNode)):
                raise StreamError(
                    f"streaming plans are linear: {node.op_type} (oid {node.oid}) "
                    "needs a second input, which would require cross-batch state"
                )
            if isinstance(node, (DistinctNode, SortNode, LimitNode)):
                raise StreamError(
                    f"{node.op_type} (oid {node.oid}) is blocking: over an "
                    "unbounded input it would retract already-emitted answers"
                )
            if isinstance(node, AggregateNode) and not isinstance(
                node, WindowAggregateNode
            ):
                raise StreamError(
                    f"unbounded aggregate (oid {node.oid}) never finalises; "
                    "aggregate over event-time windows with window_by(...)"
                )
            if not isinstance(node, _NARROW + (WindowAggregateNode,)):
                raise StreamError(
                    f"operator {type(node).__name__} (oid {node.oid}) is not "
                    "streamable"
                )
            if consumers.get(node.oid, 0) > 1:
                raise StreamError(
                    f"operator {node.oid} feeds {consumers[node.oid]} consumers; "
                    "streaming plans are a single chain"
                )
        reads = [node for node in nodes if isinstance(node, ReadNode)]
        if len(reads) != 1:
            raise StreamError(
                f"streaming plans read exactly one source, found {len(reads)}"
            )
        loader = reads[0].loader
        if getattr(loader, "__self__", None) is not self._source:
            raise StreamError(
                f"plan reads {reads[0].name!r}, which is not this session's "
                "stream source; build the plan from session.dataset()"
            )

    def __repr__(self) -> str:
        state = (
            "finished"
            if self._finished
            else (f"live run {self._run_id!r}" if self._run_id else "unopened")
        )
        return f"StreamSession({self.name!r}, {state}, {self._epochs} epochs)"
