"""Windowed aggregation with watermark semantics for micro-batch streaming.

The paper's provenance model (Tab. 5/6) covers *bounded* aggregations: one
grouping pass over a finished input.  Streaming pipelines aggregate over
**windows** of event time instead, and a window can only be finalised once
the *watermark* -- the maximum event time observed so far -- has passed its
end.  This module adds that machinery while keeping the captured provenance
shape identical to a batch aggregation:

* :class:`TumblingWindow` / :class:`SlidingWindow` assign each event-time
  value to its window interval(s);
* :class:`WindowAggregateNode` is an :class:`~repro.engine.plan.AggregateNode`
  whose output rows carry ``window_start`` / ``window_end`` alongside the
  user's grouping keys, and whose A/M records register the event-time column
  as *accessed* (it decides window membership) and *manipulated* into both
  window-bound attributes -- window membership is thereby visible to
  backtracing exactly like any other structural manipulation;
* :class:`WindowRuntime` / :class:`WindowState` hold the open windows across
  micro-batches and flush every window whose end the watermark has passed,
  in deterministic ``window_start`` order.

Determinism contract (the streaming == batch property relies on it): open
windows live in an insertion-ordered dict keyed by ``(interval, group key)``,
rows are consumed in global row order (concatenated partitions), and a flush
emits windows stably sorted by start.  Because a window's end is a function
of its start, the concatenation of incremental flushes under a monotonically
advancing watermark equals the single final flush of a batch run over the
same rows.

Without a runtime attached to the executor (a plain ``Dataset.execute()``)
the node degrades to batch semantics: one state, watermark ``+inf``, one
final flush -- so the same plan object runs bounded or unbounded.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.operator_provenance import AggregationAssociations
from repro.core.paths import Path
from repro.engine.dataset import Dataset
from repro.engine.executor import Executor
from repro.engine.expressions import AggregateExpr, as_expression
from repro.engine.partition import concat_partitions, partition_rows
from repro.engine.plan import AggregateNode, PlanNode
from repro.errors import ExecutionError, PlanError, StreamError
from repro.nested.values import DataItem

__all__ = [
    "SlidingWindow",
    "TumblingWindow",
    "WindowAggregateNode",
    "WindowRuntime",
    "WindowState",
    "WindowedDataset",
    "window_by",
]

#: Output attributes every windowed aggregation prepends to its group keys.
WINDOW_ATTRS = ("window_start", "window_end")


class TumblingWindow:
    """Fixed-size, non-overlapping event-time windows ``[k*size, (k+1)*size)``."""

    __slots__ = ("size",)

    def __init__(self, size: float):
        if size <= 0:
            raise StreamError(f"window size must be positive, got {size}")
        self.size = size

    def assign(self, ts: float) -> list[tuple[float, float]]:
        start = (ts // self.size) * self.size
        return [(start, start + self.size)]

    def describe(self) -> str:
        return f"tumbling({self.size})"

    def __repr__(self) -> str:
        return f"TumblingWindow(size={self.size})"


class SlidingWindow:
    """Overlapping windows of ``size`` starting every ``slide`` time units."""

    __slots__ = ("size", "slide")

    def __init__(self, size: float, slide: float):
        if size <= 0:
            raise StreamError(f"window size must be positive, got {size}")
        if slide <= 0 or slide > size:
            raise StreamError(
                f"slide must be in (0, size], got slide={slide} size={size}"
            )
        self.size = size
        self.slide = slide

    def assign(self, ts: float) -> list[tuple[float, float]]:
        # Earliest window containing ts starts at the smallest multiple of
        # slide that is > ts - size; emit in ascending-start order.
        first = ((ts - self.size) // self.slide + 1) * self.slide
        windows = []
        start = first
        while start <= ts:
            windows.append((start, start + self.size))
            start += self.slide
        return windows

    def describe(self) -> str:
        return f"sliding({self.size}, {self.slide})"

    def __repr__(self) -> str:
        return f"SlidingWindow(size={self.size}, slide={self.slide})"


class WindowAggregateNode(AggregateNode):
    """GroupBy over event-time windows plus the user's grouping keys.

    The output item is ``<window_start, window_end, keys..., aggregates...>``.
    Provenance-wise the event-time column is accessed (it determines window
    membership) and manipulated into both window attributes, so a backtrace
    of a windowed result marks the time path exactly like a derived column.
    """

    op_type = "window_aggregate"

    def __init__(
        self,
        oid: int,
        child: PlanNode,
        time: Any,
        window: TumblingWindow | SlidingWindow,
        keys: Sequence[Any],
        aggregates: Sequence[AggregateExpr],
    ):
        super().__init__(oid, child, keys, aggregates)
        self.time_column = as_expression(time)
        self.window = window
        taken = set(self.key_names) | {a.output_name() for a in self.aggregates}
        clashes = sorted(taken & set(WINDOW_ATTRS))
        if clashes:
            raise PlanError(
                f"window aggregation reserves output attributes {clashes}"
            )
        self.key_names = WINDOW_ATTRS + self.key_names

    def with_children(self, children: Sequence[PlanNode]) -> "WindowAggregateNode":
        return WindowAggregateNode(
            self.oid,
            children[0],
            self.time_column,
            self.window,
            self.keys,
            self.aggregates,
        )

    def label(self) -> str:
        keys = ", ".join(self.key_names[len(WINDOW_ATTRS):])
        aggs = ", ".join(str(aggregate) for aggregate in self.aggregates)
        return (
            f"windowBy({self.time_column}, {self.window.describe()}"
            + (f", {keys}" if keys else "")
            + f").agg({aggs})"
        )

    def accessed_paths(self, input_index: int = 0) -> set[Path]:
        paths = super().accessed_paths(input_index)
        paths |= {path.schematic() for path in self.time_column.accessed_paths()}
        return paths

    def manipulation_pairs(self) -> list[tuple[Path, Path]]:
        pairs = super().manipulation_pairs()
        for in_path in sorted(self.time_column.accessed_paths(), key=str):
            for attr in WINDOW_ATTRS:
                pairs.append((in_path.schematic(), Path().child(attr)))
        return pairs


#: One open window's bucket: interval + per-group member rows.
_Interval = tuple[float, float]
_GroupKey = tuple[Any, ...]


class WindowState:
    """The open windows of one window operator, carried across micro-batches."""

    __slots__ = ("windows", "watermark", "flushed_watermark", "late_rows")

    def __init__(self) -> None:
        #: ``(interval, group key) -> member rows``, insertion-ordered --
        #: the flush order tie-breaker that makes streaming replay batch.
        self.windows: dict[tuple[_Interval, _GroupKey], list[Any]] = {}
        #: Maximum event time observed (monotonic across batches).
        self.watermark = float("-inf")
        #: Watermark of the last flush; windows ending at or before it are
        #: gone, so rows targeting only such windows are *late*.
        self.flushed_watermark = float("-inf")
        #: Rows dropped because every window they belong to was flushed.
        self.late_rows = 0

    def observe(self, node: WindowAggregateNode, pid: Any, item: DataItem) -> None:
        ts = node.time_column.evaluate(item)
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            raise ExecutionError(
                f"window time column {node.time_column} evaluated to "
                f"{ts!r}; event time must be numeric"
            )
        if ts > self.watermark:
            self.watermark = ts
        placed = False
        for interval in node.window.assign(ts):
            if interval[1] <= self.flushed_watermark:
                continue  # that window already emitted; this contribution is lost
            placed = True
            key = (interval, tuple(k.evaluate(item) for k in node.keys))
            self.windows.setdefault(key, []).append((pid, item))
        if not placed:
            self.late_rows += 1

    def flush(self, horizon: float) -> list[tuple[_Interval, _GroupKey, list[Any]]]:
        """Close every window ending at or before *horizon*, start-ordered."""
        due = [
            (key, members)
            for key, members in self.windows.items()
            if key[0][1] <= horizon
        ]
        due.sort(key=lambda entry: entry[0][0][0])  # stable: ties keep insertion order
        for key, _ in due:
            del self.windows[key]
        if horizon > self.flushed_watermark:
            self.flushed_watermark = horizon
        return [(key[0], key[1], members) for key, members in due]


class WindowRuntime:
    """Per-session window state shared by successive micro-batch executions.

    The :class:`~repro.stream.session.StreamSession` attaches one runtime to
    each per-batch executor (as ``executor._window_runtime``); the handler
    below finds it and keeps windows open across batches.  ``final`` is set
    for the sealing batch, which flushes everything regardless of watermark.
    """

    __slots__ = ("states", "final")

    def __init__(self) -> None:
        self.states: dict[int, WindowState] = {}
        self.final = False

    def state(self, oid: int) -> WindowState:
        state = self.states.get(oid)
        if state is None:
            state = self.states[oid] = WindowState()
        return state

    def watermark(self) -> float | None:
        """The minimum watermark across window operators (``None`` if unused)."""
        if not self.states:
            return None
        low = min(state.watermark for state in self.states.values())
        return None if low == float("-inf") else low

    def late_rows(self) -> int:
        return sum(state.late_rows for state in self.states.values())


def _run_window_aggregate(
    executor: Executor, node: WindowAggregateNode
) -> tuple[list[list[Any]], Any]:
    """Executor handler: ingest the batch into window state, emit due windows.

    Mirrors ``Executor._run_aggregate`` (one AggregationAssociations record
    per emitted row, A/M spec against the child schema) but consumes the
    concatenated partitions sequentially -- window flush order must not
    depend on a hash shuffle -- and only emits windows the watermark closed.
    """
    child_parts, child_schema = executor._child_state(node)
    runtime: WindowRuntime | None = getattr(executor, "_window_runtime", None)
    state = runtime.state(node.oid) if runtime is not None else WindowState()
    final = runtime is None or runtime.final
    for pid, item in concat_partitions(child_parts):
        state.observe(node, pid, item)
    horizon = float("inf") if final else state.watermark
    associations = AggregationAssociations() if executor._capturing else None
    out_rows: list[Any] = []
    for (window_start, window_end), key_values, members in state.flush(horizon):
        fields: list[tuple[str, Any]] = [
            ("window_start", window_start),
            ("window_end", window_end),
        ]
        fields.extend(zip(node.key_names[len(WINDOW_ATTRS):], key_values))
        for aggregate in node.aggregates:
            values = [aggregate.column.evaluate(item) for _, item in members]
            fields.append((aggregate.output_name(), aggregate.apply(values)))
        out_item = DataItem(fields)
        if associations is not None:
            out_id = executor._fresh_id()
            associations.add([pid for pid, _ in members], out_id)
            out_rows.append((out_id, out_item))
        else:
            out_rows.append((None, out_item))
    if associations is not None:
        spec = (node.children[0].oid, node.accessed_paths(0), child_schema)
        executor._emit_operator(node, (spec,), node.manipulation_pairs(), associations)
    partitions = partition_rows(out_rows, executor._num_partitions)
    return partitions, executor._schema_of(out_rows)


# The wide-stage dispatch is exact-type keyed, so the subclass registers its
# own handler (falling through to _run_aggregate would ignore windows).
Executor._WIDE_HANDLERS[WindowAggregateNode] = _run_window_aggregate


class WindowedDataset:
    """Intermediate builder: ``window_by(ds, ...).agg(...)`` -> Dataset."""

    def __init__(
        self,
        dataset: Dataset,
        time: Any,
        window: TumblingWindow | SlidingWindow,
        keys: Sequence[Any],
    ):
        self.dataset = dataset
        self.time = time
        self.window = window
        self.keys = list(keys)

    def agg(self, *aggregates: AggregateExpr) -> Dataset:
        for aggregate in aggregates:
            if not isinstance(aggregate, AggregateExpr):
                raise PlanError(
                    f"window agg() expects aggregate expressions, got {aggregate!r}"
                )
        session = self.dataset.session
        node = WindowAggregateNode(
            session.next_oid(),
            self.dataset.plan,
            self.time,
            self.window,
            self.keys,
            list(aggregates),
        )
        return Dataset(session, node)


def window_by(
    dataset: Dataset,
    time: Any,
    window: TumblingWindow | SlidingWindow,
    *keys: Any,
) -> WindowedDataset:
    """Group *dataset* by event-time window (plus optional keys).

    ``time`` is a column expression or path string evaluating to a numeric
    event time; ``window`` a :class:`TumblingWindow` or
    :class:`SlidingWindow`.  Returns a builder whose ``agg(...)`` yields a
    dataset of ``<window_start, window_end, keys..., aggregates...>`` rows.
    """
    return WindowedDataset(dataset, time, window, keys)
