"""Micro-batch streaming capture (live runs, windows, watermarks).

Importing this package registers the windowed-aggregation executor handler,
so ``from repro.stream import ...`` is all a program needs before running a
windowed plan -- in streaming *or* batch mode.
"""

from repro.stream.session import StreamSession, StreamSource
from repro.stream.window import (
    SlidingWindow,
    TumblingWindow,
    WindowAggregateNode,
    window_by,
)

__all__ = [
    "SlidingWindow",
    "StreamSession",
    "StreamSource",
    "TumblingWindow",
    "WindowAggregateNode",
    "window_by",
]
