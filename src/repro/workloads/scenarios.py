"""The evaluation scenarios T1-T5 and D1-D5 (paper Tab. 7) plus the running
example (Sec. 2, Tabs. 1-2, Figs. 1-4).

Each :class:`Scenario` bundles a pipeline builder over one of the two
workloads with the structural provenance question (tree pattern) evaluated
against it, mirroring the paper's setup where every supported operator
occurs at least once across the scenarios.  The sentinel values embedded by
the generators guarantee that every pattern matches at every scale.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.engine.dataset import Dataset
from repro.engine.expressions import (
    col,
    collect_list,
    collect_set,
    count,
    lit,
    min_,
    struct_,
)
from repro.engine.session import Session
from repro.errors import WorkloadError
from repro.nested.values import DataItem
from repro.workloads.dblp import DblpConfig, generate_dblp
from repro.workloads.twitter import TwitterConfig, generate_tweets

__all__ = [
    "Scenario",
    "SCENARIOS",
    "TWITTER_SCENARIOS",
    "DBLP_SCENARIOS",
    "scenario",
    "load_workload",
    "RUNNING_EXAMPLE_TWEETS",
    "RUNNING_EXAMPLE_PATTERN",
    "build_running_example",
]


# ---------------------------------------------------------------------------
# Running example (Sec. 2)
# ---------------------------------------------------------------------------

#: The five tweets of Tab. 1 (attribute names follow the paper's figures;
#: ``retweet_count`` is the paper's ``retweet_cnt``).
RUNNING_EXAMPLE_TWEETS: tuple[dict[str, Any], ...] = (
    {
        "text": "Hello @ls @jm @ls",
        "user": {"id_str": "lp", "name": "Lisa Paul"},
        "user_mentions": [
            {"id_str": "ls", "name": "Lauren Smith"},
            {"id_str": "jm", "name": "John Miller"},
            {"id_str": "ls", "name": "Lauren Smith"},
        ],
        "retweet_count": 0,
    },
    {
        "text": "Hello World",
        "user": {"id_str": "lp", "name": "Lisa Paul"},
        "user_mentions": [],
        "retweet_count": 0,
    },
    {
        "text": "Hello World",
        "user": {"id_str": "lp", "name": "Lisa Paul"},
        "user_mentions": [],
        "retweet_count": 0,
    },
    {
        "text": "This is me @jm",
        "user": {"id_str": "jm", "name": "John Miller"},
        "user_mentions": [{"id_str": "jm", "name": "John Miller"}],
        "retweet_count": 0,
    },
    {
        "text": "Hello @lp",
        "user": {"id_str": "jm", "name": "John Miller"},
        "user_mentions": [{"id_str": "lp", "name": "Lisa Paul"}],
        "retweet_count": 1,
    },
)

#: The provenance question of Fig. 4: user ``lp`` with the duplicate
#: ``Hello World`` texts occurring exactly twice.
RUNNING_EXAMPLE_PATTERN = 'root{//id_str="lp", /tweets{/text="Hello World"[2,2]}}'


def build_running_example(
    session: Session, tweets: list[dict[str, Any]] | list[DataItem] | None = None
) -> Dataset:
    """Build the Fig. 1 pipeline over the Tab. 1 data (or custom tweets).

    The pipeline reads ``tweets.json`` twice: the upper branch keeps
    authored tweets with ``retweet_count == 0``, the lower branch flattens
    the mentioned users; both branches are unified, restructured, and
    grouped per user, collecting the tweeted texts into a nested list.
    """
    data = list(tweets) if tweets is not None else list(RUNNING_EXAMPLE_TWEETS)
    upper = (
        session.create_dataset(data, "tweets.json")
        .filter(col("retweet_count") == 0)
        .select(col("text"), col("user.id_str"), col("user.name"))
    )
    lower = (
        session.create_dataset(data, "tweets.json")
        .flatten("user_mentions", "m_user")
        .select(col("text"), col("m_user.id_str"), col("m_user.name"))
    )
    return (
        upper.union(lower)
        .select(
            struct_(text=col("text")).alias("tweet"),
            struct_(id_str=col("id_str"), name=col("name")).alias("user"),
        )
        .group_by(col("user"))
        .agg(collect_list(col("tweet")).alias("tweets"))
    )


# ---------------------------------------------------------------------------
# Scenario infrastructure
# ---------------------------------------------------------------------------

_WORKLOAD_CACHE: dict[tuple[str, float], Any] = {}


def load_workload(kind: str, scale: float = 1.0) -> Any:
    """Generate (and memoise) the workload data for one scenario kind.

    Twitter scenarios receive the tweet list; DBLP scenarios receive the
    dict of record collections.
    """
    key = (kind, scale)
    if key not in _WORKLOAD_CACHE:
        if kind == "twitter":
            raw = generate_tweets(TwitterConfig(scale=scale))
            # Pre-coerce once: benchmarks should time the pipelines, not the
            # JSON-to-model conversion (the paper's data sits parsed on disk).
            _WORKLOAD_CACHE[key] = [DataItem(tweet) for tweet in raw]
        elif kind == "dblp":
            raw_collections = generate_dblp(DblpConfig(scale=scale))
            _WORKLOAD_CACHE[key] = {
                name: [DataItem(record) for record in records]
                for name, records in raw_collections.items()
            }
        else:
            raise WorkloadError(f"unknown workload kind {kind!r}")
    return _WORKLOAD_CACHE[key]


class Scenario:
    """One evaluation scenario: a pipeline plus its structural query."""

    def __init__(
        self,
        name: str,
        kind: str,
        description: str,
        build: Callable[[Session, Any], Dataset],
        pattern: str,
    ):
        self.name = name
        self.kind = kind
        self.description = description
        self._build = build
        #: The structural provenance question evaluated in Fig. 9.
        self.pattern = pattern

    def build(self, session: Session, data: Any) -> Dataset:
        """Build the scenario pipeline over pre-generated workload data."""
        return self._build(session, data)

    def instantiate(
        self, scale: float = 1.0, num_partitions: int | None = None
    ) -> Dataset:
        """Generate the workload and build the pipeline in a fresh session."""
        data = load_workload(self.kind, scale)
        return self.build(Session(num_partitions=num_partitions), data)

    def __repr__(self) -> str:
        return f"Scenario({self.name}: {self.description})"


def _twitter_reader(session: Session, tweets: list[dict[str, Any]]) -> Dataset:
    # A Dataset passes through untouched: a StreamSession hands its source
    # dataset in as the "workload", so the same builders run over live feeds.
    if isinstance(tweets, Dataset):
        return tweets
    return session.create_dataset(tweets, "tweets.json")


def _dblp_reader(session: Session, data: dict[str, Any], collection: str) -> Dataset:
    return session.create_dataset(data[collection], f"{collection}.json")


# ---------------------------------------------------------------------------
# Twitter scenarios (Tab. 7, T1-T5)
# ---------------------------------------------------------------------------


def _build_t1(session: Session, tweets: Any) -> Dataset:
    """T1: filter ``good`` tweets, flatten mentions, group per mentioned user."""
    return (
        _twitter_reader(session, tweets)
        .filter(col("text").contains("good"))
        .flatten("user_mentions", "m_user")
        .group_by(col("m_user"))
        .agg(
            collect_list(
                struct_(text=col("text"), retweets=col("retweet_count"))
            ).alias("tweets")
        )
    )


def _build_t2(session: Session, tweets: Any) -> Dataset:
    """T2: flatten the nested lists hashtags, media, and user mentions."""
    return (
        _twitter_reader(session, tweets)
        .flatten("hashtags", "hashtag")
        .flatten("media", "medium", outer=True)
        .flatten("user_mentions", "m_user")
    )


def _build_t3(session: Session, tweets: Any) -> Dataset:
    """T3: the running example pipeline (reads the input twice)."""
    return build_running_example(session, tweets)


def _build_t4(session: Session, tweets: Any) -> Dataset:
    """T4: associate hashtags with both authoring and mentioned users."""
    authoring = (
        _twitter_reader(session, tweets)
        .flatten("hashtags", "tag")
        .select(
            col("tag.text").alias("hashtag"),
            col("user.id_str").alias("uid"),
            col("user.name").alias("uname"),
        )
    )
    mentioned = (
        _twitter_reader(session, tweets)
        .flatten("hashtags", "tag")
        .flatten("user_mentions", "m_user")
        .select(
            col("tag.text").alias("hashtag"),
            col("m_user.id_str").alias("uid"),
            col("m_user.name").alias("uname"),
        )
    )
    return (
        authoring.union(mentioned)
        .group_by(col("hashtag"))
        .agg(collect_set(struct_(id_str=col("uid"), name=col("uname"))).alias("users"))
    )


def _build_t5(session: Session, tweets: Any) -> Dataset:
    """T5: users that tweet about BTS *and* are mentioned in a BTS tweet."""
    authors = (
        _twitter_reader(session, tweets)
        .filter(col("text").contains("BTS"))
        .select(
            col("user.id_str").alias("a_id"),
            col("user.name").alias("a_name"),
            col("text").alias("a_text"),
        )
    )
    mentioned = (
        _twitter_reader(session, tweets)
        .filter(col("text").contains("BTS"))
        .flatten("user_mentions", "m_user")
        .select(col("m_user.id_str").alias("m_id"), col("text").alias("m_text"))
    )
    return (
        authors.join(mentioned, col("a_id") == col("m_id"))
        .group_by(col("a_id"), col("a_name"))
        .agg(
            collect_list(col("a_text")).alias("authored"),
            collect_list(col("m_text")).alias("mentioned_in"),
        )
    )


# ---------------------------------------------------------------------------
# DBLP scenarios (Tab. 7, D1-D5)
# ---------------------------------------------------------------------------


def _proceedings_renamed(session: Session, data: Any) -> Dataset:
    """Proceedings with ``p_``-prefixed attributes (avoids join clashes)."""
    return _dblp_reader(session, data, "proceedings").select(
        col("key").alias("p_key"),
        col("title").alias("p_title"),
        col("year").alias("p_year"),
        col("publisher"),
    )


def _build_d1(session: Session, data: Any) -> Dataset:
    """D1: associate 2015 inproceedings with their proceeding(s)."""
    inproceedings = _dblp_reader(session, data, "inproceedings").filter(col("year") == 2015)
    return inproceedings.join(
        _proceedings_renamed(session, data), col("crossref") == col("p_key")
    )


def _build_d2(session: Session, data: Any) -> Dataset:
    """D2: unite and restructure conference proceedings and articles."""
    proceedings = _dblp_reader(session, data, "proceedings").select(
        col("key"),
        col("title"),
        col("year"),
        struct_(publisher=col("publisher"), kind=lit("proceedings")).alias("venue"),
    )
    articles = _dblp_reader(session, data, "articles").select(
        col("key"),
        col("title"),
        col("year"),
        struct_(publisher=col("journal"), kind=lit("article")).alias("venue"),
    )
    return proceedings.union(articles)


def _build_d3(session: Session, data: Any) -> Dataset:
    """D3: nested lists of aliases, co-author lists, and works per author.

    Flattens early (every paper x author) and joins with the person
    records -- the shape behind D3's large provenance size in Fig. 8(b).
    """
    works = _dblp_reader(session, data, "inproceedings").flatten("authors", "author")
    persons = _dblp_reader(session, data, "persons").select(
        col("name").alias("p_name"), col("aliases"), col("affiliation")
    )
    return (
        works.join(persons, col("author") == col("p_name"))
        .group_by(col("author"))
        .agg(
            collect_list(col("title")).alias("works"),
            collect_set(col("aliases")).alias("alias_sets"),
            collect_list(col("authors")).alias("coauthor_lists"),
            min_(col("year")).alias("first_year"),
        )
    )


def _build_d4(session: Session, data: Any) -> Dataset:
    """D4: nested list of all associated inproceedings per proceeding."""
    inproceedings = _dblp_reader(session, data, "inproceedings")
    return (
        inproceedings.join(_proceedings_renamed(session, data), col("crossref") == col("p_key"))
        .group_by(col("p_key"), col("p_title"))
        .agg(
            collect_list(struct_(title=col("title"), authors=col("authors"))).alias("papers"),
            count().alias("paper_count"),
        )
    )


# ---------------------------------------------------------------------------
# Streaming scenario (S1)
# ---------------------------------------------------------------------------


def _s1_event_time(item: DataItem) -> DataItem:
    """S1's UDF: numeric event time (hours into June 2019) from ``created_at``."""
    stamp = item["created_at"]
    return item.replace(event_ts=float(int(stamp[8:10]) * 24 + int(stamp[11:13])))


def _build_s1(session: Session, tweets: Any) -> Dataset:
    """S1: daily tumbling windows of authored tweets per user.

    The only streamable scenario: a linear read-map-select chain into a
    windowed aggregation, so a :class:`~repro.stream.StreamSession` can run
    it over micro-batches.  Without a stream runtime the window degrades to
    batch semantics (one final flush), so the scenario also runs under
    ``repro scenario S1`` like any other.
    """
    # Imported here, not at module top: pulling in the streaming package
    # registers the windowed-aggregation executor handler as a side effect,
    # and only this scenario needs it.
    from repro.stream.window import TumblingWindow, window_by

    authored = (
        _twitter_reader(session, tweets)
        .filter(col("retweet_count") == 0)
        .map(_s1_event_time, "event_time")
        .select(col("text"), col("user.id_str"), col("event_ts"))
    )
    return window_by(
        authored, col("event_ts"), TumblingWindow(24.0), col("id_str")
    ).agg(collect_list(col("text")).alias("texts"), count().alias("n"))


def _count_authors(item: DataItem) -> DataItem:
    """D5's UDF: total number of author slots across a proceeding's papers."""
    total = sum(len(paper["authors"]) for paper in item["papers"])
    return item.replace(n_authors=total)


def _build_d5(session: Session, data: Any) -> Dataset:
    """D5: D4 extended with a map UDF counting authors per proceeding."""
    return _build_d4(session, data).map(_count_authors, "count_authors")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

SCENARIOS: dict[str, Scenario] = {
    "T1": Scenario(
        "T1",
        "twitter",
        "filter 'good' tweets, flatten and group by mentioned users, "
        "collect complex tweet objects",
        _build_t1,
        'root{/m_user{/id_str="u1"}, /tweets{/text="good BTS news everyone @lp"}}',
    ),
    "T2": Scenario(
        "T2",
        "twitter",
        "flatten the nested lists hashtags, media, user mentions",
        _build_t2,
        'root{/hashtag{/text="pebble"}, /m_user{/id_str="u1"}}',
    ),
    "T3": Scenario(
        "T3",
        "twitter",
        "running example",
        _build_t3,
        'root{/user{/id_str="u1"}, /tweets{/text="good BTS concert tonight #pebble"}}',
    ),
    "T4": Scenario(
        "T4",
        "twitter",
        "associate all occurring hashtags with authoring and mentioned users",
        _build_t4,
        'root{/hashtag="pebble", /users{/id_str="u1"}}',
    ),
    "T5": Scenario(
        "T5",
        "twitter",
        "users that tweet about BTS and are mentioned in a BTS tweet",
        _build_t5,
        'root{/a_id="u1", /authored}',
    ),
    "D1": Scenario(
        "D1",
        "dblp",
        "associate inproceedings from 2015 with their proceeding(s)",
        _build_d1,
        'root{/title="Structural Provenance for Nested Data", /p_key="conf/pebble/2015"}',
    ),
    "D2": Scenario(
        "D2",
        "dblp",
        "unite and restructure conference proceedings and articles",
        _build_d2,
        'root{/key="journals/vldbj/Sentinel2015"}',
    ),
    "D3": Scenario(
        "D3",
        "dblp",
        "nested lists of aliases, co-authors, and works per author",
        _build_d3,
        'root{/author="Ralf Diestel", /works}',
    ),
    "D4": Scenario(
        "D4",
        "dblp",
        "nested list of all associated inproceedings per proceeding",
        _build_d4,
        'root{/p_key="conf/pebble/2015", /papers}',
    ),
    "D5": Scenario(
        "D5",
        "dblp",
        "D4 extended with a UDF in map returning author counts per proceeding",
        _build_d5,
        'root{/p_key="conf/pebble/2015"}',
    ),
    # The GDPR audit scenario sits outside the paper's T/D evaluation tables
    # (the "G" prefix keeps it out of TWITTER_SCENARIOS/DBLP_SCENARIOS): its
    # pattern runs over the *source items* via `repro trace-forward`, asking
    # which outputs derive from one data subject's tweets and mentions.  The
    # //text leg makes the same pattern meaningful backwards too (it seeds
    # the collected-tweet paths, not just the group key).
    # The streaming scenario sits outside the paper's T/D tables (like G1):
    # it exercises the micro-batch capture path of `repro bench stream` and
    # the windowed-provenance model.  Sentinel tweets t1/t3 (user u1, day 1)
    # land in the same daily window at every scale, so the pattern always
    # matches -- in batch mode and over any micro-batch split.
    "S1": Scenario(
        "S1",
        "twitter",
        "streaming: daily tumbling windows of authored tweets per user "
        "(micro-batch capture workload)",
        _build_s1,
        'root{/id_str="u1", /texts}',
    ),
    "G1": Scenario(
        "G1",
        "twitter",
        "GDPR audit: every output derived from data subject u1's tweets "
        "and mentions (forward trace / SAR workload)",
        _build_t1,
        'root{//*="u1", //text}',
    ),
}

TWITTER_SCENARIOS = tuple(name for name in SCENARIOS if name.startswith("T"))
DBLP_SCENARIOS = tuple(name for name in SCENARIOS if name.startswith("D"))


def scenario(name: str) -> Scenario:
    """Look up a scenario by name (``T1`` ... ``D5``)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise WorkloadError(f"unknown scenario {name!r}; pick one of {sorted(SCENARIOS)}") from None
