"""Synthetic DBLP-like corpus (paper Sec. 7.2).

The paper's DBLP dataset holds up to 1.5 billion records of ten types,
split by type and upscaled such that characteristics like the average
number of inproceedings per proceeding are preserved.  This generator
produces four record collections at laptop scale with the same structural
characteristics the D scenarios depend on:

* ``proceedings`` -- conference volumes (keys like ``conf/pebble/2015``),
* ``inproceedings`` -- papers referencing a proceeding via ``crossref`` and
  carrying a nested ``authors`` list,
* ``articles`` -- journal papers,
* ``persons`` -- author records with nested ``aliases``.

Compared to the Twitter corpus, records are narrow (< 20 attributes) and
numerous -- the property behind the paper's observation that DBLP
provenance is orders of magnitude larger than Twitter provenance for the
same input bytes (Sec. 7.3.2).

Sentinels guaranteed at every scale: proceeding ``conf/pebble/2015``
(year 2015), inproceedings ``conf/pebble/2015/1`` titled
"Structural Provenance for Nested Data" authored by ``Ralf Diestel``, and a
person record for ``Ralf Diestel`` with alias ``R. Diestel``.
"""

from __future__ import annotations

import random
from typing import Any

from repro.errors import WorkloadError

__all__ = ["DblpConfig", "generate_dblp"]

_TITLE_WORDS = (
    "structural provenance nested data scalable tracing big analytics "
    "lineage workload pattern partitioning query optimization distributed "
    "capture backtracing annotation schema path operator"
).split()

_VENUES = ("pebble", "edbt", "vldb", "sigmod", "icde", "cidr")
_JOURNALS = ("VLDBJ", "TODS", "SIGMOD Record", "PVLDB")
_FIRST = ("Ralf", "Melanie", "Ada", "Grace", "Alan", "Barbara", "Leslie", "Tim")
_LAST = ("Diestel", "Herschel", "Lovelace", "Hopper", "Turing", "Liskov", "Lamport", "Berners")


class DblpConfig:
    """Configuration of the synthetic DBLP corpus."""

    #: Inproceedings per unit of scale (scale=1 stands in for 100 GB).
    #: A DBLP record is roughly 50x smaller than a payload-bearing tweet, so
    #: byte-parity with the Twitter corpus means several times more items --
    #: the property behind Fig. 8's "DBLP provenance is orders of magnitude
    #: larger" observation.
    BASE_INPROCEEDINGS = 2400
    #: Average inproceedings per proceeding, preserved across scales.
    PAPERS_PER_PROCEEDING = 25

    def __init__(self, scale: float = 1.0, seed: int = 11):
        if scale <= 0:
            raise WorkloadError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.seed = seed
        self.inproceedings_count = max(2, int(round(self.BASE_INPROCEEDINGS * scale)))
        self.proceedings_count = max(2, self.inproceedings_count // self.PAPERS_PER_PROCEEDING)
        self.articles_count = max(1, self.inproceedings_count // 2)
        self.persons_count = max(4, self.inproceedings_count // 20)


def _author_pool(rng: random.Random, count: int) -> list[str]:
    pool = ["Ralf Diestel"]
    for index in range(1, count):
        pool.append(f"{rng.choice(_FIRST)} {rng.choice(_LAST)} {index:03d}")
    return pool


def _title(rng: random.Random) -> str:
    words = [rng.choice(_TITLE_WORDS) for _ in range(rng.randrange(3, 8))]
    return " ".join(words).title()


def generate_dblp(config: DblpConfig | None = None, **kwargs: Any) -> dict[str, list[dict[str, Any]]]:
    """Generate the DBLP-like corpus as four record collections."""
    if config is None:
        config = DblpConfig(**kwargs)
    elif kwargs:
        raise WorkloadError("pass either a DblpConfig or keyword arguments, not both")
    rng = random.Random(config.seed)
    authors = _author_pool(rng, config.persons_count)

    proceedings = [
        {
            "key": "conf/pebble/2015",
            "title": "Pebble Conference 2015",
            "year": 2015,
            "publisher": "OpenProceedings",
            "editors": ["Melanie Herschel"],
        }
    ]
    for index in range(1, config.proceedings_count):
        venue = rng.choice(_VENUES)
        year = rng.randrange(2010, 2021)
        proceedings.append(
            {
                "key": f"conf/{venue}/{year}-{index}",
                "title": f"{venue.upper()} {year} Volume {index}",
                "year": year,
                "publisher": rng.choice(("OpenProceedings", "ACM", "IEEE")),
                "editors": rng.sample(authors, k=min(2, len(authors))),
            }
        )

    inproceedings = [
        {
            "key": "conf/pebble/2015/1",
            "title": "Structural Provenance for Nested Data",
            "authors": ["Ralf Diestel", authors[1 % len(authors)]],
            "year": 2015,
            "crossref": "conf/pebble/2015",
            "pages": "1-12",
        }
    ]
    for index in range(1, config.inproceedings_count):
        volume = rng.choice(proceedings)
        author_count = rng.randrange(1, 5)
        inproceedings.append(
            {
                "key": f"{volume['key']}/{index + 1}",
                "title": _title(rng),
                "authors": rng.sample(authors, k=min(author_count, len(authors))),
                "year": volume["year"],
                "crossref": volume["key"],
                "pages": f"{index}-{index + 11}",
            }
        )

    articles = [
        {
            "key": "journals/vldbj/Sentinel2015",
            "title": "A Survey On Provenance",
            "authors": ["Melanie Herschel", "Ralf Diestel"],
            "journal": "VLDBJ",
            "year": 2015,
            "volume": 26,
        }
    ]
    for index in range(1, config.articles_count):
        articles.append(
            {
                "key": f"journals/{rng.choice(_JOURNALS).split()[0].lower()}/A{index}",
                "title": _title(rng),
                "authors": rng.sample(authors, k=min(rng.randrange(1, 4), len(authors))),
                "journal": rng.choice(_JOURNALS),
                "year": rng.randrange(2005, 2021),
                "volume": rng.randrange(1, 40),
            }
        )

    persons = [
        {
            "name": "Ralf Diestel",
            "aliases": ["R. Diestel", "Ralf D."],
            "affiliation": "University of Stuttgart",
        }
    ]
    for name in authors[1:]:
        alias_count = rng.randrange(0, 3)
        parts = name.split()
        aliases = [f"{parts[0][0]}. {' '.join(parts[1:])}"][:alias_count] + [
            f"{parts[0]} {parts[1][0]}." for _ in range(max(0, alias_count - 1))
        ]
        persons.append(
            {
                "name": name,
                "aliases": aliases,
                "affiliation": rng.choice(("U Stuttgart", "MIT", "ETH", "KAIST", "Inria")),
            }
        )

    return {
        "proceedings": proceedings,
        "inproceedings": inproceedings,
        "articles": articles,
        "persons": persons,
    }
