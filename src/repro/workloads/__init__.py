"""Workload generators and evaluation scenarios (paper Sec. 7.2)."""

from repro.workloads.dblp import DblpConfig, generate_dblp
from repro.workloads.scenarios import (
    DBLP_SCENARIOS,
    RUNNING_EXAMPLE_PATTERN,
    RUNNING_EXAMPLE_TWEETS,
    SCENARIOS,
    TWITTER_SCENARIOS,
    Scenario,
    build_running_example,
    load_workload,
    scenario,
)
from repro.workloads.twitter import TwitterConfig, generate_tweets

__all__ = [
    "DblpConfig",
    "generate_dblp",
    "DBLP_SCENARIOS",
    "RUNNING_EXAMPLE_PATTERN",
    "RUNNING_EXAMPLE_TWEETS",
    "SCENARIOS",
    "TWITTER_SCENARIOS",
    "Scenario",
    "build_running_example",
    "load_workload",
    "scenario",
    "TwitterConfig",
    "generate_tweets",
]
