"""Synthetic nested Twitter corpus (paper Sec. 7.2).

The paper evaluates on 100-500 GB of real tweets: up to 130 million items
with up to ~1000 attributes and eight layers of nesting.  This generator
produces a deterministic, structurally equivalent corpus at laptop scale:

* nested ``user`` structs with a location sub-struct (depth),
* ``user_mentions`` / ``hashtags`` / ``media`` nested lists (the attributes
  the scenarios flatten),
* a ``payload`` subtree of configurable width that stands in for the real
  corpus' ~1000 rarely used attributes (it drives the "wide data lowers the
  relative capture overhead" effect of Sec. 7.3.1), nested four levels deep
  so the deepest leaf sits at nesting level eight,
* sentinel values (user ``u1`` alias Lisa Paul, hashtag ``pebble``, the
  words ``good`` and ``BTS``) guaranteed to exist at every scale so the
  scenario queries always have matches.

Scale factors mirror the paper's 100 GB steps: ``scale=1`` corresponds to
the base size, ``scale=5`` to five times as many tweets.
"""

from __future__ import annotations

import random
from typing import Any

from repro.errors import WorkloadError

__all__ = ["TwitterConfig", "generate_tweets", "user_pool"]

#: Words used to build tweet texts; includes the scenario trigger words.
_WORDS = (
    "the data pipeline runs fast and the nested lists keep growing while "
    "analytics engines trace provenance across operators with paths and ids "
    "every flatten select join union grouping aggregation counts"
).split()

_FIRST_NAMES = (
    "Lisa", "Lauren", "John", "Ralf", "Melanie", "Ada", "Grace", "Alan",
    "Edsger", "Barbara", "Tim", "Leslie", "Donald", "Frances", "Margaret",
)
_LAST_NAMES = (
    "Paul", "Smith", "Miller", "Diestel", "Herschel", "Lovelace", "Hopper",
    "Turing", "Dijkstra", "Liskov", "Berners", "Lamport", "Knuth", "Allen",
)
_CITIES = ("Stuttgart", "Berlin", "Seoul", "Boston", "Lyon", "Kyoto")
_COUNTRIES = ("DE", "KR", "US", "FR", "JP")
_LANGS = ("en", "de", "ko", "fr", "ja")
_MEDIA_TYPES = ("photo", "video", "animated_gif")
_HASHTAGS = ("pebble", "provenance", "bigdata", "spark", "nested", "edbt", "gdpr")


class TwitterConfig:
    """Configuration of the synthetic Twitter corpus."""

    #: Tweets per unit of scale (scale=1 stands in for the paper's 100 GB).
    BASE_TWEETS = 400

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 7,
        payload_width: int = 24,
        user_count: int | None = None,
    ):
        if scale <= 0:
            raise WorkloadError(f"scale must be positive, got {scale}")
        if payload_width < 0:
            raise WorkloadError(f"payload_width must be >= 0, got {payload_width}")
        self.scale = scale
        self.seed = seed
        #: Number of filler attributes in the ``payload`` subtree; stands in
        #: for the real corpus' ~1000-attribute width.
        self.payload_width = payload_width
        self.tweet_count = max(1, int(round(self.BASE_TWEETS * scale)))
        self.user_count = user_count or max(8, self.tweet_count // 12)


def user_pool(config: TwitterConfig) -> list[dict[str, Any]]:
    """Deterministic pool of users; ``u1`` is the sentinel Lisa Paul."""
    rng = random.Random(config.seed * 31 + 1)
    users = [
        {
            "id_str": "u1",
            "name": "Lisa Paul",
            "screen_name": "lp",
            "followers_count": 2048,
            "verified": True,
            "location": {"city": "Stuttgart", "country": "DE", "geo": {"lat": 48.78, "lon": 9.18}},
        }
    ]
    for index in range(2, config.user_count + 1):
        first = rng.choice(_FIRST_NAMES)
        last = rng.choice(_LAST_NAMES)
        users.append(
            {
                "id_str": f"u{index}",
                "name": f"{first} {last}",
                "screen_name": f"{first[0].lower()}{last.lower()}{index}",
                "followers_count": rng.randrange(0, 100_000),
                "verified": rng.random() < 0.05,
                "location": {
                    "city": rng.choice(_CITIES),
                    "country": rng.choice(_COUNTRIES),
                    "geo": {"lat": round(rng.uniform(-90, 90), 4), "lon": round(rng.uniform(-180, 180), 4)},
                },
            }
        )
    return users


def _mention_of(user: dict[str, Any]) -> dict[str, Any]:
    return {
        "id_str": user["id_str"],
        "name": user["name"],
        "screen_name": user["screen_name"],
    }


def _text(rng: random.Random, mentions: list[dict[str, Any]], hashtags: list[str]) -> str:
    words = [rng.choice(_WORDS) for _ in range(rng.randrange(4, 12))]
    if rng.random() < 0.20:
        words.insert(rng.randrange(len(words)), "good")
    if rng.random() < 0.12:
        words.insert(rng.randrange(len(words)), "BTS")
    words.extend(f"@{mention['screen_name']}" for mention in mentions)
    words.extend(f"#{tag}" for tag in hashtags)
    return " ".join(words)


def _payload(rng: random.Random, width: int) -> dict[str, Any]:
    """Filler subtree emulating the real corpus' unused attribute width.

    Four levels deep (payload -> group -> entry -> leaf struct) so tweets
    reach the paper's eight layers of nesting through
    ``payload.group_k.entries[i].meta.flags``.
    """
    groups: dict[str, Any] = {}
    per_group = 4
    for group_index in range((width + per_group - 1) // per_group or 0):
        entries = []
        for entry_index in range(min(per_group, width - group_index * per_group)):
            entries.append(
                {
                    "key": f"attr_{group_index}_{entry_index}",
                    "value": rng.randrange(0, 1_000_000),
                    "meta": {"source": rng.choice(("api", "web", "sdk")), "flags": [rng.randrange(0, 9)]},
                }
            )
        groups[f"group_{group_index}"] = {"entries": entries, "checksum": rng.randrange(0, 2**31)}
    return groups


def generate_tweets(config: TwitterConfig | None = None, **kwargs: Any) -> list[dict[str, Any]]:
    """Generate the synthetic tweet corpus.

    Accepts either a :class:`TwitterConfig` or its keyword arguments.  The
    first three tweets are sentinels: a ``good``/``BTS`` tweet authored by
    ``u1``, a retweeted tweet mentioning ``u1``, and a ``#pebble`` tweet by
    ``u1`` mentioning another user -- they guarantee non-empty results for
    every scenario query at every scale.
    """
    if config is None:
        config = TwitterConfig(**kwargs)
    elif kwargs:
        raise WorkloadError("pass either a TwitterConfig or keyword arguments, not both")
    rng = random.Random(config.seed)
    users = user_pool(config)
    lisa = users[0]
    other = users[1 % len(users)]
    tweets: list[dict[str, Any]] = [
        {
            "id_str": "t1",
            "text": "good BTS concert tonight #pebble",
            "user": dict(lisa),
            "user_mentions": [_mention_of(other)],
            "hashtags": [{"text": "pebble", "indices": [0, 7]}],
            "media": [],
            "retweet_count": 0,
            "favorite_count": 3,
            "lang": "en",
            "created_at": "2019-06-01T10:00:00Z",
            "payload": _payload(rng, config.payload_width),
        },
        {
            "id_str": "t2",
            "text": f"good BTS news everyone @{lisa['screen_name']}",
            "user": dict(other),
            "user_mentions": [_mention_of(lisa)],
            "hashtags": [{"text": "bigdata", "indices": [0, 8]}],
            "media": [],
            "retweet_count": 2,
            "favorite_count": 1,
            "lang": "en",
            "created_at": "2019-06-01T11:00:00Z",
            "payload": _payload(rng, config.payload_width),
        },
        {
            "id_str": "t3",
            "text": f"tracing nested data is good #pebble @{other['screen_name']}",
            "user": dict(lisa),
            "user_mentions": [_mention_of(other), _mention_of(lisa)],
            "hashtags": [{"text": "pebble", "indices": [0, 7]}, {"text": "provenance", "indices": [8, 19]}],
            "media": [{"media_url": "https://m/1.jpg", "type": "photo", "sizes": {"large": {"w": 1024, "h": 768}}}],
            "retweet_count": 0,
            "favorite_count": 9,
            "lang": "en",
            "created_at": "2019-06-01T12:00:00Z",
            "payload": _payload(rng, config.payload_width),
        },
    ]
    for index in range(4, config.tweet_count + 1):
        author = rng.choice(users)
        mention_count = rng.randrange(0, 4)
        mentions = [_mention_of(rng.choice(users)) for _ in range(mention_count)]
        hashtag_count = rng.randrange(0, 3)
        hashtags = [rng.choice(_HASHTAGS) for _ in range(hashtag_count)]
        media = []
        for _ in range(rng.randrange(0, 3)):
            media.append(
                {
                    "media_url": f"https://m/{rng.randrange(10_000)}.jpg",
                    "type": rng.choice(_MEDIA_TYPES),
                    "sizes": {"large": {"w": rng.choice((640, 1024, 2048)), "h": rng.choice((480, 768, 1536))}},
                }
            )
        tweets.append(
            {
                "id_str": f"t{index}",
                "text": _text(rng, mentions, hashtags),
                "user": dict(author),
                "user_mentions": mentions,
                "hashtags": [
                    {"text": tag, "indices": [position * 8, position * 8 + len(tag)]}
                    for position, tag in enumerate(hashtags)
                ],
                "media": media,
                "retweet_count": rng.choice((0, 0, 0, 1, 2, 5, 17)),
                "favorite_count": rng.randrange(0, 50),
                "lang": rng.choice(_LANGS),
                "created_at": f"2019-06-{rng.randrange(1, 29):02d}T{rng.randrange(0, 24):02d}:00:00Z",
                "payload": _payload(rng, config.payload_width),
            }
        )
    return tweets
