"""Lipstick-style value-level annotation baseline (paper Secs. 2, 3.1).

Lipstick pinpoints nested values correctly but "requires annotating all
values, not just the tuples, e.g., 35 rather than 5 annotations" on the
running example's input (the superscript numbers in Tab. 1).  This module
implements that annotation scheme so its cost can be measured against the
structural capture:

* :func:`count_annotations` -- how many annotations value-level annotation
  needs for a dataset (every constant, struct, and collection element),
  versus one per top-level item for structural provenance.
* :class:`ValueAnnotationCapture` -- materialises the annotation map
  (annotation id -> value path) for a dataset and reports its size, the
  runtime/space overhead driver that makes Lipstick "impractical when
  needing to scale" (Sec. 2).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.paths import Path
from repro.nested.values import Bag, DataItem, NestedSet

__all__ = ["count_annotations", "ValueAnnotationCapture"]

_ID_BYTES = 8


def _count_value(value: Any) -> int:
    """Annotations needed below one value.

    Following Tab. 1's superscripts: every constant value carries an
    annotation; nested structs and collections are addressed through their
    constants, and only the *top-level* item gets an annotation of its own
    (added by :func:`count_annotations`).
    """
    if isinstance(value, DataItem):
        return sum(_count_value(inner) for _, inner in value.pairs())
    if isinstance(value, (Bag, NestedSet)):
        return sum(_count_value(inner) for inner in value)
    return 1


def count_annotations(items: Iterable[DataItem]) -> int:
    """Count the value-level annotations for a dataset (Lipstick cost).

    On the running example's five tweets this yields 35 (the superscripts
    of Tab. 1) where structural provenance needs 5 top-level identifiers.
    """
    total = 0
    for item in items:
        total += 1 + _count_value(item)  # the item itself plus its constants
    return total


class ValueAnnotationCapture:
    """Materialises per-value annotations for a dataset.

    ``annotations`` maps a fresh identifier to the ``(top-level index,
    value path)`` it labels -- the bookkeeping a Lipstick-style system has
    to propagate through every operator.
    """

    def __init__(self) -> None:
        self.annotations: dict[int, tuple[int, Path]] = {}
        self._next_id = 1

    def annotate(self, items: Iterable[DataItem]) -> int:
        """Annotate all values of all items; returns the annotation count."""
        for index, item in enumerate(items):
            self._annotate_item(index, item, Path())
        return len(self.annotations)

    def _annotate_item(self, index: int, item: DataItem, prefix: Path) -> None:
        if prefix.is_empty():
            self._assign(index, prefix)
        for name, value in item.pairs():
            self._annotate_value(index, value, prefix.child(name))

    def _annotate_value(self, index: int, value: Any, path: Path) -> None:
        if isinstance(value, DataItem):
            for name, inner in value.pairs():
                self._annotate_value(index, inner, path.child(name))
        elif isinstance(value, (Bag, NestedSet)):
            last = path.last()
            for pos, inner in enumerate(value, start=1):
                element_path = Path(path.parent().steps + (last.with_pos(pos),))
                self._annotate_value(index, inner, element_path)
        else:
            self._assign(index, path)

    def _assign(self, index: int, path: Path) -> None:
        self.annotations[self._next_id] = (index, path)
        self._next_id += 1

    def size_bytes(self) -> int:
        """Approximate storage for the annotation map.

        Each entry stores an id plus its path string -- this is the
        per-value space that structural provenance avoids by recording paths
        once per operator on a schema level.
        """
        return sum(
            _ID_BYTES + len(str(path)) for _, (_, path) in sorted(self.annotations.items())
        )

    def __len__(self) -> int:
        return len(self.annotations)
