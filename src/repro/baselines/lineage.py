"""Titian-style lineage baseline (paper Sec. 3.1, Sec. 7.3.4).

Titian, RAMP, and Newt trace which *top-level* input items contribute to
which output items -- nothing below the top level, no access/manipulation
information.  The baseline here reuses the captured id associations only
(what a lineage system would store) and backtraces pure identifier sets.

The crucial behavioural difference to structural provenance is at
aggregations: lineage returns **every** group member for a queried output
item, whereas structural provenance keeps only the members whose data is in
the queried subtree (Alg. 4's ``inProv`` filter).  On the running example
this is exactly the "millions of tweets mask the two relevant ones" problem
of Sec. 2.
"""

from __future__ import annotations

from repro.core.operator_provenance import (
    AggregationAssociations,
    BinaryAssociations,
    FlattenAssociations,
    OperatorProvenance,
    ReadAssociations,
    UnaryAssociations,
)
from repro.core.store import ProvenanceStore
from repro.engine.hooks import LineageCaptureHook
from repro.errors import BacktraceError

__all__ = ["LineageCaptureHook", "LineageQuerier", "SourceLineage"]


class SourceLineage:
    """The lineage (input identifier set) that reached one source."""

    __slots__ = ("oid", "name", "ids")

    def __init__(self, oid: int, name: str, ids: set[int]):
        self.oid = oid
        self.name = name
        self.ids = ids

    def __repr__(self) -> str:
        return f"SourceLineage({self.name!r}, {len(self.ids)} ids)"


class LineageQuerier:
    """Backtraces plain top-level lineage over a provenance store.

    Works over both structural and lineage-only captures, because it touches
    nothing but the id associations.
    """

    def __init__(self, store: ProvenanceStore):
        self._store = store

    def backtrace_ids(self, sink_oid: int, output_ids: set[int]) -> list[SourceLineage]:
        """Trace a set of output identifiers back to every source."""
        order = self._reverse_topological(sink_oid)
        frontier: dict[int, set[int]] = {sink_oid: set(output_ids)}
        results: list[SourceLineage] = []
        for oid in order:
            ids = frontier.pop(oid, set())
            provenance = self._store.get(oid)
            if isinstance(provenance.associations, ReadAssociations):
                results.append(SourceLineage(oid, self._store.source_name(oid), ids))
                continue
            for pred_oid, contribution in self._step(provenance, ids):
                frontier.setdefault(pred_oid, set()).update(contribution)
        results.sort(key=lambda source: source.oid)
        return results

    def _step(
        self, provenance: OperatorProvenance, ids: set[int]
    ) -> list[tuple[int, set[int]]]:
        associations = provenance.associations
        if isinstance(associations, UnaryAssociations):
            traced = {id_in for id_in, id_out in associations.records if id_out in ids}
            return [(self._pred(provenance, 0), traced)]
        if isinstance(associations, FlattenAssociations):
            traced = {id_in for id_in, _pos, id_out in associations.records if id_out in ids}
            return [(self._pred(provenance, 0), traced)]
        if isinstance(associations, AggregationAssociations):
            traced = set()
            for ids_in, id_out in associations.records:
                if id_out in ids:
                    traced.update(ids_in)
            return [(self._pred(provenance, 0), traced)]
        if isinstance(associations, BinaryAssociations):
            left = {
                id_in1
                for id_in1, _id_in2, id_out in associations.records
                if id_out in ids and id_in1 is not None
            }
            right = {
                id_in2
                for _id_in1, id_in2, id_out in associations.records
                if id_out in ids and id_in2 is not None
            }
            return [
                (self._pred(provenance, 0), left),
                (self._pred(provenance, 1), right),
            ]
        raise BacktraceError(
            f"cannot trace lineage through operator type {provenance.op_type!r}"
        )

    def _pred(self, provenance: OperatorProvenance, index: int) -> int:
        predecessor = provenance.input(index).predecessor
        if predecessor is None:
            raise BacktraceError("non-source operator without predecessor reference")
        return predecessor

    def _reverse_topological(self, sink_oid: int) -> list[int]:
        reachable: set[int] = set()
        stack = [sink_oid]
        predecessors: dict[int, list[int]] = {}
        while stack:
            oid = stack.pop()
            if oid in reachable:
                continue
            reachable.add(oid)
            preds = [
                input_ref.predecessor
                for input_ref in self._store.get(oid).inputs
                if input_ref.predecessor is not None
            ]
            predecessors[oid] = preds
            stack.extend(preds)
        successor_count = {oid: 0 for oid in reachable}
        for preds in predecessors.values():
            for pred in preds:
                successor_count[pred] += 1
        ready = sorted(oid for oid, cnt in successor_count.items() if cnt == 0)
        order: list[int] = []
        while ready:
            oid = ready.pop(0)
            order.append(oid)
            for pred in predecessors.get(oid, ()):
                successor_count[pred] -= 1
                if successor_count[pred] == 0:
                    ready.append(pred)
        if len(order) != len(reachable):
            raise BacktraceError("captured operator graph contains a cycle")
        return order
