"""PROVision-style fully lazy provenance querying (paper Secs. 3.1, 7.3.3).

PROVision captures nothing while the pipeline runs; when a provenance
question arrives, it re-derives provenance by re-processing the pipeline --
and it has to trace the result back **for each input dataset
independently**.  The paper's Fig. 9 compares this lazy approach against
Pebble's holistic eager capture + backtrace and finds eager querying 4-7x
faster on multi-input, deep pipelines because the lazy re-runs add up per
input.

:class:`LazyProvenanceQuerier` reproduces that cost model faithfully: a
query triggers one capture-enabled re-execution *per read operator in the
plan*, each followed by a tree-pattern match and a backtrace of which only
the one source's provenance is kept.
"""

from __future__ import annotations

from repro.core.backtrace.algorithms import Backtracer
from repro.core.backtrace.result import ProvenanceResult, SourceResult, ProvenanceEntry
from repro.core.treepattern.matcher import match_partitions, seed_structure
from repro.core.treepattern.pattern import TreePattern
from repro.engine.dataset import Dataset
from repro.engine.plan import ReadNode
from repro.pebble.query import as_pattern

__all__ = ["LazyProvenanceQuerier"]


class LazyProvenanceQuerier:
    """Answers provenance questions without any eagerly captured provenance."""

    def __init__(self, dataset: Dataset):
        self._dataset = dataset

    def source_count(self) -> int:
        """Number of input datasets (= number of lazy re-executions)."""
        return sum(1 for node in self._dataset.plan.walk() if isinstance(node, ReadNode))

    def query(self, pattern: TreePattern | str) -> ProvenanceResult:
        """Re-run the pipeline per input dataset and assemble the provenance.

        Each re-execution captures provenance from scratch (that is the
        lazy cost), matches the pattern on the fresh result, and backtraces;
        only the provenance of the re-execution's designated source is kept,
        mirroring PROVision's per-input tracing.
        """
        tree_pattern = as_pattern(pattern)
        read_oids = [
            node.oid for node in self._dataset.plan.walk() if isinstance(node, ReadNode)
        ]
        sources: list[SourceResult] = []
        matched_ids: list[int] = []
        for target_oid in read_oids:
            execution = self._dataset.execute(capture=True)
            assert execution.store is not None
            matches = match_partitions(tree_pattern, execution.partitions)
            seeds = seed_structure(matches)
            raw = Backtracer(execution.store).backtrace(execution.root.oid, seeds)
            matched_ids = sorted(
                match.item_id for match in matches if match.item_id is not None
            )
            for source in raw:
                if source.oid != target_oid:
                    continue
                entries = [
                    ProvenanceEntry(
                        item_id, execution.store.source_item(source.oid, item_id), tree
                    )
                    for item_id, tree in source.structure.items()
                ]
                entries.sort(key=lambda entry: entry.item_id)
                sources.append(SourceResult(source.oid, source.name, entries))
        sources.sort(key=lambda source: source.oid)
        return ProvenanceResult(sources, matched_ids)
