"""Baselines the paper compares against: Titian, PROVision, Lipstick."""

from repro.baselines.annotations import ValueAnnotationCapture, count_annotations
from repro.baselines.lazy import LazyProvenanceQuerier
from repro.baselines.lineage import LineageQuerier, SourceLineage

__all__ = [
    "ValueAnnotationCapture",
    "count_annotations",
    "LazyProvenanceQuerier",
    "LineageQuerier",
    "SourceLineage",
]
