"""Measurement harness for the paper's evaluation (Sec. 7.3).

Provides one measurement function per experiment family:

* :func:`measure_capture_overhead` -- runtime with vs. without capture
  (Figs. 6 and 7),
* :func:`measure_provenance_size` -- lineage vs. structural bytes (Fig. 8),
* :func:`measure_query_times` -- eager (holistic) vs. lazy (PROVision-style)
  provenance query runtime (Fig. 9),
* :func:`measure_titian_comparison` -- flat-workload overhead of a
  lineage-only capture vs. the structural capture (Sec. 7.3.4),
* :func:`measure_operator_overhead` -- per-operator capture overhead
  (discussed without graphs in Sec. 7.3.1).

Runs are repeated and averaged; data generation is excluded from every
timing (the generators memoise per scale, mirroring data already on disk).
"""

from __future__ import annotations

import gc
import statistics
import time
from typing import Callable, Sequence

from repro.baselines.lazy import LazyProvenanceQuerier
from repro.engine.config import EngineConfig
from repro.engine.dataset import Dataset
from repro.engine.executor import Executor
from repro.engine.hooks import LineageCaptureHook, StructuralCaptureHook
from repro.engine.expressions import col
from repro.engine.session import Session
from repro.obs.tracer import Tracer, tracing
from repro.pebble.query import query_provenance
from repro.workloads.dblp import DblpConfig, generate_dblp
from repro.workloads.scenarios import load_workload, scenario

__all__ = [
    "ABLATION_CONFIGS",
    "AblationMeasurement",
    "CaptureMeasurement",
    "SizeMeasurement",
    "QueryMeasurement",
    "StreamMeasurement",
    "TitianMeasurement",
    "OperatorMeasurement",
    "measure_capture_overhead",
    "measure_optimizer_ablation",
    "measure_provenance_size",
    "measure_query_times",
    "measure_stream",
    "measure_titian_comparison",
    "measure_operator_overhead",
]


def _sample(fn: Callable[[], object]) -> float:
    """Time one run of *fn* with the garbage collector paused."""
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()


def _timed(fn: Callable[[], object], repeats: int, warmup: int = 1) -> tuple[float, float]:
    """Run *fn* ``warmup + repeats`` times; return (median, stdev) seconds."""
    for _ in range(warmup):
        fn()
    samples = [_sample(fn) for _ in range(repeats)]
    median = statistics.median(samples)
    stdev = statistics.stdev(samples) if len(samples) > 1 else 0.0
    return median, stdev


def _timed_pair(
    fn_a: Callable[[], object],
    fn_b: Callable[[], object],
    repeats: int,
    warmup: int = 1,
) -> tuple[tuple[float, float], tuple[float, float]]:
    """Time two functions with interleaved runs (robust A/B comparison).

    Alternating the runs spreads slow drifts (allocator state, CPU
    frequency) evenly over both sides; medians damp outliers.
    """
    for _ in range(warmup):
        fn_a()
        fn_b()
    samples_a = []
    samples_b = []
    for _ in range(repeats):
        samples_a.append(_sample(fn_a))
        samples_b.append(_sample(fn_b))

    def summarise(samples: list[float]) -> tuple[float, float]:
        median = statistics.median(samples)
        stdev = statistics.stdev(samples) if len(samples) > 1 else 0.0
        return median, stdev

    # Report B relative to A via the median of per-pair deltas: pairing
    # cancels drift that hits both sides of one iteration equally.
    median_a, stdev_a = summarise(samples_a)
    delta = statistics.median(b - a for a, b in zip(samples_a, samples_b))
    _, stdev_b = summarise(samples_b)
    return (median_a, stdev_a), (median_a + delta, stdev_b)


class CaptureMeasurement:
    """One bar of Figs. 6/7: plain vs. capture runtime for a scenario."""

    __slots__ = (
        "scenario",
        "scale",
        "plain_seconds",
        "plain_stdev",
        "capture_seconds",
        "capture_stdev",
        "result_rows",
    )

    def __init__(
        self,
        scenario_name: str,
        scale: float,
        plain: tuple[float, float],
        capture: tuple[float, float],
        result_rows: int,
    ):
        self.scenario = scenario_name
        self.scale = scale
        self.plain_seconds, self.plain_stdev = plain
        self.capture_seconds, self.capture_stdev = capture
        self.result_rows = result_rows

    @property
    def overhead_pct(self) -> float:
        """Relative capture overhead (the percentages atop the bars)."""
        if self.plain_seconds == 0:
            return 0.0
        return 100.0 * (self.capture_seconds - self.plain_seconds) / self.plain_seconds

    def __repr__(self) -> str:
        return (
            f"CaptureMeasurement({self.scenario}@{self.scale}x: "
            f"{self.plain_seconds:.3f}s -> {self.capture_seconds:.3f}s, "
            f"+{self.overhead_pct:.0f}%)"
        )


def measure_capture_overhead(
    names: Sequence[str],
    scales: Sequence[float] = (1.0,),
    repeats: int = 3,
    num_partitions: int = 4,
) -> list[CaptureMeasurement]:
    """Figs. 6/7: capture overhead per scenario per scale."""
    measurements = []
    for scale in scales:
        for name in names:
            spec = scenario(name)
            data = load_workload(spec.kind, scale)

            def run_plain() -> None:
                spec.build(Session(num_partitions=num_partitions), data).execute(capture=False)

            def run_capture() -> None:
                execution = spec.build(
                    Session(num_partitions=num_partitions), data
                ).execute(capture=True)
                assert execution.store is not None
                # Eager capture includes persisting the pebbles (Sec. 5.1).
                execution.store.serialize()

            rows = len(spec.build(Session(num_partitions=num_partitions), data).execute())
            plain, capture = _timed_pair(run_plain, run_capture, repeats)
            measurements.append(CaptureMeasurement(name, scale, plain, capture, rows))
    return measurements


class SizeMeasurement:
    """One bar of Fig. 8: lineage vs. structural provenance bytes."""

    __slots__ = ("scenario", "scale", "lineage_bytes", "structural_bytes", "records")

    def __init__(
        self, scenario_name: str, scale: float, lineage_bytes: int, structural_bytes: int, records: int
    ):
        self.scenario = scenario_name
        self.scale = scale
        self.lineage_bytes = lineage_bytes
        #: The *extra* bytes structural provenance adds on top of lineage.
        self.structural_bytes = structural_bytes
        self.records = records

    @property
    def total_bytes(self) -> int:
        return self.lineage_bytes + self.structural_bytes

    def __repr__(self) -> str:
        return (
            f"SizeMeasurement({self.scenario}@{self.scale}x: "
            f"lineage={self.lineage_bytes}B +structural={self.structural_bytes}B)"
        )


def measure_provenance_size(
    names: Sequence[str], scale: float = 1.0, num_partitions: int = 4
) -> list[SizeMeasurement]:
    """Fig. 8: size of the captured provenance, split lineage/structural."""
    measurements = []
    for name in names:
        spec = scenario(name)
        data = load_workload(spec.kind, scale)
        execution = spec.build(Session(num_partitions=num_partitions), data).execute(capture=True)
        assert execution.store is not None
        report = execution.store.size_report()
        measurements.append(
            SizeMeasurement(
                name, scale, report.lineage_bytes, report.structural_bytes, report.association_count
            )
        )
    return measurements


class QueryMeasurement:
    """One scenario of Fig. 9: eager vs. lazy provenance query runtime.

    ``warehouse_seconds`` adds the third mode: cold backtracing straight
    from the on-disk warehouse segments, together with the segment-cache
    behaviour of that query (decoded segment count and hit rate).
    """

    __slots__ = (
        "scenario",
        "scale",
        "eager_seconds",
        "lazy_seconds",
        "source_count",
        "warehouse_seconds",
        "cache_hit_rate",
        "segments_decoded",
        "cache",
    )

    def __init__(
        self,
        scenario_name: str,
        scale: float,
        eager_seconds: float,
        lazy_seconds: float,
        source_count: int,
        warehouse_seconds: float | None = None,
        cache_hit_rate: float | None = None,
        segments_decoded: int | None = None,
        cache: dict | None = None,
    ):
        self.scenario = scenario_name
        self.scale = scale
        self.eager_seconds = eager_seconds
        self.lazy_seconds = lazy_seconds
        self.source_count = source_count
        self.warehouse_seconds = warehouse_seconds
        self.cache_hit_rate = cache_hit_rate
        self.segments_decoded = segments_decoded
        #: Full segment-cache accounting of the warehouse query, as JSON.
        self.cache = cache

    @property
    def speedup(self) -> float:
        """How much faster the eager (holistic) approach answers the query."""
        if self.eager_seconds == 0:
            return float("inf")
        return self.lazy_seconds / self.eager_seconds

    def __repr__(self) -> str:
        return (
            f"QueryMeasurement({self.scenario}@{self.scale}x: eager={self.eager_seconds:.3f}s "
            f"lazy={self.lazy_seconds:.3f}s, x{self.speedup:.1f})"
        )


def measure_query_times(
    names: Sequence[str],
    scale: float = 1.0,
    repeats: int = 3,
    num_partitions: int = 4,
) -> list[QueryMeasurement]:
    """Fig. 9: eager (capture already paid) vs. lazy (re-run per input),
    plus cold warehouse backtracing from segments on disk."""
    import tempfile

    from repro.warehouse import Warehouse

    measurements = []
    for name in names:
        spec = scenario(name)
        data = load_workload(spec.kind, scale)
        captured = spec.build(Session(num_partitions=num_partitions), data).execute(capture=True)

        def run_eager() -> None:
            query_provenance(captured, spec.pattern)

        lazy_dataset = spec.build(Session(num_partitions=num_partitions), data)
        querier = LazyProvenanceQuerier(lazy_dataset)

        def run_lazy() -> None:
            querier.query(spec.pattern)

        eager_seconds, _ = _timed(run_eager, repeats)
        lazy_seconds, _ = _timed(run_lazy, repeats, warmup=0)

        with tempfile.TemporaryDirectory(prefix="pebble-wh-") as tmp:
            warehouse = Warehouse.open(tmp)
            record = warehouse.record(captured, name=name)
            last_metrics = None

            def run_warehouse() -> None:
                # Fresh load per query: every segment decode pays the
                # disk + decode cost (cold cache), matching the "query a
                # run recorded days ago" scenario.
                nonlocal last_metrics
                _, last_metrics = warehouse.backtrace(
                    record.run_id, spec.pattern, num_partitions=num_partitions
                )

            warehouse_seconds, _ = _timed(run_warehouse, repeats)
            assert last_metrics is not None
            measurements.append(
                QueryMeasurement(
                    name,
                    scale,
                    eager_seconds,
                    lazy_seconds,
                    querier.source_count(),
                    warehouse_seconds=warehouse_seconds,
                    cache_hit_rate=last_metrics.hit_rate,
                    segments_decoded=last_metrics.misses,
                    cache=last_metrics.to_json(),
                )
            )
    return measurements


class TitianMeasurement:
    """The Sec. 7.3.4 comparison on a flat workload."""

    __slots__ = (
        "plain_seconds",
        "titian_seconds",
        "pebble_seconds",
    )

    def __init__(self, plain_seconds: float, titian_seconds: float, pebble_seconds: float):
        self.plain_seconds = plain_seconds
        self.titian_seconds = titian_seconds
        self.pebble_seconds = pebble_seconds

    @property
    def titian_overhead_pct(self) -> float:
        return 100.0 * (self.titian_seconds - self.plain_seconds) / self.plain_seconds

    @property
    def pebble_overhead_pct(self) -> float:
        return 100.0 * (self.pebble_seconds - self.plain_seconds) / self.plain_seconds

    def __repr__(self) -> str:
        return (
            f"TitianMeasurement(titian=+{self.titian_overhead_pct:.2f}%, "
            f"pebble=+{self.pebble_overhead_pct:.2f}%)"
        )


def _flat_dblp_lines(scale: float) -> tuple[list[dict[str, str]], list[dict[str, str]]]:
    """Flat string records from DBLP, as in the Sec. 7.3.4 test program."""
    data = generate_dblp(DblpConfig(scale=scale))
    articles = [
        {"line": f"{record['key']}|{record['title']}|{record['year']}"}
        for record in data["articles"]
    ]
    inproceedings = [
        {"line": f"{record['key']}|{record['title']}|{record['year']}"}
        for record in data["inproceedings"]
    ]
    return articles, inproceedings


def measure_titian_comparison(
    scale: float = 1.0, repeats: int = 5, num_partitions: int = 2
) -> TitianMeasurement:
    """Sec. 7.3.4: filter '2015' lines of articles/inproceedings, then union.

    The Titian stand-in captures only id associations (lineage-only mode);
    Pebble captures full structural provenance.  Both are compared against
    the plain run on the same flat string records.
    """
    articles, inproceedings = _flat_dblp_lines(scale)

    def build(session: Session) -> Dataset:
        left = session.create_dataset(articles, "articles").filter(col("line").contains("2015"))
        right = session.create_dataset(inproceedings, "inproceedings").filter(
            col("line").contains("2015")
        )
        return left.union(right)

    def run_plain() -> None:
        plan = build(Session(num_partitions=num_partitions)).plan
        Executor(num_partitions).execute(plan)

    def run_titian() -> None:
        plan = build(Session(num_partitions=num_partitions)).plan
        Executor(num_partitions, hooks=[LineageCaptureHook()]).execute(plan)

    def run_pebble() -> None:
        plan = build(Session(num_partitions=num_partitions)).plan
        Executor(num_partitions, hooks=[StructuralCaptureHook()]).execute(plan)

    (titian_seconds, _), (pebble_seconds, _) = _timed_pair(run_titian, run_pebble, repeats)
    plain_seconds, _ = _timed(run_plain, repeats)
    return TitianMeasurement(plain_seconds, titian_seconds, pebble_seconds)


#: The optimizer ablation ladder: no rewrites at all (the seed layout),
#: projection pruning alone, then pruning plus operator fusion.  The
#: ``+trace`` rung repeats the full ladder with a live span tracer, pinning
#: the "tracing off costs nothing" claim: its delta against ``prune+fuse``
#: is the entire observability tax.  The ``+threads``/``+procs`` rungs swap
#: in the pool schedulers over the same optimized plan: their deltas against
#: ``prune+fuse`` isolate what concurrent stage execution buys (or costs) --
#: threads are GIL-bound on capture's pure-Python work, processes scale the
#: capture phase with cores at the price of pickling partitions across the
#: pool boundary.  The ``+cols`` rungs repeat the rewrite/scheduler rungs
#: under the columnar partition layout (batch kernels, raw-buffer pickling);
#: each ``+cols`` rung against its rows twin isolates what the layout buys
#: per backend.  Every rung pins its layout explicitly so the ladder is
#: insensitive to the engine default and ``REPRO_LAYOUT``.
ABLATION_CONFIGS: tuple[tuple[str, EngineConfig], ...] = (
    ("no-opt", EngineConfig(optimize=False, layout="rows")),
    ("prune", EngineConfig(rules=("prune",), layout="rows")),
    ("prune+fuse", EngineConfig(rules=("prune", "fuse"), layout="rows")),
    ("prune+fuse+trace", EngineConfig(rules=("prune", "fuse"), layout="rows")),
    (
        "prune+fuse+threads",
        EngineConfig(rules=("prune", "fuse"), scheduler="threads", layout="rows"),
    ),
    (
        "prune+fuse+procs",
        EngineConfig(rules=("prune", "fuse"), scheduler="processes", layout="rows"),
    ),
    ("prune+fuse+cols", EngineConfig(rules=("prune", "fuse"), layout="columnar")),
    (
        "prune+fuse+threads+cols",
        EngineConfig(rules=("prune", "fuse"), scheduler="threads", layout="columnar"),
    ),
    (
        "prune+fuse+procs+cols",
        EngineConfig(rules=("prune", "fuse"), scheduler="processes", layout="columnar"),
    ),
    # The profiler pair mirrors the +trace rung for the sampling profiler:
    # prof-off is byte-identical config with profile explicitly False, so
    # its delta against the profile rung is the whole sampling tax -- and
    # its delta against prune+fuse+cols pins "profiler off costs nothing".
    (
        "prune+fuse+cols+prof-off",
        EngineConfig(rules=("prune", "fuse"), layout="columnar", profile=False),
    ),
    (
        "prune+fuse+cols+profile",
        EngineConfig(rules=("prune", "fuse"), layout="columnar", profile=True),
    ),
)


class AblationMeasurement:
    """Capture-on runtime of one scenario under one optimizer configuration."""

    __slots__ = ("scenario", "scale", "config_name", "seconds", "stdev", "rules_fired")

    def __init__(
        self,
        scenario_name: str,
        scale: float,
        config_name: str,
        seconds: float,
        stdev: float,
        rules_fired: tuple[str, ...],
    ):
        self.scenario = scenario_name
        self.scale = scale
        self.config_name = config_name
        self.seconds = seconds
        self.stdev = stdev
        self.rules_fired = rules_fired

    def __repr__(self) -> str:
        return (
            f"AblationMeasurement({self.scenario}@{self.scale}x "
            f"{self.config_name}: {self.seconds:.3f}s)"
        )


def measure_optimizer_ablation(
    names: Sequence[str],
    scale: float = 1.0,
    repeats: int = 3,
    num_partitions: int | None = None,
) -> list[AblationMeasurement]:
    """Capture-on runtime under the optimizer ablation ladder.

    Runs every scenario with structural capture enabled under each
    :data:`ABLATION_CONFIGS` entry.  Captured stores are identical across the
    ladder by construction (pruning/fusion are fidelity-preserving), so the
    deltas isolate how much captured work the rewrites save.
    """
    measurements: list[AblationMeasurement] = []
    for name in names:
        spec = scenario(name)
        data = load_workload(spec.kind, scale)
        for config_name, config in ABLATION_CONFIGS:
            session_config = config.with_partitions(num_partitions)
            traced = config_name.endswith("+trace")

            def run_capture() -> None:
                dataset = spec.build(Session(config=session_config), data)
                if traced:
                    # A fresh tracer per run: span recording is part of the
                    # measured cost, unbounded accumulation is not.
                    with tracing(Tracer()):
                        execution = dataset.execute(capture=True)
                else:
                    execution = dataset.execute(capture=True)
                assert execution.store is not None
                execution.store.serialize()

            probe = spec.build(Session(config=session_config), data).execute(capture=True)
            rules = probe.physical.report.rules_fired() if probe.physical else ()
            seconds, stdev = _timed(run_capture, repeats)
            measurements.append(
                AblationMeasurement(name, scale, config_name, seconds, stdev, rules)
            )
    return measurements


class OperatorMeasurement:
    """Per-operator capture overhead (Sec. 7.3.1, no graph in the paper)."""

    __slots__ = ("operator", "plain_seconds", "capture_seconds")

    def __init__(self, operator: str, plain_seconds: float, capture_seconds: float):
        self.operator = operator
        self.plain_seconds = plain_seconds
        self.capture_seconds = capture_seconds

    @property
    def overhead_pct(self) -> float:
        if self.plain_seconds == 0:
            return 0.0
        return 100.0 * (self.capture_seconds - self.plain_seconds) / self.plain_seconds

    def __repr__(self) -> str:
        return f"OperatorMeasurement({self.operator}: +{self.overhead_pct:.0f}%)"


def measure_operator_overhead(
    scale: float = 1.0, repeats: int = 3, num_partitions: int = 4
) -> list[OperatorMeasurement]:
    """Single-operator micro-pipelines over the Twitter corpus.

    Reproduces the per-operator observations of Sec. 7.3.1: constant
    annotation overhead for filter/select/union/join/flatten, markedly
    higher relative overhead for aggregations (which store one id per group
    member).
    """
    from repro.engine.expressions import collect_list

    tweets = load_workload("twitter", scale)

    def pipeline(kind: str) -> Callable[[Session], Dataset]:
        def build(session: Session) -> Dataset:
            base = session.create_dataset(tweets, "tweets.json")
            if kind == "filter":
                return base.filter(col("retweet_count") == 0)
            if kind == "select":
                return base.select(col("text"), col("user.id_str"), col("user.name"))
            if kind == "flatten":
                return base.flatten("user_mentions", "m_user")
            if kind == "union":
                other = session.create_dataset(tweets, "tweets.json")
                return base.union(other)
            if kind == "join":
                users = session.create_dataset(
                    [{"join_id": tweet["user"]["id_str"]} for tweet in tweets[:50]], "users"
                )
                return base.join(users, col("user.id_str") == col("join_id"))
            if kind == "aggregate":
                return base.group_by(col("user.id_str")).agg(
                    collect_list(col("text")).alias("texts")
                )
            raise ValueError(kind)

        return build

    measurements = []
    for kind in ("filter", "select", "flatten", "union", "join", "aggregate"):
        build = pipeline(kind)

        def run_plain() -> None:
            build(Session(num_partitions=num_partitions)).execute(capture=False)

        def run_capture() -> None:
            build(Session(num_partitions=num_partitions)).execute(capture=True)

        (plain_seconds, _), (capture_seconds, _) = _timed_pair(run_plain, run_capture, repeats)
        measurements.append(OperatorMeasurement(kind, plain_seconds, capture_seconds))
    return measurements


class StreamMeasurement:
    """One row of `bench stream`: a mode of the S1 micro-batch workload.

    ``mode`` identifies the series in the bench history: ``batch`` is the
    one-shot captured execution over all rows, ``stream`` the end-to-end
    micro-batch ingest (capture + per-epoch append), and
    ``query-during-ingest`` the latency of a backtrace admitted while the
    run is still live.
    """

    __slots__ = ("scenario", "scale", "mode", "batches", "rows", "seconds", "stdev")

    def __init__(
        self,
        scenario_name: str,
        scale: float,
        mode: str,
        batches: int,
        rows: int,
        seconds: float,
        stdev: float,
    ):
        self.scenario = scenario_name
        self.scale = scale
        self.mode = mode
        self.batches = batches
        self.rows = rows
        self.seconds = seconds
        self.stdev = stdev

    def __repr__(self) -> str:
        return (
            f"StreamMeasurement({self.scenario}@{self.scale}x {self.mode}: "
            f"{self.seconds:.3f}s over {self.batches} batch(es))"
        )


def measure_stream(
    scale: float = 1.0,
    repeats: int = 3,
    batches: int = 4,
    num_partitions: int = 4,
    name: str = "S1",
) -> list[StreamMeasurement]:
    """Micro-batch capture overhead and query-during-ingest latency (S1).

    Streams the scenario's workload through a :class:`StreamSession` in
    *batches* micro-batches against a throwaway warehouse, timing the whole
    ingest (capture, per-epoch append, per-epoch index).  The one-shot batch
    execution over the same rows is the baseline; a mid-ingest backtrace
    (admitted after the first micro-batch) measures how much a query pays
    for running against a growing run.
    """
    import shutil
    import tempfile

    from repro.stream import StreamSession
    from repro.warehouse import Warehouse

    spec = scenario(name)
    data = load_workload(spec.kind, scale)
    rows = len(data)
    split = max(1, rows // batches)
    chunks = [data[low:low + split] for low in range(0, rows, split)]

    def run_batch() -> None:
        spec.build(Session(num_partitions=num_partitions), data).execute(capture=True)

    stream_samples: list[float] = []
    query_samples: list[float] = []
    for _ in range(repeats + 1):  # first iteration is the warmup
        root = tempfile.mkdtemp(prefix="repro-bench-stream-")
        try:
            session = StreamSession(
                warehouse=root, name="bench", num_partitions=num_partitions
            )
            dataset = spec.build(
                session.session, session.dataset(session.source("tweets.json"))
            )
            ingest_wall = 0.0
            start = time.perf_counter()
            record = session.open(dataset)
            session.ingest(chunks[0])
            ingest_wall += time.perf_counter() - start
            # The mid-ingest probe runs while the run is live, against the
            # epochs visible at admission; its wall time is kept out of the
            # ingest measurement.
            warehouse = Warehouse.open(root)
            start = time.perf_counter()
            warehouse.backtrace(record.run_id, spec.pattern)
            query_samples.append(time.perf_counter() - start)
            start = time.perf_counter()
            for chunk in chunks[1:]:
                session.ingest(chunk)
            session.finish(compact=False)
            ingest_wall += time.perf_counter() - start
            stream_samples.append(ingest_wall)
        finally:
            shutil.rmtree(root, ignore_errors=True)
    stream_samples, query_samples = stream_samples[1:], query_samples[1:]

    batch_seconds, batch_stdev = _timed(run_batch, repeats)

    def summarise(samples: list[float]) -> tuple[float, float]:
        median = statistics.median(samples)
        stdev = statistics.stdev(samples) if len(samples) > 1 else 0.0
        return median, stdev

    stream_seconds, stream_stdev = summarise(stream_samples)
    query_seconds, query_stdev = summarise(query_samples)
    count = len(chunks)
    return [
        StreamMeasurement(name, scale, "batch", 1, rows, batch_seconds, batch_stdev),
        StreamMeasurement(
            name, scale, "stream", count, rows, stream_seconds, stream_stdev
        ),
        StreamMeasurement(
            name, scale, "query-during-ingest", count, rows,
            query_seconds, query_stdev,
        ),
    ]
