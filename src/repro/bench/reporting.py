"""Text rendering of the reproduced tables and figures.

Every figure of the paper's evaluation has a renderer that prints the same
rows/series the paper reports (scenario, scale, runtime bars, overhead
percentages, provenance sizes, eager/lazy query times), so a benchmark run
produces a directly comparable textual artefact.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import (
    AblationMeasurement,
    CaptureMeasurement,
    OperatorMeasurement,
    QueryMeasurement,
    SizeMeasurement,
    StreamMeasurement,
    TitianMeasurement,
)

__all__ = [
    "format_table",
    "render_capture_overhead",
    "render_optimizer_ablation",
    "render_provenance_sizes",
    "render_query_times",
    "render_stream",
    "render_titian_comparison",
    "render_operator_overhead",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Align *rows* under *headers* (simple fixed-width text table)."""
    table = [list(headers)] + [list(row) for row in rows]
    widths = [max(len(row[column]) for row in table) for column in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt_bytes(count: int) -> str:
    if count >= 1_000_000:
        return f"{count / 1_000_000:.2f}MB"
    if count >= 1_000:
        return f"{count / 1_000:.1f}kB"
    return f"{count}B"


def render_capture_overhead(measurements: list[CaptureMeasurement], title: str) -> str:
    """Figs. 6/7: one row per scenario x scale with the overhead percentage."""
    rows = [
        (
            measurement.scenario,
            f"{measurement.scale:g}x",
            f"{measurement.plain_seconds * 1000:.1f}",
            f"{measurement.capture_seconds * 1000:.1f}",
            f"{measurement.overhead_pct:+.0f}%",
            str(measurement.result_rows),
        )
        for measurement in measurements
    ]
    table = format_table(
        ("scenario", "scale", "plain ms", "capture ms", "overhead", "rows"), rows
    )
    return f"{title}\n{table}"


def render_provenance_sizes(measurements: list[SizeMeasurement], title: str) -> str:
    """Fig. 8: lineage vs. additional structural bytes per scenario."""
    rows = [
        (
            measurement.scenario,
            _fmt_bytes(measurement.lineage_bytes),
            _fmt_bytes(measurement.structural_bytes),
            _fmt_bytes(measurement.total_bytes),
            str(measurement.records),
        )
        for measurement in measurements
    ]
    table = format_table(
        ("scenario", "lineage", "+structural", "total", "records"), rows
    )
    return f"{title}\n{table}"


def render_query_times(measurements: list[QueryMeasurement], title: str) -> str:
    """Fig. 9: eager vs. lazy query runtime and the eager speed-up factor.

    When the measurements carry warehouse numbers, two more columns report
    the cold on-disk query latency and its segment-cache hit rate.
    """
    with_warehouse = any(m.warehouse_seconds is not None for m in measurements)
    rows = []
    for measurement in measurements:
        row = [
            measurement.scenario,
            f"{measurement.eager_seconds * 1000:.1f}",
            f"{measurement.lazy_seconds * 1000:.1f}",
            f"x{measurement.speedup:.1f}",
            str(measurement.source_count),
        ]
        if with_warehouse:
            if measurement.warehouse_seconds is None:
                row += ["-", "-"]
            else:
                hit_rate = measurement.cache_hit_rate or 0.0
                row += [
                    f"{measurement.warehouse_seconds * 1000:.1f}",
                    f"{hit_rate:.2f}",
                ]
        rows.append(tuple(row))
    headers = ["scenario", "eager ms", "lazy ms", "speedup", "inputs"]
    if with_warehouse:
        headers += ["warehouse ms", "cache hit"]
    table = format_table(tuple(headers), rows)
    return f"{title}\n{table}"


def render_titian_comparison(measurement: TitianMeasurement) -> str:
    """Sec. 7.3.4: overhead of the lineage-only vs. structural capture."""
    rows = [
        ("plain", f"{measurement.plain_seconds * 1000:.1f}", "-"),
        (
            "Titian (lineage-only)",
            f"{measurement.titian_seconds * 1000:.1f}",
            f"{measurement.titian_overhead_pct:+.2f}%",
        ),
        (
            "Pebble (structural)",
            f"{measurement.pebble_seconds * 1000:.1f}",
            f"{measurement.pebble_overhead_pct:+.2f}%",
        ),
    ]
    table = format_table(("system", "runtime ms", "overhead"), rows)
    return f"Sec. 7.3.4 -- flat-workload comparison with Titian\n{table}"


def render_optimizer_ablation(measurements: list[AblationMeasurement]) -> str:
    """Optimizer ablation ladder: capture-on runtime per rewrite configuration."""
    baselines = {
        (measurement.scenario, measurement.scale): measurement.seconds
        for measurement in measurements
        if measurement.config_name == "no-opt"
    }
    rows = []
    for measurement in measurements:
        baseline = baselines.get((measurement.scenario, measurement.scale))
        if measurement.config_name == "no-opt" or not baseline:
            delta = "-"
        else:
            delta = f"{(measurement.seconds - baseline) / baseline * 100:+.1f}%"
        rows.append(
            (
                measurement.scenario,
                f"{measurement.scale:g}x",
                measurement.config_name,
                f"{measurement.seconds * 1000:.1f}",
                f"{measurement.stdev * 1000:.1f}",
                ",".join(measurement.rules_fired) or "-",
                delta,
            )
        )
    table = format_table(
        ("scenario", "scale", "config", "capture ms", "stdev ms", "rules fired", "vs no-opt"),
        rows,
    )
    return f"Optimizer ablation -- capture-on runtime per rewrite configuration\n{table}"


def render_operator_overhead(measurements: list[OperatorMeasurement]) -> str:
    """Sec. 7.3.1: per-operator capture overhead (no graph in the paper)."""
    rows = [
        (
            measurement.operator,
            f"{measurement.plain_seconds * 1000:.1f}",
            f"{measurement.capture_seconds * 1000:.1f}",
            f"{measurement.overhead_pct:+.0f}%",
        )
        for measurement in measurements
    ]
    table = format_table(("operator", "plain ms", "capture ms", "overhead"), rows)
    return f"Sec. 7.3.1 -- per-operator capture overhead\n{table}"


def render_stream(measurements: list[StreamMeasurement]) -> str:
    """`bench stream`: one-shot batch vs micro-batch ingest vs live query."""
    rows = [
        (
            measurement.scenario,
            f"{measurement.scale:g}x",
            measurement.mode,
            str(measurement.batches),
            str(measurement.rows),
            f"{measurement.seconds * 1000:.1f}",
            f"{measurement.stdev * 1000:.1f}",
        )
        for measurement in measurements
    ]
    table = format_table(
        ("scenario", "scale", "mode", "batches", "rows", "ms", "stdev"), rows
    )
    return f"Streaming capture -- micro-batch ingest vs one-shot batch\n{table}\n"
