"""Benchmark harness reproducing the paper's evaluation (Sec. 7.3)."""

from repro.bench.harness import (
    CaptureMeasurement,
    OperatorMeasurement,
    QueryMeasurement,
    SizeMeasurement,
    TitianMeasurement,
    measure_capture_overhead,
    measure_operator_overhead,
    measure_provenance_size,
    measure_query_times,
    measure_titian_comparison,
)
from repro.bench.reporting import (
    format_table,
    render_capture_overhead,
    render_operator_overhead,
    render_provenance_sizes,
    render_query_times,
    render_titian_comparison,
)

__all__ = [
    "CaptureMeasurement",
    "OperatorMeasurement",
    "QueryMeasurement",
    "SizeMeasurement",
    "TitianMeasurement",
    "measure_capture_overhead",
    "measure_operator_overhead",
    "measure_provenance_size",
    "measure_query_times",
    "measure_titian_comparison",
    "format_table",
    "render_capture_overhead",
    "render_operator_overhead",
    "render_provenance_sizes",
    "render_query_times",
    "render_titian_comparison",
]
