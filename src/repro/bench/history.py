"""Bench history: append-only JSONL of measurements + regression detection.

Every ``repro bench`` run appends one record per measurement to
``benchmarks/history/history.jsonl`` (git sha, figure, scale, and the
measurement's own fields), so the repository accumulates a timeline of its
own performance.  ``tools/bench_regress.py`` reads that timeline and fails
when the latest measurement of any (figure, scenario, config) series is
more than ``threshold`` slower than the rolling baseline -- the median of
the previous ``window`` observations, which one noisy run cannot drag.

The file format is deliberately dumb: one JSON object per line, unknown
fields preserved, corrupt lines skipped on read.  ``REPRO_BENCH_HISTORY``
overrides the path (``off`` disables appending entirely, which keeps test
runs from touching the checked-in history).
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

__all__ = [
    "DEFAULT_HISTORY_PATH",
    "HISTORY_ENV",
    "append_history",
    "read_history",
    "detect_regressions",
    "render_regressions",
    "record_key",
    "metric_field",
    "git_sha",
]

DEFAULT_HISTORY_PATH = "benchmarks/history/history.jsonl"
HISTORY_ENV = "REPRO_BENCH_HISTORY"

#: Timing-like fields, in preference order; the first one a record carries
#: is the series' regression metric.  Bytes last: fig8 records no timings,
#: but a provenance-size blow-up is exactly as much of a regression.
METRIC_FIELDS = (
    "seconds",
    "capture_seconds",
    "lazy_seconds",
    "pebble_seconds",
    "warehouse_seconds",
    "structural_bytes",
)

#: Bookkeeping fields that never identify a series.
_META_FIELDS = ("ts", "ts_iso", "git_sha")


def git_sha() -> str:
    """The current commit's short sha, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5.0, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def resolve_history_path(path: str | None = None) -> str | None:
    """Pick the history file: explicit arg > environment > default.

    Returns ``None`` when ``REPRO_BENCH_HISTORY`` is set to ``off`` / ``0``
    / ``none`` (history disabled).
    """
    if path:
        return path
    env = os.environ.get(HISTORY_ENV, "").strip()
    if env.lower() in ("off", "0", "none", "false"):
        return None
    return env or DEFAULT_HISTORY_PATH


def append_history(
    figure: str,
    scale: float,
    measurements: list[dict[str, Any]],
    path: str | None = None,
    sha: str | None = None,
) -> str | None:
    """Append one JSONL record per measurement; returns the path written.

    Returns ``None`` without writing when history is disabled via the
    environment.  The directory is created on first use.
    """
    target = resolve_history_path(path)
    if target is None or not measurements:
        return target
    now = time.time()
    stamp = datetime.fromtimestamp(now, tz=timezone.utc).isoformat()
    sha = sha if sha is not None else git_sha()
    destination = Path(target)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with open(destination, "a", encoding="utf-8") as handle:
        for measurement in measurements:
            record = {
                "ts": now,
                "ts_iso": stamp,
                "git_sha": sha,
                "figure": figure,
                "scale": scale,
            }
            record.update(measurement)
            handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
    return str(destination)


def read_history(path: str) -> list[dict[str, Any]]:
    """Load the history records oldest-first; corrupt lines are skipped."""
    records: list[dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    parsed = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(parsed, dict):
                    records.append(parsed)
    except FileNotFoundError:
        return []
    return records


def record_key(record: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    """The series identity of a record: its stable, non-metric fields.

    Figure, scale, and every string-valued field (scenario, config_name,
    operator, ...) identify a series; timings and counters vary per run and
    do not.
    """
    parts: list[tuple[str, str]] = []
    for field in sorted(record):
        if field in _META_FIELDS or field in METRIC_FIELDS:
            continue
        value = record[field]
        if field in ("figure", "scale") or isinstance(value, str):
            parts.append((field, str(value)))
    return tuple(parts)


def metric_field(record: dict[str, Any]) -> str | None:
    """The field this record's series is judged on (first timing present)."""
    for field in METRIC_FIELDS:
        value = record.get(field)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return field
    return None


def detect_regressions(
    records: list[dict[str, Any]],
    threshold: float = 0.2,
    window: int = 5,
) -> list[dict[str, Any]]:
    """Compare each series' newest record against its rolling baseline.

    The baseline is the median of up to *window* observations preceding the
    newest one; a series with a single observation has nothing to compare.
    Returns one finding per series whose latest metric exceeds
    ``baseline * (1 + threshold)``.
    """
    series: dict[tuple, list[dict[str, Any]]] = {}
    for record in records:
        series.setdefault(record_key(record), []).append(record)
    findings: list[dict[str, Any]] = []
    for key, group in series.items():
        latest = group[-1]
        field = metric_field(latest)
        if field is None or len(group) < 2:
            continue
        previous = [
            rec[field]
            for rec in group[-(window + 1):-1]
            if isinstance(rec.get(field), (int, float))
            and not isinstance(rec.get(field), bool)
        ]
        if not previous:
            continue
        baseline = statistics.median(previous)
        current = latest[field]
        if baseline <= 0:
            continue
        ratio = current / baseline
        if ratio > 1.0 + threshold:
            findings.append({
                "series": dict(key),
                "metric": field,
                "baseline": baseline,
                "latest": current,
                "ratio": ratio,
                "samples": len(previous),
                "git_sha": latest.get("git_sha", "unknown"),
            })
    findings.sort(key=lambda f: f["ratio"], reverse=True)
    return findings


def render_regressions(findings: list[dict[str, Any]]) -> str:
    """Human-readable report, one line per regressed series."""
    if not findings:
        return "bench history: no regressions"
    lines = [f"bench history: {len(findings)} regression(s)"]
    for finding in findings:
        series = finding["series"]
        label = " ".join(
            f"{name}={value}" for name, value in sorted(series.items())
        )
        lines.append(
            f"  {label}: {finding['metric']} "
            f"{finding['latest']:.6g} vs baseline {finding['baseline']:.6g} "
            f"({(finding['ratio'] - 1) * 100:+.1f}%, "
            f"n={finding['samples']}, at {finding['git_sha']})"
        )
    return "\n".join(lines)
