"""Nested data model substrate (paper Sec. 4.1)."""

from repro.nested.values import Bag, DataItem, NestedSet, coerce_value, to_python
from repro.nested.types import (
    BagType,
    BOOLEAN,
    DataType,
    DOUBLE,
    INT,
    NULL,
    PrimitiveType,
    SetType,
    STRING,
    StructType,
    infer_type,
    unify,
)
from repro.nested.schema import Schema, infer_schema

__all__ = [
    "Bag",
    "DataItem",
    "NestedSet",
    "coerce_value",
    "to_python",
    "BagType",
    "BOOLEAN",
    "DataType",
    "DOUBLE",
    "INT",
    "NULL",
    "PrimitiveType",
    "SetType",
    "STRING",
    "StructType",
    "infer_type",
    "unify",
    "Schema",
    "infer_schema",
]
