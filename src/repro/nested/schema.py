"""Schemas of nested datasets and schema-level path enumeration.

The lightweight provenance capture (paper Sec. 5.1) records accessed and
manipulated paths *on a schema level*: once per operator, with ``[pos]``
placeholders instead of concrete positions.  This module wraps
:class:`~repro.nested.types.StructType` with the operations capture and
backtracing need:

* enumerate all schema-level paths (used to mark a whole input schema as
  manipulated when backtracing a ``map``),
* resolve the type a path points at,
* check whether a path is valid for the schema.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import PathEvaluationError, TypeInferenceError
from repro.core.paths import POS, Path
from repro.nested.types import (
    BagType,
    DataType,
    NULL,
    SetType,
    StructType,
    infer_type,
    unify,
)
from repro.nested.values import DataItem

__all__ = ["Schema", "infer_schema"]


class Schema:
    """The schema of a nested dataset: a struct type over its attributes."""

    __slots__ = ("struct",)

    def __init__(self, struct: StructType):
        self.struct = struct

    @classmethod
    def of(cls, **fields: DataType) -> "Schema":
        """Build a schema from keyword field types (test convenience)."""
        return cls(StructType(tuple(fields.items())))

    def attribute_names(self) -> tuple[str, ...]:
        """Return the top-level attribute names."""
        return self.struct.field_names()

    def resolve(self, path: Path) -> DataType:
        """Return the type the schema-level *path* points at.

        Positional steps (concrete or ``[pos]``) descend into the element
        type of bag/set attributes.  Raises :class:`PathEvaluationError` for
        paths that do not fit the schema.
        """
        current: DataType = self.struct
        for step in path:
            if current == NULL:
                # Nullable branch: anything resolves to Null.
                return NULL
            if not isinstance(current, StructType):
                raise PathEvaluationError(
                    f"step {step} descends into non-struct type {current}"
                )
            if not current.has_field(step.name):
                raise PathEvaluationError(f"schema has no attribute {step.name!r} along {path}")
            current = current.field_type(step.name)
            if step.pos is not None:
                if not isinstance(current, (BagType, SetType)):
                    raise PathEvaluationError(
                        f"positional step {step} on non-collection type {current}"
                    )
                current = current.element
        return current

    def contains(self, path: Path) -> bool:
        """Return ``True`` if *path* resolves against this schema."""
        try:
            self.resolve(path)
        except PathEvaluationError:
            return False
        return True

    def paths(self) -> list[Path]:
        """Enumerate all schema-level paths, with ``[pos]`` for collections.

        For every bag/set attribute the enumeration contains both the path to
        the attribute itself and the placeholder path into its elements, so a
        nested struct like ``user_mentions: {{<id_str, name>}}`` contributes
        ``user_mentions``, ``user_mentions[pos]``, ``user_mentions[pos].id_str``
        and ``user_mentions[pos].name``.
        """
        return list(_walk(self.struct, Path()))

    def leaf_paths(self) -> list[Path]:
        """Enumerate only the paths that point at primitive leaf types."""
        return [path for path in self.paths() if not isinstance(self.resolve(path), (StructType, BagType, SetType))]

    def merged_with(self, other: "Schema") -> "Schema":
        """Unify two schemas (used by union and by dataset type inference)."""
        unified = unify(self.struct, other.struct)
        if not isinstance(unified, StructType):
            raise TypeInferenceError(f"schema unification produced non-struct {unified}")
        return Schema(unified)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.struct == other.struct

    def __hash__(self) -> int:
        return hash(self.struct)

    def __str__(self) -> str:
        return str(self.struct)

    def __repr__(self) -> str:
        return f"Schema({self.struct})"


def _walk(struct: StructType, prefix: Path) -> Iterator[Path]:
    for name, typ in struct.fields:
        attr_path = prefix.child(name)
        yield attr_path
        if isinstance(typ, StructType):
            yield from _walk(typ, attr_path)
        elif isinstance(typ, (BagType, SetType)):
            element_path = prefix.child(name, POS)
            yield element_path
            if isinstance(typ.element, StructType):
                yield from _walk(typ.element, element_path)


def infer_schema(items: Iterable[DataItem]) -> Schema:
    """Infer the unified schema of a collection of data items."""
    struct: DataType = StructType()
    first = True
    for item in items:
        item_type = infer_type(item)
        if first:
            struct = item_type
            first = False
        else:
            struct = unify(struct, item_type)
    if not isinstance(struct, StructType):
        raise TypeInferenceError(f"dataset items must be data items, got {struct}")
    return Schema(struct)
