"""JSON / JSON-lines (de)serialisation of nested datasets.

DISC systems read nested inputs from formats like JSON; the paper's pipelines
start with ``read tweets.json``.  This module converts between the nested
value model and JSON text, and reads/writes JSON-lines files that back the
engine's :class:`~repro.engine.storage.JsonlSource`.
"""

from __future__ import annotations

import json
from pathlib import Path as FsPath
from typing import Any, Iterable, Iterator

from repro.errors import DataModelError
from repro.nested.values import Bag, DataItem, NestedSet, to_python

__all__ = [
    "item_from_json",
    "item_to_json",
    "items_from_jsonl",
    "items_to_jsonl",
    "read_jsonl",
    "write_jsonl",
]


def item_from_json(text: str) -> DataItem:
    """Parse one JSON object into a :class:`DataItem`."""
    parsed = json.loads(text)
    if not isinstance(parsed, dict):
        raise DataModelError(f"top-level JSON value must be an object, got {type(parsed).__name__}")
    return DataItem(parsed)


def item_to_json(item: DataItem, indent: int | None = None) -> str:
    """Serialise a data item to JSON text (sets serialise as arrays)."""
    return json.dumps(_jsonable(item), indent=indent, sort_keys=False)


def _jsonable(value: Any) -> Any:
    if isinstance(value, DataItem):
        return {name: _jsonable(inner) for name, inner in value.pairs()}
    if isinstance(value, (Bag, NestedSet)):
        return [_jsonable(inner) for inner in value]
    return value


def items_from_jsonl(lines: Iterable[str]) -> Iterator[DataItem]:
    """Parse JSON-lines text into data items, skipping blank lines."""
    for line in lines:
        stripped = line.strip()
        if stripped:
            yield item_from_json(stripped)


def items_to_jsonl(items: Iterable[DataItem]) -> Iterator[str]:
    """Serialise data items to JSON-lines text (one line per item)."""
    for item in items:
        yield item_to_json(item)


def read_jsonl(path: FsPath | str) -> list[DataItem]:
    """Read a JSON-lines file into a list of data items."""
    with open(path, "r", encoding="utf-8") as handle:
        return list(items_from_jsonl(handle))


def write_jsonl(path: FsPath | str, items: Iterable[DataItem]) -> int:
    """Write data items to a JSON-lines file; returns the item count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for line in items_to_jsonl(items):
            handle.write(line)
            handle.write("\n")
            count += 1
    return count


def estimate_json_bytes(value: Any) -> int:
    """Approximate serialised size of a model value in bytes.

    Used by the space-overhead instrumentation (Fig. 8) to size datasets and
    provenance without materialising full JSON strings for every record.
    """
    return len(json.dumps(to_python(value) if isinstance(value, (DataItem, Bag, NestedSet)) else value))
