"""Type system for nested datasets (paper Sec. 4.1, Tab. 4).

The paper types nested values recursively: constants carry a primitive type,
data items a struct type over their attributes, and bags/sets a collection
type over a single element type.  This module implements

* the type objects (:class:`PrimitiveType`, :class:`StructType`,
  :class:`BagType`, :class:`SetType`),
* :func:`infer_type` -- the paper's ``tau(.)``,
* :func:`unify` -- least upper bound of two types, used to type datasets
  whose items differ only in nullability or int/double width, and
* :func:`check_same_type` -- the bag/set restriction that all elements share
  one type.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import TypeInferenceError
from repro.nested.values import Bag, DataItem, NestedSet

__all__ = [
    "DataType",
    "PrimitiveType",
    "StructType",
    "BagType",
    "SetType",
    "NULL",
    "BOOLEAN",
    "INT",
    "DOUBLE",
    "STRING",
    "infer_type",
    "unify",
    "unify_all",
    "check_same_type",
]


class DataType:
    """Base class of all nested data types."""

    def accepts(self, other: "DataType") -> bool:
        """Return ``True`` if values of *other* can be used where ``self`` is expected."""
        try:
            return unify(self, other) == self
        except TypeInferenceError:
            return False

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return str(self)


class PrimitiveType(DataType):
    """A constant type such as ``Int`` or ``String``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimitiveType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("primitive", self.name))

    def __str__(self) -> str:
        return self.name


#: The type of ``None``; unifies with every other type.
NULL = PrimitiveType("Null")
BOOLEAN = PrimitiveType("Boolean")
INT = PrimitiveType("Int")
DOUBLE = PrimitiveType("Double")
STRING = PrimitiveType("String")


class StructType(DataType):
    """The type of a data item: an ordered list of named field types."""

    __slots__ = ("fields",)

    def __init__(self, fields: Iterable[tuple[str, DataType]] = ()):
        self.fields: tuple[tuple[str, DataType], ...] = tuple(fields)

    def field_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.fields)

    def field_type(self, name: str) -> DataType:
        for field_name, field_typ in self.fields:
            if field_name == name:
                return field_typ
        raise TypeInferenceError(f"struct has no field {name!r}: {self}")

    def has_field(self, name: str) -> bool:
        return any(field_name == name for field_name, _ in self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StructType) and other.fields == self.fields

    def __hash__(self) -> int:
        return hash(("struct", self.fields))

    def __str__(self) -> str:
        inner = ", ".join(f"{name}: {typ}" for name, typ in self.fields)
        return f"<{inner}>"


class BagType(DataType):
    """The type of a bag; all elements share ``element`` type."""

    __slots__ = ("element",)

    def __init__(self, element: DataType):
        self.element = element

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BagType) and other.element == self.element

    def __hash__(self) -> int:
        return hash(("bag", self.element))

    def __str__(self) -> str:
        return f"{{{{{self.element}}}}}"


class SetType(DataType):
    """The type of a set; all elements share ``element`` type."""

    __slots__ = ("element",)

    def __init__(self, element: DataType):
        self.element = element

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetType) and other.element == self.element

    def __hash__(self) -> int:
        return hash(("set", self.element))

    def __str__(self) -> str:
        return f"{{{self.element}}}"


def infer_type(value: Any) -> DataType:
    """Infer the nested data type of a model value (the paper's ``tau``)."""
    if value is None:
        return NULL
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return DOUBLE
    if isinstance(value, str):
        return STRING
    if isinstance(value, DataItem):
        return StructType((name, infer_type(item)) for name, item in value.pairs())
    if isinstance(value, Bag):
        return BagType(unify_all(infer_type(item) for item in value))
    if isinstance(value, NestedSet):
        return SetType(unify_all(infer_type(item) for item in value))
    raise TypeInferenceError(f"cannot type value of {type(value).__name__!r}")


def unify(left: DataType, right: DataType) -> DataType:
    """Return the least upper bound of two types.

    ``Null`` unifies with anything, ``Int`` widens to ``Double``, structs
    unify field-wise over the union of their field names (missing fields
    become nullable), and collections unify element-wise.
    """
    if left == right:
        return left
    if left == NULL:
        return right
    if right == NULL:
        return left
    if {left, right} == {INT, DOUBLE}:
        return DOUBLE
    if isinstance(left, StructType) and isinstance(right, StructType):
        names = list(left.field_names())
        names.extend(name for name in right.field_names() if name not in names)
        fields = []
        for name in names:
            left_typ = left.field_type(name) if left.has_field(name) else NULL
            right_typ = right.field_type(name) if right.has_field(name) else NULL
            fields.append((name, unify(left_typ, right_typ)))
        return StructType(fields)
    if isinstance(left, BagType) and isinstance(right, BagType):
        return BagType(unify(left.element, right.element))
    if isinstance(left, SetType) and isinstance(right, SetType):
        return SetType(unify(left.element, right.element))
    raise TypeInferenceError(f"cannot unify types {left} and {right}")


def unify_all(types: Iterable[DataType]) -> DataType:
    """Unify an iterable of types; an empty iterable yields ``Null``."""
    result: DataType = NULL
    for typ in types:
        result = unify(result, typ)
    return result


def check_same_type(values: Iterable[Any]) -> DataType:
    """Check the bag/set restriction that all elements share one type.

    Returns the unified element type; raises :class:`TypeInferenceError` if
    two elements cannot be unified.
    """
    return unify_all(infer_type(value) for value in values)


def type_to_obj(typ: DataType) -> Any:
    """Encode a type as JSON-able data (for provenance persistence)."""
    if isinstance(typ, PrimitiveType):
        return typ.name
    if isinstance(typ, StructType):
        return {"struct": [[name, type_to_obj(field)] for name, field in typ.fields]}
    if isinstance(typ, BagType):
        return {"bag": type_to_obj(typ.element)}
    if isinstance(typ, SetType):
        return {"set": type_to_obj(typ.element)}
    raise TypeInferenceError(f"cannot serialise type {typ!r}")


def type_from_obj(obj: Any) -> DataType:
    """Decode a type previously encoded with :func:`type_to_obj`."""
    if isinstance(obj, str):
        return PrimitiveType(obj)
    if isinstance(obj, dict) and len(obj) == 1:
        kind, payload = next(iter(obj.items()))
        if kind == "struct":
            return StructType((name, type_from_obj(field)) for name, field in payload)
        if kind == "bag":
            return BagType(type_from_obj(payload))
        if kind == "set":
            return SetType(type_from_obj(payload))
    raise TypeInferenceError(f"cannot decode type from {obj!r}")
