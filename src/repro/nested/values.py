"""Nested value model (paper Sec. 4.1, Tab. 4).

A nested dataset is a list of *data items*.  Each data item is an ordered list
of ``attribute: value`` pairs where a value is a constant, another data item,
a bag (ordered list with duplicates), or a set (ordered list without
duplicates).  This module provides immutable, hashable implementations of
these building blocks:

* :class:`DataItem` -- a struct with ordered, uniquely named attributes,
* :class:`Bag` -- an ordered collection that may contain duplicates,
* :class:`NestedSet` -- an ordered collection without duplicates.

All three coerce plain Python values (``dict`` -> :class:`DataItem`,
``list``/``tuple`` -> :class:`Bag`, ``set``/``frozenset`` -> sorted
:class:`NestedSet`) on construction, and convert back via ``to_python()``.

Positional access follows the paper and is **1-based** through ``at(pos)``;
the standard Python ``[]`` indexing on collections stays 0-based and is
documented as such.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import DataModelError

__all__ = ["DataItem", "Bag", "NestedSet", "coerce_value", "to_python", "is_constant"]

#: Python types accepted as constants of the data model.
_CONSTANT_TYPES = (int, float, str, bool, type(None))


def is_constant(value: Any) -> bool:
    """Return ``True`` if *value* is a constant of the data model."""
    return isinstance(value, _CONSTANT_TYPES)


def coerce_value(value: Any) -> Any:
    """Coerce a plain Python value into the nested data model.

    ``dict`` becomes :class:`DataItem`, ``list``/``tuple`` become
    :class:`Bag`, ``set``/``frozenset`` become :class:`NestedSet` (sorted by
    repr for determinism).  Model values and constants pass through.
    """
    if isinstance(value, (DataItem, Bag, NestedSet)):
        return value
    if is_constant(value):
        return value
    if isinstance(value, Mapping):
        return DataItem(value)
    if isinstance(value, (list, tuple)):
        return Bag(value)
    if isinstance(value, (set, frozenset)):
        return NestedSet(sorted(value, key=repr))
    raise DataModelError(
        f"value of type {type(value).__name__!r} does not fit the nested data model"
    )


def to_python(value: Any) -> Any:
    """Convert a model value back into plain Python containers."""
    if isinstance(value, DataItem):
        return value.to_python()
    if isinstance(value, (Bag, NestedSet)):
        return value.to_python()
    return value


class DataItem:
    """An immutable struct of ordered ``attribute: value`` pairs.

    >>> d = DataItem({"user": {"id_str": "lp"}, "retweet_count": 0})
    >>> d["user"]["id_str"]
    'lp'
    >>> list(d.attributes())
    ['user', 'retweet_count']
    """

    __slots__ = ("_pairs", "_index", "_hash")

    def __init__(self, pairs: Mapping[str, Any] | Iterable[tuple[str, Any]] = (), **kwargs: Any):
        if isinstance(pairs, Mapping):
            items = list(pairs.items())
        else:
            items = list(pairs)
        items.extend(kwargs.items())
        seen: dict[str, int] = {}
        coerced: list[tuple[str, Any]] = []
        for position, (name, value) in enumerate(items):
            if not isinstance(name, str) or not name:
                raise DataModelError(f"attribute name must be a non-empty string, got {name!r}")
            if name in seen:
                raise DataModelError(f"duplicate attribute name {name!r} in data item")
            seen[name] = position
            coerced.append((name, coerce_value(value)))
        self._pairs: tuple[tuple[str, Any], ...] = tuple(coerced)
        self._index: dict[str, int] = seen
        self._hash: int | None = None

    def attributes(self) -> tuple[str, ...]:
        """Return the attribute names in declaration order."""
        return tuple(name for name, _ in self._pairs)

    def pairs(self) -> tuple[tuple[str, Any], ...]:
        """Return the ``(name, value)`` pairs in declaration order."""
        return self._pairs

    def values(self) -> tuple[Any, ...]:
        """Return the attribute values in declaration order."""
        return tuple(value for _, value in self._pairs)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Any:
        try:
            return self._pairs[self._index[name]][1]
        except KeyError:
            raise KeyError(f"data item has no attribute {name!r}") from None

    def get(self, name: str, default: Any = None) -> Any:
        """Return the value of attribute *name* or *default* if absent."""
        position = self._index.get(name)
        if position is None:
            return default
        return self._pairs[position][1]

    def replace(self, **updates: Any) -> "DataItem":
        """Return a copy with the named attributes replaced or appended."""
        updated = dict(self._pairs)
        updated.update(updates)
        return DataItem(updated)

    def without(self, *names: str) -> "DataItem":
        """Return a copy that drops the named attributes."""
        dropped = set(names)
        return DataItem((name, value) for name, value in self._pairs if name not in dropped)

    def project(self, names: Iterable[str]) -> "DataItem":
        """Return a copy restricted to *names*, in the given order."""
        return DataItem((name, self[name]) for name in names)

    def merged_with(self, other: "DataItem") -> "DataItem":
        """Concatenate two items; later attributes win on name clashes."""
        updated = dict(self._pairs)
        updated.update(other.pairs())
        return DataItem(updated)

    def to_python(self) -> dict[str, Any]:
        """Deep-convert into a plain ``dict``."""
        return {name: to_python(value) for name, value in self._pairs}

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataItem):
            return NotImplemented
        return self._pairs == other._pairs

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._pairs)
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}: {value!r}" for name, value in self._pairs)
        return f"<{inner}>"


class _Collection:
    """Shared behaviour of :class:`Bag` and :class:`NestedSet`."""

    __slots__ = ("_items", "_hash")

    _items: tuple[Any, ...]
    _hash: int | None

    def at(self, pos: int) -> Any:
        """Return the element at the **1-based** position *pos* (paper style)."""
        if not isinstance(pos, int) or isinstance(pos, bool) or pos < 1:
            raise DataModelError(f"positions are 1-based integers, got {pos!r}")
        try:
            return self._items[pos - 1]
        except IndexError:
            raise DataModelError(
                f"position {pos} out of range for collection of size {len(self._items)}"
            ) from None

    def to_python(self) -> list[Any]:
        """Deep-convert into a plain ``list``."""
        return [to_python(item) for item in self._items]

    def items(self) -> tuple[Any, ...]:
        """Return the elements as a tuple (0-based, Python order)."""
        return self._items

    def __getitem__(self, index: int) -> Any:
        """Standard **0-based** Python indexing (use :meth:`at` for 1-based)."""
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._items == other._items  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((type(self).__name__, self._items))
        return self._hash

    def __repr__(self) -> str:
        open_, close = ("{{", "}}") if isinstance(self, Bag) else ("{", "}")
        inner = ", ".join(repr(item) for item in self._items)
        return f"{open_}{inner}{close}"


class Bag(_Collection):
    """An ordered collection with duplicates (the paper's ``{{ ... }}``)."""

    __slots__ = ()

    def __init__(self, items: Iterable[Any] = ()):
        self._items = tuple(coerce_value(item) for item in items)
        self._hash = None

    def appended(self, item: Any) -> "Bag":
        """Return a new bag with *item* appended."""
        return Bag(self._items + (coerce_value(item),))

    def concat(self, other: "Bag") -> "Bag":
        """Return the concatenation of two bags."""
        return Bag(self._items + tuple(other))


class NestedSet(_Collection):
    """An ordered collection without duplicates (the paper's ``{ ... }``).

    Duplicates in the input are dropped, keeping the first occurrence so the
    positional-access semantics of the data model stay well defined.
    """

    __slots__ = ()

    def __init__(self, items: Iterable[Any] = ()):
        unique: list[Any] = []
        seen: set[Any] = set()
        for item in items:
            coerced = coerce_value(item)
            if coerced not in seen:
                seen.add(coerced)
                unique.append(coerced)
        self._items = tuple(unique)
        self._hash = None
