"""Span-based tracing: where a run spends its time, as an inspectable artifact.

The evaluation chapters of the paper (capture overhead, eager-vs-lazy query
latency) reduce runs to single wall-clock numbers; concurrent stage execution
(thread-pool scheduler) and lazy segment decoding make those numbers
unexplainable without a time dimension.  The tracer records **hierarchical
spans** -- run -> physical stage -> partition task -> operator, plus warehouse
segment reads and backtrace query phases -- and exports them as Chrome
trace-event JSON (loadable in Perfetto / ``chrome://tracing``) or JSONL.

Design constraints:

* **Zero cost when off.**  The process-wide current tracer defaults to
  :data:`NULL_TRACER`, whose ``span()`` returns one shared no-op context
  manager; instrumented code pays a function call and nothing else.  The
  bench ablation ladder carries a ``+trace`` row that pins this.
* **Thread safe.**  The thread-pool scheduler runs partition tasks of one
  stage concurrently; spans record the identifier of the thread they ran on
  and the tracer appends finished spans under a lock, so overlapping stages
  render correctly as separate tracks.
* **No result perturbation.**  Tracing only observes; the equivalence
  property tests pin traced == untraced results, stores, and backtraces.

Spans nest implicitly: Chrome's ``B``/``E`` duration events are matched per
thread by timestamp order, so a span opened inside another span on the same
thread renders as its child without the tracer tracking parents.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from typing import Any, Iterator, TextIO

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "chrome_trace_events",
]

#: Synthetic process id used in exported traces (one trace == one process).
TRACE_PID = 1

#: Process-wide monotone span ids.  Assigned when a live span opens; the
#: id is what histogram exemplars reference (``span_id="17"`` in the
#: OpenMetrics rendering), so a scraped tail latency points back at the
#: exact span in the exported timeline.  The null tracer assigns none.
_SPAN_IDS = itertools.count(1)


class Span:
    """One finished span: a named interval on one thread."""

    __slots__ = ("name", "category", "start", "end", "tid", "args")

    def __init__(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        tid: int,
        args: dict[str, Any],
    ):
        self.name = name
        self.category = category
        #: Start/end offsets in seconds relative to the tracer's epoch.
        self.start = start
        self.end = end
        self.tid = tid
        self.args = args

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, cat={self.category!r}, "
            f"{self.duration * 1000:.3f} ms, tid={self.tid})"
        )


class _SpanHandle:
    """Context manager for one live span; finishes into the owning tracer."""

    __slots__ = ("_tracer", "_name", "_category", "_args", "_start", "_tid", "span_id")

    def __init__(self, tracer: "Tracer", name: str, category: str, args: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args
        #: Assigned on ``__enter__``; ``None`` before the span opens.
        self.span_id: int | None = None

    def set(self, **args: Any) -> None:
        """Attach further arguments to the span (e.g. counts known at exit)."""
        self._args.update(args)

    def __enter__(self) -> "_SpanHandle":
        self._tid = threading.get_ident()
        self.span_id = next(_SPAN_IDS)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = time.perf_counter()
        epoch = self._tracer._epoch
        self._tracer._record(
            Span(
                self._name,
                self._category,
                self._start - epoch,
                end - epoch,
                self._tid,
                self._args,
            )
        )


class _NullSpanHandle:
    """The shared no-op span handle: enter/exit/set do nothing."""

    __slots__ = ()

    #: No id while tracing is off -- exemplar call sites pass it straight
    #: through to ``Histogram.observe``, which then records no exemplar.
    span_id = None

    def set(self, **args: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpanHandle()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Instrumented code calls :func:`get_tracer` unconditionally; with this
    tracer active the per-call cost is one attribute lookup and one shared
    object return -- no allocation, no lock, no clock read.
    """

    enabled = False
    #: Timeline origin; meaningless while disabled, kept for interface parity.
    epoch = 0.0

    def span(self, name: str, category: str = "run", **args: Any) -> _NullSpanHandle:
        return _NULL_SPAN

    def instant(self, name: str, category: str = "run", **args: Any) -> None:
        pass

    def record_span(self, span: Span) -> None:
        pass

    def spans(self) -> list[Span]:
        return []

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_TRACER = NullTracer()


class Tracer:
    """Records spans; thread-safe; exports Chrome trace JSON and JSONL."""

    enabled = True

    def __init__(self, process_name: str = "repro", epoch: float | None = None):
        self.process_name = process_name
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._instants: list[Span] = []
        #: Timeline origin (``perf_counter`` units).  Pool workers build local
        #: tracers pinned to the driver tracer's epoch so their spans merge
        #: onto the parent timeline (CLOCK_MONOTONIC is system-wide on Linux).
        self._epoch = time.perf_counter() if epoch is None else epoch

    @property
    def epoch(self) -> float:
        """The timeline origin spans are recorded relative to."""
        return self._epoch

    # -- recording -----------------------------------------------------------

    def span(self, name: str, category: str = "run", **args: Any) -> _SpanHandle:
        """Open a span; use as ``with tracer.span("stage-0", "stage"):``."""
        return _SpanHandle(self, name, category, args)

    def instant(self, name: str, category: str = "run", **args: Any) -> None:
        """Record a zero-duration marker event."""
        now = time.perf_counter() - self._epoch
        span = Span(name, category, now, now, threading.get_ident(), args)
        with self._lock:
            self._instants.append(span)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def record_span(self, span: Span) -> None:
        """Adopt an externally recorded span (worker-side span export).

        The span's ``start``/``end`` must already be relative to this
        tracer's epoch -- true for spans from a worker tracer built with
        ``Tracer(epoch=parent.epoch)``.
        """
        self._record(span)

    # -- reading -------------------------------------------------------------

    def spans(self) -> list[Span]:
        """Snapshot of the finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def find(self, category: str | None = None, name: str | None = None) -> list[Span]:
        """Finished spans filtered by category and/or name substring."""
        return [
            span
            for span in self.spans()
            if (category is None or span.category == category)
            and (name is None or name in span.name)
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans) + len(self._instants)

    def __repr__(self) -> str:
        with self._lock:
            return f"Tracer({self.process_name!r}, {len(self._spans)} spans)"

    # -- export --------------------------------------------------------------

    def chrome_events(self) -> list[dict[str, Any]]:
        """The trace-event list: metadata + paired ``B``/``E`` duration events."""
        with self._lock:
            spans = list(self._spans)
            instants = list(self._instants)
        return chrome_trace_events(spans, instants, self.process_name)

    def write_chrome_trace(self, path: str) -> None:
        """Write a Perfetto/``chrome://tracing``-loadable JSON file."""
        payload = {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs", "process": self.process_name},
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")

    def write_jsonl(self, path_or_handle: str | TextIO) -> None:
        """Write one JSON object per finished span (ts/dur in seconds)."""
        if isinstance(path_or_handle, str):
            with open(path_or_handle, "w", encoding="utf-8") as handle:
                self.write_jsonl(handle)
            return
        for span in self.spans():
            record = {
                "name": span.name,
                "cat": span.category,
                "ts": span.start,
                "dur": span.duration,
                "tid": span.tid,
                "args": span.args,
            }
            path_or_handle.write(json.dumps(record) + "\n")


def chrome_trace_events(
    spans: list[Span],
    instants: list[Span] | None = None,
    process_name: str = "repro",
) -> list[dict[str, Any]]:
    """Convert spans to Chrome trace-event dicts (timestamps in microseconds).

    Every duration is emitted as a ``B``/``E`` pair; per thread the pairs are
    ordered by timestamp with ties broken so that enclosing spans open first
    and close last, which is what the viewers use to reconstruct nesting.
    """
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": TRACE_PID,
            "tid": 0,
            "ts": 0,
            "args": {"name": process_name},
        }
    ]
    tids = sorted({span.tid for span in spans} | {span.tid for span in (instants or [])})
    #: Real thread idents are large opaque integers; renumber for readability.
    tid_map = {tid: index + 1 for index, tid in enumerate(tids)}
    for tid, mapped in tid_map.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": TRACE_PID,
                "tid": mapped,
                "ts": 0,
                "args": {"name": f"thread-{mapped}"},
            }
        )

    def _us(seconds: float) -> float:
        return seconds * 1_000_000

    timed: list[tuple[float, int, dict[str, Any]]] = []
    for span in spans:
        tid = tid_map[span.tid]
        begin = {
            "ph": "B",
            "name": span.name,
            "cat": span.category,
            "pid": TRACE_PID,
            "tid": tid,
            "ts": _us(span.start),
            "args": span.args,
        }
        end = {
            "ph": "E",
            "name": span.name,
            "cat": span.category,
            "pid": TRACE_PID,
            "tid": tid,
            "ts": _us(span.end),
        }
        # Tie-breakers: at equal timestamps longer spans begin first and end
        # last, so a parent measured around a child never inverts.
        timed.append((_us(span.start), -round(_us(span.duration)), begin))
        timed.append((_us(span.end), round(_us(span.duration)), end))
    for span in instants or []:
        timed.append(
            (
                _us(span.start),
                0,
                {
                    "ph": "i",
                    "name": span.name,
                    "cat": span.category,
                    "pid": TRACE_PID,
                    "tid": tid_map[span.tid],
                    "ts": _us(span.start),
                    "s": "t",
                    "args": span.args,
                },
            )
        )
    timed.sort(key=lambda entry: (entry[2]["tid"], entry[0], entry[1]))
    events.extend(event for _, _, event in timed)
    return events


# -- the process-wide current tracer ------------------------------------------

_ACTIVE: Tracer | NullTracer = NULL_TRACER
_ACTIVE_LOCK = threading.Lock()


def get_tracer() -> Tracer | NullTracer:
    """The currently active tracer (the shared no-op tracer by default)."""
    return _ACTIVE


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install *tracer* process-wide; returns the previously active one."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = tracer if tracer is not None else NULL_TRACER
    return previous


class tracing:
    """Context manager activating *tracer* for the enclosed block.

    ::

        tracer = Tracer()
        with tracing(tracer):
            execution = pipeline.execute(capture=True)
        tracer.write_chrome_trace("run.json")
    """

    def __init__(self, tracer: Tracer | NullTracer):
        self.tracer = tracer
        self._previous: Tracer | NullTracer | None = None

    def __enter__(self) -> Tracer | NullTracer:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc_info: object) -> None:
        set_tracer(self._previous)


def iter_b_e_pairs(events: list[dict[str, Any]]) -> Iterator[tuple[dict, dict]]:
    """Pair ``B``/``E`` events per (pid, tid) stack; raises on imbalance.

    Shared by the test-suite and ``tools/check_trace.py`` well-formedness
    checks.
    """
    stacks: dict[tuple[int, int], list[dict[str, Any]]] = {}
    for event in events:
        phase = event.get("ph")
        if phase not in ("B", "E"):
            continue
        key = (event["pid"], event["tid"])
        stack = stacks.setdefault(key, [])
        if phase == "B":
            stack.append(event)
        else:
            if not stack:
                raise ValueError(f"E event without open B on {key}: {event.get('name')}")
            begin = stack.pop()
            if begin.get("name") != event.get("name"):
                raise ValueError(
                    f"mismatched B/E pair on {key}: "
                    f"{begin.get('name')!r} closed by {event.get('name')!r}"
                )
            yield begin, event
    for key, stack in stacks.items():
        if stack:
            raise ValueError(
                f"unclosed B events on {key}: {[event.get('name') for event in stack]}"
            )
