"""A stdlib sampling profiler: folded stacks per stage, zero cost when off.

Spans (:mod:`repro.obs.tracer`) say *that* a stage took 300 ms; they cannot
say which Python frames burned it.  :class:`SamplingProfiler` fills that
gap with nothing beyond the standard library: a daemon timer thread
periodically walks ``sys._current_frames()`` and counts one sample per
``(stage, call stack)`` pair across every thread of the process -- which
covers the thread-pool scheduler's workers for free.  Process-pool workers
run in other interpreters and are *not* sampled; their driver-side share
(pickling, result merge) is.

Output is the collapsed **folded-stack** format every flamegraph tool
ingests (``stage;frame;frame;... count`` lines, one per unique stack), and
the aggregate per-stage sample counts are merged into a live tracer's
Perfetto timeline as instant events at stop time.

Attachment points:

* the executor, via ``EngineConfig.profile`` / ``REPRO_PROFILE=on`` --
  stages are marked as they start so samples attribute to them;
* ``repro serve``, for the server's lifetime when ``REPRO_PROFILE`` is on.

When off, nothing is constructed and the instrumented code pays one
attribute check -- the ``prof-off`` bench ablation rung pins it.
"""

from __future__ import annotations

import os
import sys
import threading
from collections import Counter
from typing import Any, TextIO

__all__ = [
    "DEFAULT_INTERVAL",
    "PROFILE_ENV",
    "PROFILE_OUT_ENV",
    "SamplingProfiler",
    "profile_enabled",
    "profile_out_path",
]

#: Sampling period in seconds (~200 Hz: cheap, enough for ms-scale stages).
DEFAULT_INTERVAL = 0.005

PROFILE_ENV = "REPRO_PROFILE"
PROFILE_OUT_ENV = "REPRO_PROFILE_OUT"


def profile_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` asks for sampling (``on``/``1``/``true``)."""
    raw = os.environ.get(PROFILE_ENV, "")
    return raw.strip().lower() in ("on", "1", "true", "yes")


def profile_out_path() -> str | None:
    """The folded-stack output path from ``REPRO_PROFILE_OUT``, if set."""
    raw = os.environ.get(PROFILE_OUT_ENV)
    return raw if raw else None


def _frame_stack(frame: Any) -> tuple[str, ...]:
    """Render one thread's stack root-first as ``module:function`` frames."""
    frames: list[str] = []
    while frame is not None:
        code = frame.f_code
        name = os.path.splitext(os.path.basename(code.co_filename))[0]
        frames.append(f"{name}:{code.co_name}")
        frame = frame.f_back
    frames.reverse()
    return tuple(frames)


class SamplingProfiler:
    """Samples every thread's stack on a timer; aggregates per stage.

    ::

        profiler = SamplingProfiler()
        profiler.start()
        profiler.mark_stage("stage-0 read")
        ...                                     # work happens, on any thread
        profiler.stop()
        profiler.write_folded("profile.folded")
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL, stage: str = "(startup)"):
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        self.interval = interval
        #: ``(stage, stack) -> samples``; stacks are root-first frame tuples.
        self._counts: Counter[tuple[str, tuple[str, ...]]] = Counter()
        self._stage = stage
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def stop(self) -> "SamplingProfiler":
        """Stop sampling; always takes one final sample so short runs are
        never empty.  Idempotent."""
        thread = self._thread
        if thread is not None:
            self._stop.set()
            thread.join(timeout=2.0)
            self._thread = None
        self.sample()
        return self

    # -- sampling --------------------------------------------------------------

    def mark_stage(self, label: str) -> None:
        """Attribute subsequent samples to *label* (stages run in order)."""
        with self._lock:
            self._stage = label

    def sample(self) -> int:
        """Take one sample of every thread; returns the threads sampled.

        The profiler's own timer thread is excluded.  The final synchronous
        sample from :meth:`stop` runs after that thread is gone, so it sees
        every thread -- which guarantees even a run shorter than one
        sampling period yields at least one stack.
        """
        thread = self._thread
        skip = thread.ident if thread is not None else None
        frames = sys._current_frames()
        with self._lock:
            stage = self._stage
            sampled = 0
            for tid, frame in frames.items():
                if tid == skip:
                    continue
                self._counts[(stage, _frame_stack(frame))] += 1
                sampled += 1
        return sampled

    # -- reading / export ------------------------------------------------------

    @property
    def sample_count(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def stage_totals(self) -> dict[str, int]:
        """Samples per stage label, insertion-ordered by first sighting."""
        totals: dict[str, int] = {}
        with self._lock:
            for (stage, _), count in self._counts.items():
                totals[stage] = totals.get(stage, 0) + count
        return totals

    def folded_lines(self) -> list[str]:
        """Collapsed stacks: ``stage;frame;frame;... count``, sorted."""
        with self._lock:
            items = sorted(self._counts.items())
        return [
            ";".join((stage,) + stack) + f" {count}"
            for (stage, stack), count in items
        ]

    def write_folded(self, path_or_handle: str | TextIO) -> int:
        """Write the folded stacks; returns the number of lines written."""
        lines = self.folded_lines()
        if isinstance(path_or_handle, str):
            with open(path_or_handle, "w", encoding="utf-8") as handle:
                return self.write_folded(handle)
        for line in lines:
            path_or_handle.write(line + "\n")
        return len(lines)

    def merge_into_tracer(self, tracer: Any) -> None:
        """Fold per-stage sample counts into a tracer as instant events.

        Loading the trace in Perfetto then shows ``profile <stage>`` markers
        with the sample totals next to the stage spans they explain.
        """
        for stage, samples in self.stage_totals().items():
            tracer.instant(
                f"profile {stage}", "profile", samples=samples,
                hz=round(1.0 / self.interval),
            )

    def __repr__(self) -> str:
        running = self._thread is not None
        return f"SamplingProfiler({self.sample_count} samples, running={running})"
