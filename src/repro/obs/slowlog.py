"""Slow-query capture: over-budget queries, with breakdowns, in a ring buffer.

``REPRO_SLOW_QUERY_MS`` sets the budget: any backtrace or forward trace
whose wall time meets or exceeds it is logged as a structured
``slow-query`` event (:mod:`repro.obs.log`) carrying its full
:class:`~repro.obs.breakdown.QueryBreakdown`, and appended to a bounded
in-process ring buffer.  The ring is what ``GET /debug/slow`` and ``repro
stats --slow`` expose: the most recent over-budget queries of this process,
newest first, without scraping log files.

The threshold is read from the environment per query so long-lived servers
can be tuned without a restart (``0`` captures everything -- the smoke-test
setting; unset/empty disables capture entirely and the fast path pays one
``os.environ.get``).
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any

from repro.obs.log import get_logger

__all__ = [
    "SLOW_QUERY_ENV",
    "DEFAULT_RING_SIZE",
    "SlowQueryLog",
    "get_slow_log",
    "set_slow_log",
    "slow_threshold_seconds",
    "observe_query",
]

SLOW_QUERY_ENV = "REPRO_SLOW_QUERY_MS"

#: Entries the in-process ring keeps (oldest evicted first).
DEFAULT_RING_SIZE = 128


def slow_threshold_seconds() -> float | None:
    """The current budget in seconds, or ``None`` when capture is off."""
    raw = os.environ.get(SLOW_QUERY_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        millis = float(raw)
    except ValueError:
        return None
    if millis < 0:
        return None
    return millis / 1000.0


class SlowQueryLog:
    """A thread-safe bounded ring of slow-query records, newest first."""

    def __init__(self, maxlen: int = DEFAULT_RING_SIZE):
        self._entries: deque[dict[str, Any]] = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self._total = 0

    def record(self, entry: dict[str, Any]) -> None:
        with self._lock:
            self._entries.append(entry)
            self._total += 1

    def snapshot(self) -> list[dict[str, Any]]:
        """The retained entries, newest first."""
        with self._lock:
            return list(reversed(self._entries))

    @property
    def total(self) -> int:
        """Slow queries observed since process start (evictions included)."""
        with self._lock:
            return self._total

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._total = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return f"SlowQueryLog({len(self)} retained, {self.total} total)"


# -- the process-wide ring -----------------------------------------------------

_RING = SlowQueryLog()
_RING_LOCK = threading.Lock()


def get_slow_log() -> SlowQueryLog:
    """The process-wide slow-query ring buffer."""
    return _RING


def set_slow_log(ring: SlowQueryLog) -> SlowQueryLog:
    """Swap the process-wide ring (test isolation); returns the previous one."""
    global _RING
    with _RING_LOCK:
        previous = _RING
        _RING = ring
    return previous


def observe_query(
    kind: str,
    run_id: str,
    pattern: str,
    seconds: float,
    method: str = "lazy",
    breakdown: dict[str, Any] | None = None,
    threshold: float | None = None,
) -> bool:
    """Record one finished query if it blew the budget; ``True`` when it did.

    *threshold* defaults to the environment's current value; callers that
    already read it (to decide whether to build a breakdown) pass it through
    so one query sees one consistent budget.
    """
    if threshold is None:
        threshold = slow_threshold_seconds()
    if threshold is None or seconds < threshold:
        return False
    entry: dict[str, Any] = {
        "ts": time.time(),
        "kind": kind,
        "run_id": run_id,
        "pattern": pattern,
        "method": method,
        "seconds": seconds,
        "threshold_ms": threshold * 1000.0,
    }
    if breakdown is not None:
        entry["breakdown"] = breakdown
    get_slow_log().record(entry)
    get_logger(run_id).event(
        "slow-query",
        kind=kind,
        pattern=pattern,
        method=method,
        seconds=seconds,
        threshold_ms=threshold * 1000.0,
        breakdown=breakdown,
    )
    return True
