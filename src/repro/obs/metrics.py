"""Process-wide metrics registry: counters, gauges, histograms.

The engine's per-run accounting (:class:`~repro.engine.metrics.ExecutionMetrics`,
``StageMetrics``, ``SegmentCacheMetrics``) describes a single execution or
query; this registry is where those islands publish so the process as a whole
is observable: how many runs executed, how their stage latencies distribute,
how segment caches behave across many warehouse queries.

Naming follows the Prometheus conventions: ``repro_<subsystem>_<unit>`` with
``_total`` suffixes on counters (``repro_stage_seconds``,
``repro_segment_cache_misses_total``).  Histograms use **fixed bucket
boundaries** declared at creation -- latency buckets for durations,
power-of-ten row buckets for per-partition row-count skew -- so two dumps of
the same registry are always comparable.

Two export formats: :meth:`MetricsRegistry.to_json` (machine-readable dump,
the CLI's ``repro stats --json``) and
:meth:`MetricsRegistry.render_prometheus` (text exposition format).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "set_build_info",
    "LATENCY_BUCKETS",
    "ROWS_BUCKETS",
    "BYTES_BUCKETS",
]

#: Latency bucket boundaries in seconds (0.5 ms .. 10 s).
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Row-count buckets (per-partition skew and per-operator cardinalities).
ROWS_BUCKETS: tuple[float, ...] = (0, 1, 10, 100, 1_000, 10_000, 100_000, 1_000_000)

#: Byte-size buckets (segment reads, provenance sizes).
BYTES_BUCKETS: tuple[float, ...] = (
    256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 16_777_216,
)

Labels = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any] | None) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double-quote, and line feed are the three characters the
    format requires escaping inside quoted label values; backslash must go
    first so the other escapes are not themselves re-escaped.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label_value(value)}"' for key, value in pairs)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: Labels):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self.value += amount

    def to_json(self) -> dict[str, Any]:
        return {"type": self.kind, "name": self.name, "labels": dict(self.labels), "value": self.value}

    def render(self) -> Iterator[str]:
        yield f"{self.name}{_render_labels(self.labels)} {_fmt(self.value)}"


class Gauge:
    """A value that can go up and down (last write wins)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: Labels):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += amount

    def to_json(self) -> dict[str, Any]:
        return {"type": self.kind, "name": self.name, "labels": dict(self.labels), "value": self.value}

    def render(self) -> Iterator[str]:
        yield f"{self.name}{_render_labels(self.labels)} {_fmt(self.value)}"


class Histogram:
    """Cumulative-bucket histogram over fixed boundaries."""

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count", "exemplar", "_lock")

    def __init__(self, name: str, labels: Labels, buckets: tuple[float, ...]):
        if not buckets or tuple(sorted(buckets)) != tuple(buckets):
            raise ValueError(f"histogram {name} needs sorted, non-empty buckets")
        self.name = name
        self.labels = labels
        self.buckets = buckets
        #: counts[i] observations <= buckets[i]; counts[-1] is the overflow.
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0
        #: ``(bucket_index, value, span_id)`` of the largest observation that
        #: carried a trace-span id -- the OpenMetrics exemplar rendered on
        #: its bucket line ("which trace explains this histogram's tail?").
        self.exemplar: tuple[int, float, str] | None = None
        self._lock = threading.Lock()

    def observe(self, value: float, span_id: int | str | None = None) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1
            if span_id is not None and (
                self.exemplar is None or value >= self.exemplar[1]
            ):
                self.exemplar = (index, value, str(span_id))

    def to_json(self) -> dict[str, Any]:
        payload = {
            "type": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }
        if self.exemplar is not None:
            _, value, span_id = self.exemplar
            payload["exemplar"] = {"span_id": span_id, "value": value}
        return payload

    def _bucket_line(self, index: int, le: str, cumulative: int) -> str:
        line = f'{self.name}_bucket{_render_labels(self.labels, (("le", le),))} {cumulative}'
        if self.exemplar is not None and self.exemplar[0] == index:
            _, value, span_id = self.exemplar
            line += f' # {{span_id="{_escape_label_value(span_id)}"}} {_fmt(value)}'
        return line

    def render(self) -> Iterator[str]:
        cumulative = 0
        for index, (boundary, bucket_count) in enumerate(zip(self.buckets, self.counts)):
            cumulative += bucket_count
            yield self._bucket_line(index, _fmt(boundary), cumulative)
        cumulative += self.counts[-1]
        yield self._bucket_line(len(self.buckets), "+Inf", cumulative)
        yield f"{self.name}_sum{_render_labels(self.labels)} {_fmt(self.sum)}"
        yield f"{self.name}_count{_render_labels(self.labels)} {self.count}"


def _fmt(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """A named family of metrics; get-or-create access, stable dump order."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, Labels], Metric] = {}

    def _get_or_create(self, cls: type, name: str, labels: Labels, **kwargs: Any) -> Metric:
        key = (name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, labels, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, not {cls.kind}"
                )
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        metric = self._get_or_create(Counter, name, _label_key(labels))
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        metric = self._get_or_create(Gauge, name, _label_key(labels))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self, name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS, **labels: Any
    ) -> Histogram:
        metric = self._get_or_create(Histogram, name, _label_key(labels), buckets=buckets)
        assert isinstance(metric, Histogram)
        if metric.buckets != tuple(buckets):
            raise ValueError(
                f"histogram {name!r} already registered with buckets {metric.buckets}"
            )
        return metric

    def metrics(self) -> list[Metric]:
        """All metrics, sorted by (name, labels) for stable output."""
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def reset(self) -> None:
        """Drop every registered metric (test isolation)."""
        with self._lock:
            self._metrics.clear()

    def to_json(self) -> dict[str, Any]:
        """Machine-readable dump: one entry per metric, stable order."""
        return {"metrics": [metric.to_json() for metric in self.metrics()]}

    def render_prometheus(self) -> str:
        """Prometheus text exposition (``# TYPE`` headers + sample lines)."""
        lines: list[str] = []
        seen_types: set[str] = set()
        for metric in self.metrics():
            if metric.name not in seen_types:
                lines.append(f"# TYPE {metric.name} {metric.kind}")
                seen_types.add(metric.name)
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} metrics)"


def set_build_info(registry: "MetricsRegistry | None" = None, **labels: Any) -> Gauge:
    """Publish the ``repro_build_info`` gauge (value 1, identity in labels).

    The Prometheus build-info convention: the interesting facts -- package
    version plus whatever the caller knows (partition layout, component) --
    ride as labels on a constant-1 gauge, joinable against every other
    series.  The version label is always present.
    """
    from repro import __version__

    registry = registry if registry is not None else get_registry()
    gauge = registry.gauge("repro_build_info", version=__version__, **labels)
    gauge.set(1)
    return gauge


# -- the process-wide registry -------------------------------------------------

_REGISTRY = MetricsRegistry()
_REGISTRY_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry the engine publishes into."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (returns the previous one)."""
    global _REGISTRY
    with _REGISTRY_LOCK:
        previous = _REGISTRY
        _REGISTRY = registry
    return previous
