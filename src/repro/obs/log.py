"""Structured logging keyed by run id.

Every log record is one JSON object with a fixed key prefix -- ``ts``
(unix seconds), ``ts_iso`` (the same instant as ISO-8601 UTC, for humans
and log pipelines that key on lexicographic time), ``run_id``, ``event`` --
plus arbitrary event fields.  Records flow through the stdlib
``logging`` tree under the ``repro.run`` logger, so hosts configure routing
and levels the usual way; :func:`enable` attaches a stderr (or custom
stream) handler that emits the JSON lines for CLI use.

::

    log = get_logger("run-0001-example")
    log.event("stage-finished", stage=0, kind="read", rows_out=6)
"""

from __future__ import annotations

import json
import logging
import time
from datetime import datetime, timezone
from typing import Any, TextIO

__all__ = ["RunLogger", "get_logger", "enable", "LOGGER_NAME", "EVENT_KEYS"]

LOGGER_NAME = "repro.run"

#: The fixed key prefix of every structured event, in emission order.
EVENT_KEYS = ("ts", "ts_iso", "run_id", "event")


def _iso(ts: float) -> str:
    return datetime.fromtimestamp(ts, tz=timezone.utc).isoformat()


class JsonLineFormatter(logging.Formatter):
    """Render a record's structured payload as one JSON line."""

    def format(self, record: logging.LogRecord) -> str:
        payload = getattr(record, "structured", None)
        if payload is None:  # a plain message routed through the same logger
            payload = {"ts": record.created, "event": record.getMessage()}
        return json.dumps(payload, default=str)


class RunLogger:
    """A structured logger bound to one run id."""

    __slots__ = ("run_id", "_logger")

    def __init__(self, run_id: str, logger: logging.Logger | None = None):
        self.run_id = run_id
        self._logger = logger if logger is not None else logging.getLogger(LOGGER_NAME)

    def event(self, event: str, level: int = logging.INFO, **fields: Any) -> None:
        """Emit one structured record: ``{ts, ts_iso, run_id, event, **fields}``."""
        if not self._logger.isEnabledFor(level):
            return
        now = time.time()
        payload: dict[str, Any] = {
            "ts": now,
            "ts_iso": _iso(now),
            "run_id": self.run_id,
            "event": event,
        }
        payload.update(fields)
        self._logger.log(level, event, extra={"structured": payload})

    def __repr__(self) -> str:
        return f"RunLogger({self.run_id!r})"


def get_logger(run_id: str) -> RunLogger:
    """A structured logger for *run_id* (cheap; no caching needed)."""
    return RunLogger(run_id)


def enable(stream: TextIO | None = None, level: int = logging.INFO) -> logging.Handler:
    """Attach a JSON-lines handler to the run logger; returns the handler.

    Idempotent per stream object: calling twice with the same stream does not
    duplicate handlers.
    """
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(level)
    for handler in logger.handlers:
        if isinstance(handler, logging.StreamHandler) and handler.stream is stream:
            return handler
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLineFormatter())
    logger.addHandler(handler)
    return handler
