"""Explain-analyze accounting: where one provenance query spends its time.

Aggregate histograms (``repro.obs.metrics``) say how queries behave on
average; a :class:`QueryBreakdown` says where *this* query's wall time went:
pattern matching, index probes, segment decoding, the association closure,
source resolution.  The breakdown is the payload behind ``repro warehouse
query --analyze``, ``repro trace-forward --analyze``, the ``"analyze"``
field of served queries, and the slow-query log.

Two design constraints mirror the tracer's:

* **Exclusive phases that sum to the total.**  Phases are kept on a stack
  and time is flushed into exactly one bucket at every transition, so
  nesting ``segment_decode`` inside ``closure`` moves time out of the
  parent instead of double-counting it.  ``sum(phases.values())`` equals
  ``total_seconds`` up to float rounding -- the property the acceptance
  tests pin at 5%.
* **Zero cost when off.**  Instrumented code calls :func:`get_breakdown`
  unconditionally; the default is a shared no-op whose ``phase()`` returns
  one shared null handle -- no allocation, no clock read.  The active
  breakdown is **thread-local** (a query runs on one thread), so concurrent
  serve requests each see their own.

A breakdown only observes: query answers are byte-identical with and
without one attached.
"""

from __future__ import annotations

import threading
import time
from typing import Any

__all__ = [
    "PHASES",
    "QueryBreakdown",
    "NullBreakdown",
    "NULL_BREAKDOWN",
    "get_breakdown",
    "activate",
    "render_breakdown",
]

#: Canonical phase order (rendering and JSON use it; unknown phases append).
PHASES: tuple[str, ...] = (
    "load",
    "pattern_match",
    "index_probe",
    "segment_decode",
    "closure",
    "source_resolution",
    "other",
)


class _PhaseHandle:
    """Context manager for one phase interval on the owning breakdown."""

    __slots__ = ("_breakdown", "_name")

    def __init__(self, breakdown: "QueryBreakdown", name: str):
        self._breakdown = breakdown
        self._name = name

    def __enter__(self) -> "_PhaseHandle":
        self._breakdown._push(self._name)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._breakdown._pop()


class _NullPhaseHandle:
    """The shared no-op phase handle."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhaseHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_PHASE = _NullPhaseHandle()


class NullBreakdown:
    """The disabled breakdown: every operation is a no-op."""

    enabled = False

    def phase(self, name: str) -> _NullPhaseHandle:
        return _NULL_PHASE

    def count(self, **deltas: Any) -> None:
        pass

    def __repr__(self) -> str:
        return "NullBreakdown()"


NULL_BREAKDOWN = NullBreakdown()


class QueryBreakdown:
    """Per-phase wall time plus the counters of one provenance query.

    Usage (the warehouse and serve layers drive this)::

        breakdown = QueryBreakdown()
        breakdown.start()
        with activate(breakdown):
            with breakdown.phase("load"):
                execution = warehouse.load(run_id)
            result = query_provenance(execution, pattern)   # phases inside
        breakdown.finish()
        breakdown.to_json()

    Between ``start()`` and ``finish()`` every instant belongs to exactly
    one phase: the innermost open ``phase(...)``, or ``"other"`` when none
    is open.
    """

    enabled = True

    __slots__ = ("phases", "counters", "total_seconds", "_stack", "_mark", "_origin")

    def __init__(self) -> None:
        self.phases: dict[str, float] = {}
        #: Query-shape counters (segments decoded, cache hits, rows visited,
        #: index vs scan verdict, ...) -- whatever the instrumented layers
        #: report via :meth:`count`.
        self.counters: dict[str, Any] = {}
        self.total_seconds = 0.0
        self._stack: list[str] = []
        self._mark: float | None = None
        self._origin: float | None = None

    # -- the phase stack -------------------------------------------------------

    def start(self) -> "QueryBreakdown":
        """Open the measured window; time starts accruing to ``other``."""
        now = time.perf_counter()
        self._origin = now
        self._mark = now
        return self

    def _flush(self, now: float) -> None:
        if self._mark is None:  # never started: tolerate stray phases
            self._mark = now
            return
        bucket = self._stack[-1] if self._stack else "other"
        elapsed = now - self._mark
        if elapsed > 0.0:
            self.phases[bucket] = self.phases.get(bucket, 0.0) + elapsed
        self._mark = now

    def _push(self, name: str) -> None:
        self._flush(time.perf_counter())
        self._stack.append(name)

    def _pop(self) -> None:
        self._flush(time.perf_counter())
        if self._stack:
            self._stack.pop()

    def phase(self, name: str) -> _PhaseHandle:
        """Open phase *name*; nested phases pause (not double-count) parents."""
        return _PhaseHandle(self, name)

    def finish(self) -> "QueryBreakdown":
        """Close the window; sets :attr:`total_seconds` (== phase sum)."""
        now = time.perf_counter()
        self._flush(now)
        self._stack.clear()
        if self._origin is not None:
            self.total_seconds = now - self._origin
        return self

    # -- counters --------------------------------------------------------------

    def count(self, **deltas: Any) -> None:
        """Merge counters: numbers add, everything else is last-write-wins."""
        for key, value in deltas.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                self.counters[key] = value
            else:
                self.counters[key] = self.counters.get(key, 0) + value

    # -- export ----------------------------------------------------------------

    def phase_sum(self) -> float:
        return sum(self.phases.values())

    def to_json(self) -> dict[str, Any]:
        """The ``"analyze"`` payload: total, ordered phases, counters."""
        ordered = {name: self.phases[name] for name in PHASES if name in self.phases}
        for name in sorted(self.phases):
            if name not in ordered:
                ordered[name] = self.phases[name]
        return {
            "total_seconds": self.total_seconds,
            "phases": ordered,
            "counters": dict(sorted(self.counters.items())),
        }

    def __repr__(self) -> str:
        return f"QueryBreakdown({self.total_seconds * 1000:.3f} ms, {len(self.phases)} phases)"


def render_breakdown(payload: dict[str, Any]) -> str:
    """Human rendering of a :meth:`QueryBreakdown.to_json` payload."""
    total = payload.get("total_seconds", 0.0)
    lines = [f"query breakdown: {total * 1000:.3f} ms total"]
    for name, seconds in payload.get("phases", {}).items():
        share = (seconds / total * 100) if total else 0.0
        lines.append(f"  {name:<18} {seconds * 1000:>10.3f} ms  {share:5.1f}%")
    counters = payload.get("counters", {})
    if counters:
        lines.append("  counters: " + ", ".join(
            f"{key}={value}" for key, value in counters.items()
        ))
    return "\n".join(lines)


# -- the thread-local active breakdown ----------------------------------------

_ACTIVE = threading.local()


def get_breakdown() -> "QueryBreakdown | NullBreakdown":
    """This thread's active breakdown (the shared no-op by default)."""
    return getattr(_ACTIVE, "breakdown", NULL_BREAKDOWN)


class activate:
    """Context manager installing *breakdown* as this thread's active one."""

    def __init__(self, breakdown: QueryBreakdown | NullBreakdown):
        self.breakdown = breakdown
        self._previous: QueryBreakdown | NullBreakdown | None = None

    def __enter__(self) -> QueryBreakdown | NullBreakdown:
        self._previous = get_breakdown()
        _ACTIVE.breakdown = self.breakdown
        return self.breakdown

    def __exit__(self, *exc_info: object) -> None:
        _ACTIVE.breakdown = self._previous
