"""``repro.obs``: unified tracing, metrics, and structured logging.

Three pillars, one subsystem:

* :mod:`repro.obs.tracer` -- hierarchical spans (run -> stage -> partition
  task -> operator, warehouse segment reads, backtrace query phases) with
  Chrome trace-event / Perfetto export.  Off by default and zero-cost then.
* :mod:`repro.obs.metrics` -- the process-wide registry of counters, gauges,
  and fixed-bucket histograms that per-run accounting publishes into, with
  Prometheus text exposition and a JSON dump.
* :mod:`repro.obs.log` -- structured JSON logging keyed by run id.

Deep-observability extensions ride on the same pillars:

* :mod:`repro.obs.breakdown` -- per-query explain-analyze phase timings
  (:class:`QueryBreakdown`), threaded through backtrace and forward traces;
* :mod:`repro.obs.slowlog` -- the ``REPRO_SLOW_QUERY_MS`` over-budget ring
  buffer behind ``GET /debug/slow`` and ``repro stats --slow``;
* :mod:`repro.obs.profile` -- a stdlib sampling profiler emitting folded
  stacks per executor stage (``REPRO_PROFILE=on``).
"""

from repro.obs.breakdown import (
    NULL_BREAKDOWN,
    PHASES,
    QueryBreakdown,
    activate as activate_breakdown,
    get_breakdown,
    render_breakdown,
)
from repro.obs.log import RunLogger, enable as enable_logging, get_logger
from repro.obs.metrics import (
    BYTES_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    ROWS_BUCKETS,
    get_registry,
    set_build_info,
    set_registry,
)
from repro.obs.profile import SamplingProfiler, profile_enabled, profile_out_path
from repro.obs.slowlog import (
    SlowQueryLog,
    get_slow_log,
    observe_query,
    set_slow_log,
    slow_threshold_seconds,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    chrome_trace_events,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "chrome_trace_events",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "LATENCY_BUCKETS",
    "ROWS_BUCKETS",
    "BYTES_BUCKETS",
    "set_build_info",
    "RunLogger",
    "get_logger",
    "enable_logging",
    "QueryBreakdown",
    "NULL_BREAKDOWN",
    "PHASES",
    "get_breakdown",
    "activate_breakdown",
    "render_breakdown",
    "SlowQueryLog",
    "get_slow_log",
    "set_slow_log",
    "slow_threshold_seconds",
    "observe_query",
    "SamplingProfiler",
    "profile_enabled",
    "profile_out_path",
]
