"""``repro.obs``: unified tracing, metrics, and structured logging.

Three pillars, one subsystem:

* :mod:`repro.obs.tracer` -- hierarchical spans (run -> stage -> partition
  task -> operator, warehouse segment reads, backtrace query phases) with
  Chrome trace-event / Perfetto export.  Off by default and zero-cost then.
* :mod:`repro.obs.metrics` -- the process-wide registry of counters, gauges,
  and fixed-bucket histograms that per-run accounting publishes into, with
  Prometheus text exposition and a JSON dump.
* :mod:`repro.obs.log` -- structured JSON logging keyed by run id.
"""

from repro.obs.log import RunLogger, enable as enable_logging, get_logger
from repro.obs.metrics import (
    BYTES_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    ROWS_BUCKETS,
    get_registry,
    set_registry,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    chrome_trace_events,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "chrome_trace_events",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "LATENCY_BUCKETS",
    "ROWS_BUCKETS",
    "BYTES_BUCKETS",
    "RunLogger",
    "get_logger",
    "enable_logging",
]
