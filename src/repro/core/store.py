"""Provenance store: all operator provenance captured for one execution.

The store is the hand-over point between the eager capture phase (Sec. 5)
and the backtracing phase (Sec. 6): the executor registers one
:class:`~repro.core.operator_provenance.OperatorProvenance` per executed
operator, and the backtracing algorithm walks the store from the sink to the
sources.  The store also exposes the space accounting used for Fig. 8 and
resolves source identifiers back to input data items.
"""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable

from repro.core.operator_provenance import OperatorProvenance, ReadAssociations
from repro.errors import BacktraceError, ProvenanceError
from repro.nested.values import DataItem

__all__ = ["ProvenanceStore", "ProvenanceStoreProtocol", "ProvenanceSizeReport"]


class ProvenanceSizeReport:
    """Space-overhead summary of one captured execution (Fig. 8).

    ``lineage_bytes`` is what a Titian-style lineage capture would store;
    ``structural_bytes`` is the extra that structural provenance adds
    (positions in flattened collections plus the once-per-operator
    schema-level path records).
    """

    __slots__ = ("lineage_bytes", "structural_bytes", "association_count", "per_operator")

    def __init__(
        self,
        lineage_bytes: int,
        structural_bytes: int,
        association_count: int,
        per_operator: dict[int, tuple[str, int, int]],
    ):
        self.lineage_bytes = lineage_bytes
        self.structural_bytes = structural_bytes
        self.association_count = association_count
        #: oid -> (operator type, lineage bytes, structural extra bytes)
        self.per_operator = per_operator

    @property
    def total_bytes(self) -> int:
        return self.lineage_bytes + self.structural_bytes

    def __repr__(self) -> str:
        return (
            f"ProvenanceSizeReport(lineage={self.lineage_bytes}B, "
            f"structural=+{self.structural_bytes}B, records={self.association_count})"
        )


@runtime_checkable
class ProvenanceStoreProtocol(Protocol):
    """What backtracing and query resolution need from a provenance store.

    Two implementations exist: the in-memory :class:`ProvenanceStore` filled
    by the capture-enabled executor, and the on-disk
    :class:`~repro.warehouse.reader.LazyProvenanceStore` that decodes
    warehouse segments on demand.  Backtracing
    (:class:`~repro.core.backtrace.algorithms.Backtracer`) and result
    resolution (:meth:`~repro.core.backtrace.result.ProvenanceResult.resolve`)
    accept anything satisfying this protocol, which is what lets a
    persisted run answer queries without a full load.
    """

    def get(self, oid: int) -> OperatorProvenance: ...

    def has(self, oid: int) -> bool: ...

    def operators(self) -> Iterator[OperatorProvenance]: ...

    def is_source(self, oid: int) -> bool: ...

    def source_name(self, oid: int) -> str: ...

    def source_item(self, oid: int, item_id: int) -> DataItem: ...

    def source_items(self, oid: int) -> dict[int, DataItem]: ...

    def size_report(self) -> "ProvenanceSizeReport": ...

    def __len__(self) -> int: ...


class ProvenanceStore:
    """Holds the operator provenance of one (or more) executed pipelines."""

    def __init__(self) -> None:
        self._operators: dict[int, OperatorProvenance] = {}
        self._source_items: dict[int, dict[int, DataItem]] = {}
        self._source_names: dict[int, str] = {}

    # -- registration (capture phase) ---------------------------------------

    def register(self, provenance: OperatorProvenance) -> None:
        """Register the provenance of one executed operator."""
        if provenance.oid in self._operators:
            raise ProvenanceError(f"operator {provenance.oid} registered twice")
        self._operators[provenance.oid] = provenance

    def register_source_items(
        self, oid: int, name: str, items: dict[int, DataItem]
    ) -> None:
        """Remember the id -> item mapping of a read operator.

        Backtracing results resolve input identifiers to the actual input
        items through this mapping (the paper keeps inputs addressable via
        their annotation ids).
        """
        self._source_names[oid] = name
        self._source_items[oid] = items

    # -- lookup (query phase) ------------------------------------------------

    def get(self, oid: int) -> OperatorProvenance:
        """Return the provenance of operator *oid*."""
        provenance = self._operators.get(oid)
        if provenance is None:
            raise BacktraceError(f"no captured provenance for operator {oid}")
        return provenance

    def has(self, oid: int) -> bool:
        return oid in self._operators

    def operators(self) -> Iterator[OperatorProvenance]:
        return iter(self._operators.values())

    def is_source(self, oid: int) -> bool:
        """Return ``True`` if *oid* is a read operator (recursion anchor)."""
        return isinstance(self.get(oid).associations, ReadAssociations)

    def source_name(self, oid: int) -> str:
        """Return the dataset name of a read operator."""
        return self._source_names.get(oid, f"source-{oid}")

    def source_item(self, oid: int, item_id: int) -> DataItem:
        """Resolve a source identifier to the input data item."""
        items = self._source_items.get(oid)
        if items is None or item_id not in items:
            raise BacktraceError(f"source {oid} has no item with id {item_id}")
        return items[item_id]

    def source_items(self, oid: int) -> dict[int, DataItem]:
        """Return all id -> item mappings of a read operator."""
        return dict(self._source_items.get(oid, {}))

    def clear(self) -> None:
        """Drop all captured provenance (fresh run)."""
        self._operators.clear()
        self._source_items.clear()
        self._source_names.clear()

    # -- persistence ------------------------------------------------------------

    def serialize(self) -> bytes:
        """Encode the captured provenance into a compact, decodable blob.

        Eager capture does not end at collecting the pebbles -- Pebble
        persists them so provenance queries can run later.  The encoding is
        the warehouse segment format (:mod:`repro.warehouse.format`):
        length-prefixed records with 8 bytes per identifier and 4 per
        position (matching :meth:`size_report` accounting) and a sentinel
        for absent union/outer-join sides, so a legitimate id ``0`` stays
        distinguishable from "no match" and every aggregation record carries
        its input-id count.  Benchmark capture timings include this call so
        the measured overhead covers the full eager capture path.
        """
        from repro.warehouse.format import encode_store_blob

        return encode_store_blob(list(self._operators.values()))

    @classmethod
    def deserialize(cls, blob: bytes) -> "ProvenanceStore":
        """Rebuild a store from a :meth:`serialize` blob.

        Source items are not part of the blob (the warehouse keeps them in
        their own segments), so the restored store can backtrace but not
        resolve source identifiers to input items.
        """
        from repro.warehouse.format import decode_store_blob

        store = cls()
        for provenance in decode_store_blob(blob):
            store.register(provenance)
        return store

    # -- space accounting (Fig. 8) -------------------------------------------

    def size_report(self) -> ProvenanceSizeReport:
        """Summarise the stored bytes, split into lineage vs structural."""
        lineage = 0
        structural = 0
        records = 0
        per_operator: dict[int, tuple[str, int, int]] = {}
        for provenance in self._operators.values():
            op_lineage = provenance.lineage_bytes()
            op_structural = provenance.structural_extra_bytes()
            lineage += op_lineage
            structural += op_structural
            records += len(provenance.associations)
            per_operator[provenance.oid] = (provenance.op_type, op_lineage, op_structural)
        return ProvenanceSizeReport(lineage, structural, records, per_operator)

    def __len__(self) -> int:
        return len(self._operators)

    def __repr__(self) -> str:
        return f"ProvenanceStore({len(self._operators)} operators)"
