"""Provenance store: all operator provenance captured for one execution.

The store is the hand-over point between the eager capture phase (Sec. 5)
and the backtracing phase (Sec. 6): the executor registers one
:class:`~repro.core.operator_provenance.OperatorProvenance` per executed
operator, and the backtracing algorithm walks the store from the sink to the
sources.  The store also exposes the space accounting used for Fig. 8 and
resolves source identifiers back to input data items.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.operator_provenance import OperatorProvenance, ReadAssociations
from repro.errors import BacktraceError, ProvenanceError
from repro.nested.values import DataItem

__all__ = ["ProvenanceStore", "ProvenanceSizeReport"]


class ProvenanceSizeReport:
    """Space-overhead summary of one captured execution (Fig. 8).

    ``lineage_bytes`` is what a Titian-style lineage capture would store;
    ``structural_bytes`` is the extra that structural provenance adds
    (positions in flattened collections plus the once-per-operator
    schema-level path records).
    """

    __slots__ = ("lineage_bytes", "structural_bytes", "association_count", "per_operator")

    def __init__(
        self,
        lineage_bytes: int,
        structural_bytes: int,
        association_count: int,
        per_operator: dict[int, tuple[str, int, int]],
    ):
        self.lineage_bytes = lineage_bytes
        self.structural_bytes = structural_bytes
        self.association_count = association_count
        #: oid -> (operator type, lineage bytes, structural extra bytes)
        self.per_operator = per_operator

    @property
    def total_bytes(self) -> int:
        return self.lineage_bytes + self.structural_bytes

    def __repr__(self) -> str:
        return (
            f"ProvenanceSizeReport(lineage={self.lineage_bytes}B, "
            f"structural=+{self.structural_bytes}B, records={self.association_count})"
        )


class ProvenanceStore:
    """Holds the operator provenance of one (or more) executed pipelines."""

    def __init__(self) -> None:
        self._operators: dict[int, OperatorProvenance] = {}
        self._source_items: dict[int, dict[int, DataItem]] = {}
        self._source_names: dict[int, str] = {}

    # -- registration (capture phase) ---------------------------------------

    def register(self, provenance: OperatorProvenance) -> None:
        """Register the provenance of one executed operator."""
        if provenance.oid in self._operators:
            raise ProvenanceError(f"operator {provenance.oid} registered twice")
        self._operators[provenance.oid] = provenance

    def register_source_items(
        self, oid: int, name: str, items: dict[int, DataItem]
    ) -> None:
        """Remember the id -> item mapping of a read operator.

        Backtracing results resolve input identifiers to the actual input
        items through this mapping (the paper keeps inputs addressable via
        their annotation ids).
        """
        self._source_names[oid] = name
        self._source_items[oid] = items

    # -- lookup (query phase) ------------------------------------------------

    def get(self, oid: int) -> OperatorProvenance:
        """Return the provenance of operator *oid*."""
        provenance = self._operators.get(oid)
        if provenance is None:
            raise BacktraceError(f"no captured provenance for operator {oid}")
        return provenance

    def has(self, oid: int) -> bool:
        return oid in self._operators

    def operators(self) -> Iterator[OperatorProvenance]:
        return iter(self._operators.values())

    def is_source(self, oid: int) -> bool:
        """Return ``True`` if *oid* is a read operator (recursion anchor)."""
        return isinstance(self.get(oid).associations, ReadAssociations)

    def source_name(self, oid: int) -> str:
        """Return the dataset name of a read operator."""
        return self._source_names.get(oid, f"source-{oid}")

    def source_item(self, oid: int, item_id: int) -> DataItem:
        """Resolve a source identifier to the input data item."""
        items = self._source_items.get(oid)
        if items is None or item_id not in items:
            raise BacktraceError(f"source {oid} has no item with id {item_id}")
        return items[item_id]

    def source_items(self, oid: int) -> dict[int, DataItem]:
        """Return all id -> item mappings of a read operator."""
        return dict(self._source_items.get(oid, {}))

    def clear(self) -> None:
        """Drop all captured provenance (fresh run)."""
        self._operators.clear()
        self._source_items.clear()
        self._source_names.clear()

    # -- persistence ------------------------------------------------------------

    def serialize(self) -> bytes:
        """Encode the captured provenance into a compact byte string.

        Eager capture does not end at collecting the pebbles -- Pebble
        persists them so provenance queries can run later.  This encoder
        packs every id association (8 bytes per identifier, 4 per position)
        plus the once-per-operator schema-level path strings; benchmark
        capture timings include it so the measured overhead covers the full
        eager capture path.
        """
        from repro.core.operator_provenance import (
            AggregationAssociations,
            BinaryAssociations,
            FlattenAssociations,
            ReadAssociations,
            UnaryAssociations,
        )

        buffer = bytearray()
        for provenance in self._operators.values():
            buffer += provenance.oid.to_bytes(4, "little")
            buffer += provenance.op_type.encode()
            for input_ref in provenance.inputs:
                for path in sorted(input_ref.accessed_or_empty(), key=str):
                    buffer += str(path).encode()
            for path_in, path_out in provenance.manipulations_or_empty():
                buffer += str(path_in).encode()
                buffer += str(path_out).encode()
            associations = provenance.associations
            if isinstance(associations, ReadAssociations):
                for id_out in associations.ids:
                    buffer += id_out.to_bytes(8, "little")
            elif isinstance(associations, UnaryAssociations):
                for id_in, id_out in associations.records:
                    buffer += id_in.to_bytes(8, "little")
                    buffer += id_out.to_bytes(8, "little")
            elif isinstance(associations, FlattenAssociations):
                for id_in, pos, id_out in associations.records:
                    buffer += id_in.to_bytes(8, "little")
                    buffer += pos.to_bytes(4, "little")
                    buffer += id_out.to_bytes(8, "little")
            elif isinstance(associations, BinaryAssociations):
                for id_in1, id_in2, id_out in associations.records:
                    buffer += (id_in1 or 0).to_bytes(8, "little")
                    buffer += (id_in2 or 0).to_bytes(8, "little")
                    buffer += id_out.to_bytes(8, "little")
            elif isinstance(associations, AggregationAssociations):
                for ids_in, id_out in associations.records:
                    for id_in in ids_in:
                        buffer += id_in.to_bytes(8, "little")
                    buffer += id_out.to_bytes(8, "little")
        return bytes(buffer)

    # -- space accounting (Fig. 8) -------------------------------------------

    def size_report(self) -> ProvenanceSizeReport:
        """Summarise the stored bytes, split into lineage vs structural."""
        lineage = 0
        structural = 0
        records = 0
        per_operator: dict[int, tuple[str, int, int]] = {}
        for provenance in self._operators.values():
            op_lineage = provenance.lineage_bytes()
            op_structural = provenance.structural_extra_bytes()
            lineage += op_lineage
            structural += op_structural
            records += len(provenance.associations)
            per_operator[provenance.oid] = (provenance.op_type, op_lineage, op_structural)
        return ProvenanceSizeReport(lineage, structural, records, per_operator)

    def __len__(self) -> int:
        return len(self._operators)

    def __repr__(self) -> str:
        return f"ProvenanceStore({len(self._operators)} operators)"
