"""Structural provenance: the paper's primary contribution (Secs. 4-6)."""

from repro.core.paths import POS, Path, Step, parse_path
from repro.core.model import FullModelInterpreter, OperatorResult, ResultProvenance
from repro.core.operator_provenance import OperatorProvenance, UNDEFINED
from repro.core.store import ProvenanceSizeReport, ProvenanceStore

__all__ = [
    "POS",
    "FullModelInterpreter",
    "OperatorResult",
    "ResultProvenance",
    "Path",
    "Step",
    "parse_path",
    "OperatorProvenance",
    "UNDEFINED",
    "ProvenanceSizeReport",
    "ProvenanceStore",
]
