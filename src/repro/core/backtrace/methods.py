"""Tree update methods used by the backtracing algorithms (paper Sec. 6.2).

``manipulate_paths`` implements the *manipulatePath* method: for every
``(input path, output path)`` pair in an operator's ``M``, the subtree that
the operator wrote to the output path is moved back to the input path, and
the operator id is added to the manipulation set of every moved node.  All
pairs of one operator are applied in two phases (detach everything, then
graft everything) so renamings that swap attributes cannot corrupt the tree.

``access_path`` implements the *accessPath* method: the operator id is added
to the access set of the addressed node; nodes that are not yet part of the
tree are created with ``contributing = False`` -- they *influence* the
queried items without being needed to reproduce them.  Accessed struct paths
are expanded to their children per the input schema, following Example 6.6
("marks the user and its children as accessed").

``merge_trees`` implements the flatten-specific *mergeTrees*: substitute the
``[pos]`` placeholder per row, then union all trees of the same input id.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.backtrace.tree import BacktraceNode, BacktraceTree
from repro.core.paths import POS, Path
from repro.nested.schema import Schema
from repro.nested.types import BagType, SetType, StructType

__all__ = [
    "manipulate_paths",
    "access_path",
    "merge_trees",
    "remove_sibling_positions",
    "prune_output_residue",
]


def manipulate_paths(
    tree: BacktraceTree,
    pairs: Sequence[tuple[Path, Path]],
    oid: int,
) -> bool:
    """Undo the manipulations ``M`` of operator *oid* on *tree*.

    Each pair maps an input path to the output path the operator produced;
    backtracing therefore moves the subtree found at the *output* path back
    to the *input* path.  Pairs whose output path is absent from the tree
    are skipped (the queried items do not involve them) -- with one
    refinement: if a *leaf* of the tree is a strict prefix of the output
    path, the queried node stands for its whole subtree, so the missing tail
    is expanded before moving (querying the ``tweet`` struct as a whole
    traces its ``text`` constituent back to the input).

    Returns ``True`` if at least one pair matched the tree.
    """
    detached: list[tuple[Path, BacktraceNode]] = []
    for in_path, out_path in pairs:
        if in_path == out_path:
            # Identity mapping (e.g. join concatenation): nothing moves, but
            # the nodes were (re)produced by this operator.
            node = tree.find(out_path)
            if node is not None:
                node.mark_subtree_manipulated(oid)
                detached.append((in_path, _TOUCHED))
            continue
        subtree = _detach_expanding(tree, out_path)
        if subtree is not None:
            detached.append((in_path, subtree))
    matched = bool(detached)
    for in_path, subtree in detached:
        if subtree is _TOUCHED:
            continue
        subtree.mark_subtree_manipulated(oid)
        tree.graft(in_path, subtree)
    return matched


def _detach_expanding(tree: BacktraceTree, out_path: Path) -> BacktraceNode | None:
    """Detach the subtree at *out_path*, expanding through queried leaves.

    Navigating the tree labels of *out_path*: if a label is missing but the
    current node is a leaf, the remaining labels are created (inheriting the
    leaf's contributing flag) -- a queried leaf addresses its entire
    subtree.  If the label is missing on a non-leaf, the pair does not
    concern the queried data and ``None`` is returned.
    """
    labels = BacktraceTree._labels(out_path)
    node = tree.root
    walked: list[BacktraceNode] = [node]
    for index, label in enumerate(labels):
        found = node.child(label)
        if found is None:
            if node is tree.root or node.children:
                return None
            for missing in labels[index:]:
                node = node.ensure_child(missing, node.contributing)
                walked.append(node)
            break
        node = found
        walked.append(node)
    parent = walked[-2]
    target = walked[-1]
    parent.remove_child(target.label)
    return target


def prune_output_residue(tree: BacktraceTree, pairs: Sequence[tuple[Path, Path]]) -> None:
    """Remove leftover output-schema nodes after ``manipulate_paths``.

    A projection that builds nested output (``struct_(...)``) maps input
    paths to *deep* output paths (``text -> tweet.text``); after the moves,
    the enclosing output attribute (``tweet``) may linger as an empty node
    that does not exist in the operator's input schema.  The paper requires
    the tree to "conform to the schema of the input" after manipulatePath,
    so such now-childless top-level output attributes are dropped --
    provided no pair also *reads* an equally named input attribute.
    """
    in_heads = {in_path.head().name for in_path, _ in pairs if in_path.steps}
    out_heads = {out_path.head().name for _, out_path in pairs if out_path.steps}
    for head in out_heads - in_heads:
        node = tree.root.child(head)
        if node is not None and not node.children:
            tree.root.remove_child(head)


#: Sentinel marking identity pairs that touched the tree without moving data.
_TOUCHED = BacktraceNode("touched")


def access_path(
    tree: BacktraceTree,
    path: Path,
    oid: int,
    schema: Schema | None = None,
) -> None:
    """Record that operator *oid* accessed *path* (the accessPath method).

    If the path's nodes exist, the operator id is added to their access set;
    otherwise the nodes are created as influencing (``c = False``).  Paths
    carrying the ``[pos]`` placeholder mark every positional child already
    present; if none exists a placeholder node is created, meaning "every
    element".  When *schema* is given and the path resolves to a struct, the
    struct's children are expanded and marked as accessed as well.
    """
    terminals = _mark_along(tree.root, list(_expanded_labels(path)), oid)
    if schema is None:
        return
    try:
        target_type = schema.resolve(path)
    except Exception:
        return
    if isinstance(target_type, StructType):
        for node in terminals:
            _expand_struct(node, target_type, oid)


def _expanded_labels(path: Path) -> Iterable[object]:
    for step in path:
        yield step.name
        if step.pos is not None:
            yield step.pos if isinstance(step.pos, int) else POS


def _mark_along(
    root: BacktraceNode, labels: list[object], oid: int
) -> list[BacktraceNode]:
    """Walk *labels* from *root*, creating influencing nodes when absent.

    A ``POS`` label fans out over all existing positional children (or
    creates one placeholder child).  Returns the terminal nodes, whose
    access sets received *oid*.
    """
    frontier = [root]
    for label in labels:
        next_frontier: list[BacktraceNode] = []
        for node in frontier:
            if label is POS:
                positional = node.positional_children()
                if positional:
                    next_frontier.extend(positional)
                else:
                    next_frontier.append(node.ensure_child(POS, contributing=False))
            else:
                child = node.child(label)
                if child is None:
                    child = node.ensure_child(label, contributing=False)
                next_frontier.append(child)
        frontier = next_frontier
    for node in frontier:
        node.access.add(oid)
    return frontier


def _expand_struct(node: BacktraceNode, struct: StructType, oid: int) -> None:
    """Mark all fields of an accessed struct as accessed (Example 6.6)."""
    for name, field_type in struct.fields:
        child = node.child(name)
        if child is None:
            child = node.ensure_child(name, contributing=False)
        child.access.add(oid)
        if isinstance(field_type, StructType):
            _expand_struct(child, field_type, oid)
        elif isinstance(field_type, (BagType, SetType)) and isinstance(
            field_type.element, StructType
        ):
            for positional in child.positional_children() or [
                child.ensure_child(POS, contributing=False)
            ]:
                positional.access.add(oid)
                _expand_struct(positional, field_type.element, oid)


def merge_trees(
    rows: Iterable[tuple[int, int, BacktraceTree]],
) -> list[tuple[int, BacktraceTree]]:
    """The flatten-specific mergeTrees (Alg. 2, l. 2).

    *rows* are ``(input id, position, tree)`` triples produced by the generic
    backtracing step; each tree still holds ``[pos]`` placeholder nodes.  The
    placeholders are substituted with the row's concrete position, then all
    trees of the same input id are unioned.
    """
    merged: dict[int, BacktraceTree] = {}
    for item_id, pos, tree in rows:
        if pos > 0:
            tree.substitute_placeholders(pos)
        existing = merged.get(item_id)
        if existing is None:
            merged[item_id] = tree
        else:
            existing.merge_from(tree)
    return list(merged.items())


def remove_sibling_positions(tree: BacktraceTree, collection_path: Path) -> None:
    """The removeNodes call of Alg. 4 (l. 13).

    After the aggregation backtracing moved the queried element of a nested
    collection back to its input attribute, the collection node itself (with
    the remaining positions, which belong to *other* input items) is removed
    from this item's tree.
    """
    tree.remove(collection_path)
