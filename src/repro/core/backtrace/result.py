"""Provenance query results: backtraced trees resolved to input items.

Wraps the raw :class:`~repro.core.backtrace.algorithms.SourceProvenance`
structures with the conveniences a user (or the auditing / data-usage
use-cases) needs: resolving identifiers to the actual input items,
separating contributing from influencing attributes, and rendering the
Fig. 2-style trees.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.backtrace.algorithms import SourceProvenance
from repro.core.backtrace.tree import BacktraceNode, BacktraceTree, NodeLabel
from repro.core.paths import POS
from repro.core.store import ProvenanceStoreProtocol
from repro.nested.values import Bag, DataItem, NestedSet

__all__ = ["ProvenanceEntry", "SourceResult", "ProvenanceResult"]


def _labels_to_text(labels: tuple[NodeLabel, ...]) -> str:
    parts = []
    for label in labels:
        if label is POS:
            parts.append("[pos]")
        elif isinstance(label, int):
            parts.append(f"[{label}]")
        else:
            parts.append(("." if parts else "") + str(label))
    return "".join(parts)


class ProvenanceEntry:
    """One input item in the provenance: its id, data, and backtracing tree."""

    __slots__ = ("item_id", "item", "tree")

    def __init__(self, item_id: int, item: DataItem, tree: BacktraceTree):
        self.item_id = item_id
        self.item = item
        self.tree = tree

    def contributing_paths(self) -> list[str]:
        """Dotted paths of attributes needed to reproduce the queried items."""
        return sorted(
            _labels_to_text(labels)
            for labels, node in self.tree.paths()
            if node.contributing
        )

    def influencing_paths(self) -> list[str]:
        """Dotted paths of attributes that were accessed but not copied."""
        return sorted(
            _labels_to_text(labels)
            for labels, node in self.tree.paths()
            if not node.contributing
        )

    def accessed_by(self) -> dict[str, list[int]]:
        """Map each tree path to the operators that accessed it."""
        return {
            _labels_to_text(labels): sorted(node.access)
            for labels, node in self.tree.paths()
            if node.access
        }

    def manipulated_by(self) -> dict[str, list[int]]:
        """Map each tree path to the operators that manipulated it."""
        return {
            _labels_to_text(labels): sorted(node.manipulation)
            for labels, node in self.tree.paths()
            if node.manipulation
        }

    def render(self) -> str:
        """Render the backtracing tree (Fig. 2 style) with the id header."""
        return f"id {self.item_id}:\n{self.tree.render()}"

    def reduced_item(self) -> DataItem:
        """Return the minimal witness: the input item restricted to its tree.

        Only the attributes (and, for nested collections, the positions)
        present in the backtracing tree survive -- the green cells of
        Tab. 1.  Re-running the pipeline over these witnesses reproduces the
        queried result items, which is exactly the paper's sufficiency claim
        for contributing-plus-influencing data.
        """
        reduced = _reduce_value(self.item, self.tree.root)
        assert isinstance(reduced, DataItem)
        return reduced

    def __repr__(self) -> str:
        return f"ProvenanceEntry(id={self.item_id})"


def _instantiate(tree: BacktraceTree, item: DataItem) -> BacktraceTree:
    """Return *tree* restricted to the attributes *item* actually has.

    Backtracing through a black-box UDF (``map``) marks the whole input
    *schema* as manipulated.  The schema is sampled across all items, so an
    individual item may lack parts of it -- an optional subtree, an empty
    nested collection.  A per-item tree must conform to the item, not just
    the schema, or it reports dangling provenance.
    """
    clone = tree.copy()
    _prune_to_value(clone.root, item)
    return clone


def _prune_to_value(node: BacktraceNode, value: object) -> None:
    """Drop children of *node* that address nothing in *value* (in place)."""
    if not node.children:
        return
    if isinstance(value, DataItem):
        attrs = dict(value.pairs())
        for label in list(node.children):
            if isinstance(label, str) and label in attrs:
                _prune_to_value(node.children[label], attrs[label])
            else:
                node.remove_child(label)
    elif isinstance(value, (Bag, NestedSet)):
        elements = list(value)
        for label in list(node.children):
            child = node.children[label]
            if label is POS:
                if not elements:
                    node.remove_child(label)
                    continue
                # A placeholder stands for *any* position: keep whatever
                # resolves in at least one element (union of per-element
                # prunings -- nested collections are schema-homogeneous, so
                # this rarely differs from pruning against one element).
                pruned = None
                for element in elements:
                    candidate = child.copy()
                    _prune_to_value(candidate, element)
                    if pruned is None:
                        pruned = candidate
                    else:
                        pruned.merge_from(candidate)
                node.children[POS] = pruned
            elif isinstance(label, int) and 1 <= label <= len(elements):
                _prune_to_value(child, elements[label - 1])
            else:
                node.remove_child(label)
    else:
        # Scalar value below a node with children: a schema-level subtree
        # this item never had.
        node.children.clear()


def _reduce_value(value: object, node: BacktraceNode) -> object:
    """Restrict *value* to the children recorded under *node*."""
    if not node.children:
        return value
    if isinstance(value, DataItem):
        kept = []
        for name, attr_value in value.pairs():
            child = node.children.get(name)
            if child is not None:
                kept.append((name, _reduce_value(attr_value, child)))
        return DataItem(kept)
    if isinstance(value, (Bag, NestedSet)):
        placeholder = node.children.get(POS)
        elements = []
        for pos, element in enumerate(value, start=1):
            child = node.children.get(pos, placeholder)
            if child is not None:
                elements.append(_reduce_value(element, child))
        return Bag(elements) if isinstance(value, Bag) else NestedSet(elements)
    return value


class SourceResult:
    """The provenance that reached one input dataset."""

    __slots__ = ("oid", "name", "entries")

    def __init__(self, oid: int, name: str, entries: list[ProvenanceEntry]):
        self.oid = oid
        self.name = name
        self.entries = entries

    def ids(self) -> list[int]:
        return sorted(entry.item_id for entry in self.entries)

    def items(self) -> list[DataItem]:
        return [entry.item for entry in sorted(self.entries, key=lambda e: e.item_id)]

    def entry(self, item_id: int) -> ProvenanceEntry:
        for entry in self.entries:
            if entry.item_id == item_id:
                return entry
        raise KeyError(f"no provenance entry for input id {item_id}")

    def is_empty(self) -> bool:
        return not self.entries

    def __iter__(self) -> Iterator[ProvenanceEntry]:
        return iter(sorted(self.entries, key=lambda e: e.item_id))

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"SourceResult({self.name!r}, ids={self.ids()})"


class ProvenanceResult:
    """The full answer to a structural provenance query."""

    __slots__ = ("sources", "matched_output_ids")

    def __init__(self, sources: list[SourceResult], matched_output_ids: list[int]):
        self.sources = sources
        #: Identifiers of the result items the tree pattern matched.
        self.matched_output_ids = matched_output_ids

    @classmethod
    def resolve(
        cls,
        store: ProvenanceStoreProtocol,
        raw: list[SourceProvenance],
        matched_output_ids: list[int],
    ) -> "ProvenanceResult":
        """Resolve raw backtracing output against the store's source items.

        Stores over retained epoch layouts can *decay*: a window emitted
        after a TTL sweep may still reference member ids whose epochs were
        erased.  Such ids are silently dropped from the answer (the paper's
        deletion semantics: erased provenance is gone, not an error) --
        batch stores never decay, so a missing id stays a hard failure.

        Each tree is instantiated against its item: schema-level
        over-approximation (the conservative ``map`` rule) is pruned to the
        attributes the item actually carries.
        """
        decayed = getattr(store, "decayed_source_id", None)
        sources = []
        for source in raw:
            entries = [
                ProvenanceEntry(item_id, item, _instantiate(tree, item))
                for item_id, tree in source.structure.items()
                if decayed is None or not decayed(source.oid, item_id)
                for item in (store.source_item(source.oid, item_id),)
            ]
            entries.sort(key=lambda entry: entry.item_id)
            sources.append(SourceResult(source.oid, source.name, entries))
        return cls(sources, matched_output_ids)

    def source(self, name: str) -> SourceResult:
        """Return the (first) source result with the given dataset name."""
        for source in self.sources:
            if source.name == name:
                return source
        raise KeyError(f"no source named {name!r} in provenance result")

    def all_ids(self) -> dict[str, list[int]]:
        """Input ids per source name (multiple reads of a name are merged)."""
        merged: dict[str, set[int]] = {}
        for source in self.sources:
            merged.setdefault(source.name, set()).update(source.ids())
        return {name: sorted(ids) for name, ids in merged.items()}

    def lineage_ids(self) -> set[int]:
        """All contributing top-level input ids (what lineage tools return)."""
        ids: set[int] = set()
        for source in self.sources:
            ids.update(source.ids())
        return ids

    def render(self) -> str:
        """Render all backtraced trees grouped by source."""
        blocks = []
        for source in self.sources:
            header = f"== source {source.name} (operator {source.oid}) =="
            body = "\n".join(entry.render() for entry in source) or "(empty)"
            blocks.append(f"{header}\n{body}")
        return "\n\n".join(blocks)

    def __repr__(self) -> str:
        summary = ", ".join(f"{source.name}:{len(source)}" for source in self.sources)
        return f"ProvenanceResult({summary})"
