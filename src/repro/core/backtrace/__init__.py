"""Backtracing: provenance query-time reconstruction (paper Sec. 6)."""

from repro.core.backtrace.algorithms import Backtracer, SourceProvenance
from repro.core.backtrace.result import ProvenanceEntry, ProvenanceResult, SourceResult
from repro.core.backtrace.tree import BacktraceNode, BacktraceStructure, BacktraceTree

__all__ = [
    "Backtracer",
    "SourceProvenance",
    "ProvenanceEntry",
    "ProvenanceResult",
    "SourceResult",
    "BacktraceNode",
    "BacktraceStructure",
    "BacktraceTree",
]
