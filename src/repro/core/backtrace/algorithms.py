"""The backtracing algorithms (paper Sec. 6.3, Algs. 1-4).

:class:`Backtracer` walks the captured operator provenance from the sink
back to the sources.  The paper presents the walk as a recursion per linear
pipeline (Alg. 1) that is invoked once per input dataframe; we generalise it
to the full operator DAG: operators are processed in reverse-topological
order, every operator consumes the backtracing structure accumulated from
its successors and emits structures for its predecessors, and whatever
reaches a read operator is that source's provenance.  This is equivalent to
the paper's per-input recursion but visits shared sub-plans once.

Per operator type the step mirrors the paper exactly:

* **generic** (Alg. 3, used by filter/select): join ``B`` with the id
  associations, apply ``manipulatePath`` for every pair in ``M``, then
  ``accessPath`` for every path in ``A``.
* **flatten** (Alg. 2): generic step keeping the stored position, then
  ``mergeTrees`` substitutes the ``[pos]`` placeholders and merges trees of
  the same input id.
* **aggregation** (Alg. 4): positional flatten of the grouped ids,
  per-member placeholder substitution, ``inProv`` filtering, removal of
  sibling positions, and access marks for the grouping attributes.
* **join/union**: per-input id projection; the join prunes nodes that
  belong to the other input's schema, the union drops items whose id is
  undefined on the traced side.
* **map**: the tree is replaced by the whole input schema, marked as
  manipulated (``A`` and ``M`` are unknown for arbitrary UDFs).
"""

from __future__ import annotations

from repro.core.backtrace.methods import (
    access_path,
    manipulate_paths,
    merge_trees,
    prune_output_residue,
    remove_sibling_positions,
)
from repro.core.backtrace.tree import BacktraceNode, BacktraceStructure, BacktraceTree
from repro.core.operator_provenance import (
    AggregationAssociations,
    BinaryAssociations,
    FlattenAssociations,
    OperatorProvenance,
    ReadAssociations,
    UnaryAssociations,
)
from repro.core.paths import POS, Path
from repro.core.store import ProvenanceStoreProtocol
from repro.errors import BacktraceError
from repro.obs.tracer import get_tracer
from repro.nested.schema import Schema
from repro.nested.types import BagType, SetType, StructType

__all__ = ["Backtracer", "SourceProvenance"]


class SourceProvenance:
    """The backtraced provenance that reached one read operator."""

    __slots__ = ("oid", "name", "structure")

    def __init__(self, oid: int, name: str, structure: BacktraceStructure):
        self.oid = oid
        self.name = name
        self.structure = structure

    def ids(self) -> list[int]:
        """Identifiers of the input items in the provenance."""
        return sorted(self.structure.ids())

    def __repr__(self) -> str:
        return f"SourceProvenance({self.name!r}, ids={self.ids()})"


class Backtracer:
    """Backtraces a structure ``B`` through the captured provenance."""

    def __init__(self, store: ProvenanceStoreProtocol):
        self._store = store

    def backtrace(self, sink_oid: int, seeds: BacktraceStructure) -> list[SourceProvenance]:
        """Trace *seeds* (over the sink's output) back to every source.

        Returns one :class:`SourceProvenance` per read operator reachable
        from the sink, in operator-id order.  Sources whose provenance is
        empty (the queried items do not depend on them) are included with an
        empty structure, mirroring the paper's union backtracing that
        filters out undefined ids.
        """
        tracer = get_tracer()
        with tracer.span("toposort", "backtrace"):
            order = self._reverse_topological(sink_oid)
        frontier: dict[int, BacktraceStructure] = {sink_oid: seeds}
        results: list[SourceProvenance] = []
        with tracer.span("operator-walk", "backtrace", operators=len(order)):
            for oid in order:
                structure = frontier.pop(oid, BacktraceStructure())
                with tracer.span(f"walk op-{oid}", "backtrace") as span:
                    provenance = self._store.get(oid)
                    span.set(op_type=provenance.op_type, trees=len(structure.entries))
                    if isinstance(provenance.associations, ReadAssociations):
                        results.append(
                            SourceProvenance(oid, self._store.source_name(oid), structure)
                        )
                        continue
                    for pred_oid, contribution in self._step(provenance, structure):
                        existing = frontier.get(pred_oid)
                        if existing is None:
                            frontier[pred_oid] = contribution
                        else:
                            existing.merge_from(contribution)
        results.sort(key=lambda source: source.oid)
        return results

    # -- DAG ordering ------------------------------------------------------------

    def _reverse_topological(self, sink_oid: int) -> list[int]:
        """Order reachable operators so successors precede predecessors."""
        reachable: set[int] = set()
        stack = [sink_oid]
        predecessors: dict[int, list[int]] = {}
        while stack:
            oid = stack.pop()
            if oid in reachable:
                continue
            reachable.add(oid)
            preds = [
                input_ref.predecessor
                for input_ref in self._store.get(oid).inputs
                if input_ref.predecessor is not None
            ]
            predecessors[oid] = preds
            stack.extend(preds)
        # Kahn's algorithm on the successor relation: an operator can be
        # processed once all reachable successors handed their B down.
        successor_count: dict[int, int] = {oid: 0 for oid in reachable}
        for oid, preds in predecessors.items():
            for pred in preds:
                successor_count[pred] += 1
        ready = [oid for oid, count in successor_count.items() if count == 0]
        order: list[int] = []
        while ready:
            ready.sort(reverse=True)
            oid = ready.pop()
            order.append(oid)
            for pred in predecessors.get(oid, ()):
                successor_count[pred] -= 1
                if successor_count[pred] == 0:
                    ready.append(pred)
        if len(order) != len(reachable):
            raise BacktraceError("captured operator graph contains a cycle")
        return order

    # -- per-operator steps ---------------------------------------------------------

    def _step(
        self, provenance: OperatorProvenance, structure: BacktraceStructure
    ) -> list[tuple[int, BacktraceStructure]]:
        associations = provenance.associations
        if isinstance(associations, UnaryAssociations):
            if provenance.manipulations_undefined():
                return self._step_map(provenance, structure)
            return self._step_unary(provenance, structure)
        if isinstance(associations, FlattenAssociations):
            return self._step_flatten(provenance, structure)
        if isinstance(associations, AggregationAssociations):
            if provenance.op_type == "distinct":
                return self._step_distinct(provenance, structure)
            return self._step_aggregation(provenance, structure)
        if isinstance(associations, BinaryAssociations):
            if provenance.op_type == "union":
                return self._step_union(provenance, structure)
            return self._step_join(provenance, structure)
        raise BacktraceError(
            f"cannot backtrace operator {provenance.oid} of type {provenance.op_type!r}"
        )

    def _step_unary(
        self, provenance: OperatorProvenance, structure: BacktraceStructure
    ) -> list[tuple[int, BacktraceStructure]]:
        """Alg. 3 for filter and select."""
        input_ref = provenance.input(0)
        lookup = provenance.associations.by_output()  # type: ignore[attr-defined]
        result = BacktraceStructure()
        pairs = provenance.manipulations_or_empty()
        for item_id, tree in structure.items():
            id_in = lookup.get(item_id)
            if id_in is None:
                continue
            updated = tree.copy()
            manipulate_paths(updated, pairs, provenance.oid)
            prune_output_residue(updated, pairs)
            for accessed in sorted(input_ref.accessed_or_empty(), key=str):
                access_path(updated, accessed, provenance.oid, input_ref.schema)
            result.add(id_in, updated)
        return [(self._pred(input_ref), result)]

    def _step_map(
        self, provenance: OperatorProvenance, structure: BacktraceStructure
    ) -> list[tuple[int, BacktraceStructure]]:
        """Map: unknown semantics; mark the whole input schema manipulated."""
        input_ref = provenance.input(0)
        lookup = provenance.associations.by_output()  # type: ignore[attr-defined]
        result = BacktraceStructure()
        for item_id, _tree in structure.items():
            id_in = lookup.get(item_id)
            if id_in is None:
                continue
            result.add(id_in, _schema_tree(input_ref.schema, provenance.oid))
        return [(self._pred(input_ref), result)]

    def _step_flatten(
        self, provenance: OperatorProvenance, structure: BacktraceStructure
    ) -> list[tuple[int, BacktraceStructure]]:
        """Alg. 2: generic step, then mergeTrees over positions."""
        input_ref = provenance.input(0)
        lookup = provenance.associations.by_output()  # type: ignore[attr-defined]
        pairs = provenance.manipulations_or_empty()
        rows: list[tuple[int, int, BacktraceTree]] = []
        for item_id, tree in structure.items():
            record = lookup.get(item_id)
            if record is None:
                continue
            id_in, pos = record
            updated = tree.copy()
            manipulate_paths(updated, pairs, provenance.oid)
            for accessed in sorted(input_ref.accessed_or_empty(), key=str):
                access_path(updated, accessed, provenance.oid, input_ref.schema)
            rows.append((id_in, pos, updated))
        result = BacktraceStructure(merge_trees(rows))
        return [(self._pred(input_ref), result)]

    def _step_union(
        self, provenance: OperatorProvenance, structure: BacktraceStructure
    ) -> list[tuple[int, BacktraceStructure]]:
        """Union: project the defined input id per side, trees unchanged."""
        lookup = provenance.associations.by_output()  # type: ignore[attr-defined]
        left = BacktraceStructure()
        right = BacktraceStructure()
        for item_id, tree in structure.items():
            record = lookup.get(item_id)
            if record is None:
                continue
            id_in1, id_in2 = record
            if id_in1 is not None:
                left.add(id_in1, tree.copy())
            if id_in2 is not None:
                right.add(id_in2, tree.copy())
        return [
            (self._pred(provenance.input(0)), left),
            (self._pred(provenance.input(1)), right),
        ]

    def _step_join(
        self, provenance: OperatorProvenance, structure: BacktraceStructure
    ) -> list[tuple[int, BacktraceStructure]]:
        """Join: per side, prune the other side's attributes, mark A and M."""
        lookup = provenance.associations.by_output()  # type: ignore[attr-defined]
        outputs: list[tuple[int, BacktraceStructure]] = []
        for side in (0, 1):
            input_ref = provenance.input(side)
            schema = input_ref.schema
            own_names = set(schema.attribute_names()) if schema is not None else None
            pairs = [
                (in_path, out_path)
                for in_path, out_path in provenance.manipulations_or_empty()
                if own_names is None or (in_path.steps and in_path.head().name in own_names)
            ]
            side_structure = BacktraceStructure()
            for item_id, tree in structure.items():
                record = lookup.get(item_id)
                if record is None:
                    continue
                id_in = record[side]
                if id_in is None:
                    continue
                updated = tree.copy()
                if own_names is not None:
                    for label in list(updated.root.children):
                        if label not in own_names:
                            updated.root.remove_child(label)
                manipulate_paths(updated, pairs, provenance.oid)
                for accessed in sorted(input_ref.accessed_or_empty(), key=str):
                    access_path(updated, accessed, provenance.oid, schema)
                side_structure.add(id_in, updated)
            outputs.append((self._pred(input_ref), side_structure))
        return outputs

    def _step_distinct(
        self, provenance: OperatorProvenance, structure: BacktraceStructure
    ) -> list[tuple[int, BacktraceStructure]]:
        """Distinct: every duplicate input carries the whole output item.

        Unlike an aggregation there is no restructuring to undo and no
        inProv filtering -- each member *is* the queried item, so the tree
        passes through unchanged (plus access marks for the comparison).
        """
        input_ref = provenance.input(0)
        result = BacktraceStructure()
        for ids_in, id_out in provenance.associations.records:  # type: ignore[attr-defined]
            if id_out not in structure.entries:
                continue
            tree = structure.entries[id_out]
            for id_in in ids_in:
                member_tree = tree.copy()
                for accessed in sorted(input_ref.accessed_or_empty(), key=str):
                    access_path(member_tree, accessed, provenance.oid, input_ref.schema)
                result.add(id_in, member_tree)
        return [(self._pred(input_ref), result)]

    def _step_aggregation(
        self, provenance: OperatorProvenance, structure: BacktraceStructure
    ) -> list[tuple[int, BacktraceStructure]]:
        """Alg. 4: trace aggregation/nesting back to the grouped input."""
        input_ref = provenance.input(0)
        lookup = provenance.associations.by_output()  # type: ignore[attr-defined]
        pairs = provenance.manipulations_or_empty()
        result = BacktraceStructure()
        for item_id, tree in structure.items():
            ids_in = lookup.get(item_id)
            if ids_in is None:
                continue
            for position, id_in in enumerate(ids_in, start=1):
                member_tree = tree.copy()
                in_prov = False
                for in_path, out_path in pairs:
                    in_prov |= _undo_aggregate_pair(
                        member_tree, in_path, out_path, position, provenance.oid
                    )
                for in_path, out_path in pairs:
                    _drop_residual_output(member_tree, out_path)
                prune_output_residue(member_tree, pairs)
                if not in_prov:
                    continue
                for accessed in sorted(input_ref.accessed_or_empty(), key=str):
                    access_path(member_tree, accessed, provenance.oid, input_ref.schema)
                result.add(id_in, member_tree)
        return [(self._pred(input_ref), result)]

    @staticmethod
    def _pred(input_ref: object) -> int:
        predecessor = input_ref.predecessor  # type: ignore[attr-defined]
        if predecessor is None:
            raise BacktraceError("non-source operator without predecessor reference")
        return predecessor


def _graft_copy(tree: BacktraceTree, in_path: Path, node: "BacktraceNode", oid: int) -> None:
    """Graft a *copy* of a matched output node at the input path.

    The copy keeps the original tree intact so that several M pairs can
    consume the same matched output region (e.g. ``collect_list`` of a
    struct built from two input attributes); the residual output nodes are
    dropped afterwards by :func:`_drop_residual_output`.
    """
    copied = node.copy()
    copied.mark_subtree_manipulated(oid)
    tree.graft(in_path, copied)


def _undo_aggregate_pair(
    tree: BacktraceTree, in_path: Path, out_path: Path, position: int, oid: int
) -> bool:
    """Apply one M pair of an aggregation to one group member (Alg. 4 ll. 5-12).

    Returns ``True`` if the member's output path occurs in the tree (the
    member is ``inProv``).  Three match shapes are handled for nested
    collectors:

    * a concrete position in the tree (the pattern matched this member's
      element),
    * a ``[pos]`` placeholder child (the tree came from a schema expansion,
      e.g. backtracing a downstream ``map``), and
    * the bare collection attribute as a leaf (the query addresses the
      whole collection) -- every member produced one element, so every
      member is in the provenance.
    """
    if out_path.has_placeholder():
        concrete = out_path.substitute_placeholder(position)
        node = tree.find(concrete)
        if node is not None:
            _graft_copy(tree, in_path, node, oid)
            return True
        # Schema-expanded trees (e.g. from a downstream map) hold literal
        # [pos] placeholder nodes; find resolves the POS label directly.
        node = tree.find(out_path)
        if node is not None:
            _graft_copy(tree, in_path, node, oid)
            return True
        collection_node = tree.find(_collection_attr(out_path))
        if collection_node is not None and not collection_node.positional_children():
            # Whole-collection query: the attribute is a leaf (or holds
            # element constraints without positions) -- every member
            # produced one element, so every member is in the provenance.
            _graft_copy(tree, in_path, collection_node, oid)
            return True
        return False
    node = tree.find(out_path)
    if node is None:
        return False
    _graft_copy(tree, in_path, node, oid)
    return True


def _drop_residual_output(tree: BacktraceTree, out_path: Path) -> None:
    """Alg. 4 l. 13: remove remaining output-schema nodes of this pair."""
    if out_path.has_placeholder():
        remove_sibling_positions(tree, _collection_attr(out_path))
    else:
        tree.remove(out_path)


def _collection_attr(out_path: Path) -> Path:
    """Truncate at the placeholder step: ``tweets[pos].text`` -> ``tweets``."""
    steps = []
    for step in out_path:
        if step.pos is POS:
            steps.append(step.without_pos())
            break
        steps.append(step)
    return Path(steps)


def _schema_tree(schema: Schema | None, oid: int) -> BacktraceTree:
    """Build a whole-input-schema tree, all nodes manipulated by *oid*.

    Used when backtracing a ``map``: the UDF's internals are unknown, so the
    paper conservatively marks every input attribute as manipulated (and
    therefore contributing).
    """
    tree = BacktraceTree()
    if schema is None:
        return tree

    def build(node: BacktraceNode, struct: StructType) -> None:
        for name, field_type in struct.fields:
            child = node.ensure_child(name, contributing=True)
            child.manipulation.add(oid)
            if isinstance(field_type, StructType):
                build(child, field_type)
            elif isinstance(field_type, (BagType, SetType)):
                element = child.ensure_child(POS, contributing=True)
                element.manipulation.add(oid)
                if isinstance(field_type.element, StructType):
                    build(element, field_type.element)

    build(tree.root, schema.struct)
    return tree
