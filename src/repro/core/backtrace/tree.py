"""Backtracing structure and trees (paper Defs. 6.2 and 6.3).

The backtracing structure ``B`` is a bag of ``(id, T)`` pairs: a top-level
item identifier together with a backtracing tree over the attributes of that
item's schema.  Each tree node carries

* its label -- an attribute name (``str``), a concrete 1-based position in a
  nested collection (``int``), or the ``[pos]`` placeholder,
* the set ``A`` of operators that *accessed* the attribute,
* the set ``M`` of operators that *manipulated* (restructured) it, and
* the contributing flag ``c``: ``True`` if the attribute is needed to
  reproduce the queried items, ``False`` if it merely *influenced* them.

Trees are mutable -- the backtracing algorithm updates them in place while
stepping backwards through the pipeline -- and copyable, because one output
item's tree fans out to several input items (e.g. through an aggregation).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.paths import POS, Path
from repro.errors import BacktraceError

__all__ = ["BacktraceNode", "BacktraceTree", "BacktraceStructure", "NodeLabel"]

#: A node label: attribute name (str), concrete position (int), or POS.
NodeLabel = object


class BacktraceNode:
    """One node of a backtracing tree (Def. 6.3)."""

    __slots__ = ("label", "children", "access", "manipulation", "contributing")

    def __init__(self, label: NodeLabel, contributing: bool = True):
        self.label = label
        self.children: dict[NodeLabel, BacktraceNode] = {}
        self.access: set[int] = set()
        self.manipulation: set[int] = set()
        self.contributing = contributing

    def child(self, label: NodeLabel) -> "BacktraceNode | None":
        """Return the child with the given label, or ``None``."""
        return self.children.get(label)

    def ensure_child(self, label: NodeLabel, contributing: bool) -> "BacktraceNode":
        """Return the child with *label*, creating it if needed.

        An existing node's contributing flag is only ever *raised*: once an
        attribute is known to contribute it never degrades to influencing.
        """
        node = self.children.get(label)
        if node is None:
            node = BacktraceNode(label, contributing)
            self.children[label] = node
        elif contributing and not node.contributing:
            node.contributing = True
        return node

    def remove_child(self, label: NodeLabel) -> None:
        self.children.pop(label, None)

    def positional_children(self) -> list["BacktraceNode"]:
        """Return children whose label is a position or the placeholder."""
        return [
            node
            for label, node in self.children.items()
            if isinstance(label, int) or label is POS
        ]

    def copy(self) -> "BacktraceNode":
        """Deep-copy the subtree rooted at this node."""
        clone = BacktraceNode(self.label, self.contributing)
        clone.access = set(self.access)
        clone.manipulation = set(self.manipulation)
        clone.children = {label: child.copy() for label, child in self.children.items()}
        return clone

    def merge_from(self, other: "BacktraceNode") -> None:
        """Union another subtree into this one (same label assumed)."""
        self.access |= other.access
        self.manipulation |= other.manipulation
        self.contributing = self.contributing or other.contributing
        for label, other_child in other.children.items():
            mine = self.children.get(label)
            if mine is None:
                self.children[label] = other_child.copy()
            else:
                mine.merge_from(other_child)

    def mark_subtree_manipulated(self, oid: int) -> None:
        """Add *oid* to the manipulation set of this node and all descendants."""
        self.manipulation.add(oid)
        for child in self.children.values():
            child.mark_subtree_manipulated(oid)

    def walk(self, prefix: tuple[NodeLabel, ...] = ()) -> Iterator[tuple[tuple[NodeLabel, ...], "BacktraceNode"]]:
        """Yield ``(label path, node)`` pairs for all descendants (not self)."""
        for label, child in self.children.items():
            path = prefix + (label,)
            yield path, child
            yield from child.walk(path)

    def __repr__(self) -> str:
        flag = "c" if self.contributing else "i"
        return f"BacktraceNode({self.label!r}/{flag}, children={sorted(map(repr, self.children))})"


class BacktraceTree:
    """A backtracing tree: a virtual root over top-level attribute nodes."""

    __slots__ = ("root",)

    def __init__(self) -> None:
        self.root = BacktraceNode("root", contributing=True)

    # -- path navigation -----------------------------------------------------

    @staticmethod
    def _labels(path: Path) -> list[NodeLabel]:
        """Expand a path into tree labels: positions become child labels."""
        labels: list[NodeLabel] = []
        for step in path:
            labels.append(step.name)
            if step.pos is not None:
                labels.append(step.pos if isinstance(step.pos, int) else POS)
        return labels

    def find(self, path: Path) -> BacktraceNode | None:
        """Return the node at *path*, or ``None`` if absent."""
        node = self.root
        for label in self._labels(path):
            found = node.child(label)
            if found is None:
                return None
            node = found
        return node

    def contains(self, path: Path) -> bool:
        return self.find(path) is not None

    def ensure_path(self, path: Path, contributing: bool) -> BacktraceNode:
        """Create (or find) the node at *path*; returns the terminal node.

        Intermediate nodes inherit the contributing flag; existing nodes are
        only upgraded, never downgraded.
        """
        node = self.root
        for label in self._labels(path):
            node = node.ensure_child(label, contributing)
        return node

    def remove(self, path: Path) -> None:
        """Remove the node at *path* (with its subtree), if present."""
        labels = self._labels(path)
        if not labels:
            raise BacktraceError("cannot remove the virtual root")
        node = self.root
        for label in labels[:-1]:
            found = node.child(label)
            if found is None:
                return
            node = found
        node.remove_child(labels[-1])

    def detach(self, path: Path) -> BacktraceNode | None:
        """Remove and return the subtree at *path*, or ``None`` if absent."""
        labels = self._labels(path)
        if not labels:
            raise BacktraceError("cannot detach the virtual root")
        node = self.root
        for label in labels[:-1]:
            found = node.child(label)
            if found is None:
                return None
            node = found
        subtree = node.child(labels[-1])
        if subtree is not None:
            node.remove_child(labels[-1])
        return subtree

    def graft(self, path: Path, subtree: BacktraceNode) -> BacktraceNode:
        """Attach *subtree* at *path*, merging into any existing node.

        Intermediate nodes are created with the subtree's contributing flag
        (context needed to reproduce a contributing value contributes too).
        Returns the node now living at *path*.
        """
        labels = self._labels(path)
        if not labels:
            raise BacktraceError("cannot graft at the virtual root")
        node = self.root
        for label in labels[:-1]:
            node = node.ensure_child(label, subtree.contributing)
        existing = node.child(labels[-1])
        if existing is None:
            subtree.label = labels[-1]
            node.children[labels[-1]] = subtree
            return subtree
        existing.merge_from(subtree)
        return existing

    # -- whole-tree operations -------------------------------------------------

    def is_empty(self) -> bool:
        return not self.root.children

    def copy(self) -> "BacktraceTree":
        clone = BacktraceTree()
        clone.root = self.root.copy()
        return clone

    def merge_from(self, other: "BacktraceTree") -> None:
        self.root.merge_from(other.root)

    def substitute_placeholders(self, pos: int) -> None:
        """Replace every ``[pos]`` placeholder node label with *pos*.

        Used by the flatten backtracing (Alg. 2): after the generic step the
        tree holds placeholder nodes; each row knows its concrete position
        from the id associations.
        """
        _substitute(self.root, pos)

    def paths(self) -> list[tuple[tuple[NodeLabel, ...], BacktraceNode]]:
        """Return all ``(label path, node)`` pairs in the tree."""
        return list(self.root.walk())

    def contributing_leaf_paths(self) -> list[tuple[NodeLabel, ...]]:
        """Label paths of contributing nodes without contributing children."""
        result = []
        for labels, node in self.root.walk():
            if node.contributing and not any(
                child.contributing for child in node.children.values()
            ):
                result.append(labels)
        return result

    def render(self, indent: str = "  ") -> str:
        """Pretty-print the tree in the style of Fig. 2."""
        lines: list[str] = []

        def visit(node: BacktraceNode, depth: int) -> None:
            flag = "contributing" if node.contributing else "influencing"
            marks = []
            if node.access:
                marks.append("A=" + ",".join(map(str, sorted(node.access))))
            if node.manipulation:
                marks.append("M=" + ",".join(map(str, sorted(node.manipulation))))
            suffix = f" [{'; '.join(marks)}]" if marks else ""
            label = "[pos]" if node.label is POS else str(node.label)
            lines.append(f"{indent * depth}{label} ({flag}){suffix}")
            for key in sorted(node.children, key=lambda lab: (isinstance(lab, int), str(lab))):
                visit(node.children[key], depth + 1)

        for key in sorted(self.root.children, key=lambda lab: (isinstance(lab, int), str(lab))):
            visit(self.root.children[key], 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"BacktraceTree({len(self.root.children)} top-level nodes)"


def _substitute(node: BacktraceNode, pos: int) -> None:
    placeholder = node.children.pop(POS, None)
    if placeholder is not None:
        placeholder.label = pos
        existing = node.children.get(pos)
        if existing is None:
            node.children[pos] = placeholder
        else:
            existing.merge_from(placeholder)
    for child in list(node.children.values()):
        _substitute(child, pos)


class BacktraceStructure:
    """The backtracing structure ``B``: a mapping ``id -> tree`` (Def. 6.2).

    The paper models B as a bag of pairs; we merge trees that share an id
    (a pure union of provenance information) so B stays small while stepping
    backwards.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Iterable[tuple[int, BacktraceTree]] = ()):
        self.entries: dict[int, BacktraceTree] = {}
        for item_id, tree in entries:
            self.add(item_id, tree)

    def add(self, item_id: int, tree: BacktraceTree) -> None:
        """Insert an ``(id, tree)`` pair, merging trees of the same id."""
        existing = self.entries.get(item_id)
        if existing is None:
            self.entries[item_id] = tree
        else:
            existing.merge_from(tree)

    def ids(self) -> list[int]:
        return list(self.entries)

    def tree(self, item_id: int) -> BacktraceTree:
        try:
            return self.entries[item_id]
        except KeyError:
            raise BacktraceError(f"backtracing structure has no entry for id {item_id}") from None

    def items(self) -> list[tuple[int, BacktraceTree]]:
        return list(self.entries.items())

    def is_empty(self) -> bool:
        return not self.entries

    def copy(self) -> "BacktraceStructure":
        clone = BacktraceStructure()
        for item_id, tree in self.entries.items():
            clone.entries[item_id] = tree.copy()
        return clone

    def merge_from(self, other: "BacktraceStructure") -> None:
        for item_id, tree in other.entries.items():
            self.add(item_id, tree.copy())

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"BacktraceStructure(ids={sorted(self.entries)})"
