"""Tree patterns: the structural provenance query formalism (Sec. 6.1).

A tree pattern addresses combinations of nested items that are related by
their structure.  Each node names an attribute; edges are parent-child
(``/``) or ancestor-descendant (``//``); nodes can constrain the matched
value (equality or a predicate) and the number of matching occurrences
within their parent context (the ``[2,2]`` box of Fig. 4, which requires the
duplicate ``Hello World`` to occur exactly twice in the nested collection).

Patterns are built programmatically with :func:`child` / :func:`descendant`
or parsed from the compact text syntax of
:mod:`repro.core.treepattern.parser`.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import TreePatternError

__all__ = ["Edge", "PatternNode", "TreePattern", "child", "descendant", "NO_EQUALS"]


class Edge:
    """Edge types of a tree pattern."""

    CHILD = "child"
    DESCENDANT = "descendant"


class _NoEquals:
    """Marker distinguishing "no equality constraint" from ``equals=None``."""

    _instance: "_NoEquals | None" = None

    def __new__(cls) -> "_NoEquals":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<no equals constraint>"


#: Sentinel: the node has no equality constraint (``equals=None`` matches null).
NO_EQUALS = _NoEquals()


class PatternNode:
    """One named node of a tree pattern.

    The name ``*`` is a wildcard matching any attribute (useful for audit
    questions like "any attribute equal to this leaked value").

    ``equals`` constrains the matched value to a constant (:data:`NO_EQUALS`
    disables the check, so ``equals=None`` genuinely matches nulls);
    ``predicate`` is an arbitrary boolean callable over the value; ``count``
    restricts how many occurrences (satisfying both the value constraints
    and the node's sub-pattern) must exist within one parent match:
    ``(min, max)`` with ``max = None`` meaning unbounded.
    """

    __slots__ = ("name", "edge", "equals", "predicate", "count", "children")

    def __init__(
        self,
        name: str,
        edge: str = Edge.CHILD,
        equals: Any = NO_EQUALS,
        predicate: Callable[[Any], bool] | None = None,
        count: tuple[int, int | None] | None = None,
        children: Sequence["PatternNode"] = (),
    ):
        if not name:
            raise TreePatternError("pattern node needs a name ('*' matches any attribute)")
        if edge not in (Edge.CHILD, Edge.DESCENDANT):
            raise TreePatternError(f"unknown edge type {edge!r}")
        if count is not None:
            low, high = count
            if low < 0 or (high is not None and high < low):
                raise TreePatternError(f"invalid count constraint {count!r}")
        self.name = name
        self.edge = edge
        self.equals = equals
        self.predicate = predicate
        self.count = count
        self.children: tuple[PatternNode, ...] = tuple(children)

    def value_matches(self, value: Any) -> bool:
        """Check the node's value constraints against a matched value."""
        if self.equals is not NO_EQUALS and value != self.equals:
            return False
        if self.predicate is not None and not self.predicate(value):
            return False
        return True

    def has_value_constraint(self) -> bool:
        return self.equals is not NO_EQUALS or self.predicate is not None

    def render(self) -> str:
        """Render this node (and its sub-pattern) in the text syntax."""
        parts = [self.name]
        if self.equals is not NO_EQUALS:
            parts.append(f"={_render_value(self.equals)}")
        elif self.predicate is not None:
            parts.append("=?")
        if self.count is not None:
            low, high = self.count
            parts.append(f"[{low},{'*' if high is None else high}]")
        if self.children:
            inner = ", ".join(
                ("/" if node.edge == Edge.CHILD else "//") + node.render()
                for node in self.children
            )
            parts.append("{" + inner + "}")
        return "".join(parts)

    def __repr__(self) -> str:
        return f"PatternNode({self.render()!r})"


def _render_value(value: Any) -> str:
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


class TreePattern:
    """A whole tree pattern: a virtual root over top-level constraints.

    The root matches one top-level result item; every child node of the
    root must match within that item for the item to qualify.
    """

    __slots__ = ("children",)

    def __init__(self, children: Sequence[PatternNode]):
        if not children:
            raise TreePatternError("tree pattern needs at least one node under the root")
        self.children: tuple[PatternNode, ...] = tuple(children)

    @classmethod
    def root(cls, *children: PatternNode) -> "TreePattern":
        """Build a pattern from the root's child nodes."""
        return cls(children)

    def render(self) -> str:
        inner = ", ".join(
            ("/" if node.edge == Edge.CHILD else "//") + node.render()
            for node in self.children
        )
        return "root{" + inner + "}"

    def __repr__(self) -> str:
        return f"TreePattern({self.render()!r})"


class _Unset:
    _instance: "_Unset | None" = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unset>"


_UNSET = _Unset()


def child(
    name: str,
    *children: PatternNode,
    equals: Any = _UNSET,
    predicate: Callable[[Any], bool] | None = None,
    count: tuple[int, int | None] | None = None,
) -> PatternNode:
    """Build a parent-child pattern node.

    >>> child("tweets", child("text", equals="Hello World", count=(2, 2)))
    PatternNode('tweets{/text="Hello World"[2,2]}')
    """
    return PatternNode(
        name,
        edge=Edge.CHILD,
        equals=NO_EQUALS if equals is _UNSET else equals,
        predicate=predicate,
        count=count,
        children=children,
    )


def descendant(
    name: str,
    *children: PatternNode,
    equals: Any = _UNSET,
    predicate: Callable[[Any], bool] | None = None,
    count: tuple[int, int | None] | None = None,
) -> PatternNode:
    """Build an ancestor-descendant pattern node (matches at any depth)."""
    return PatternNode(
        name,
        edge=Edge.DESCENDANT,
        equals=NO_EQUALS if equals is _UNSET else equals,
        predicate=predicate,
        count=count,
        children=children,
    )
