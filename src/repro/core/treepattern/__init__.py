"""Tree-pattern queries over nested results (paper Sec. 6.1)."""

from repro.core.treepattern.matcher import (
    PatternMatch,
    match_item,
    match_partitions,
    match_rows,
    seed_structure,
)
from repro.core.treepattern.parser import parse_pattern
from repro.core.treepattern.pattern import Edge, PatternNode, TreePattern, child, descendant

__all__ = [
    "PatternMatch",
    "match_item",
    "match_partitions",
    "match_rows",
    "seed_structure",
    "parse_pattern",
    "Edge",
    "PatternNode",
    "TreePattern",
    "child",
    "descendant",
]
