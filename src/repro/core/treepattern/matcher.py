"""Tree-pattern matching over (partitioned) nested datasets.

The matcher identifies the result items a provenance question addresses
(phase one of the querying, Sec. 6.1) and seeds the backtracing structure:
for every matched top-level item it records the **value-level paths** (with
concrete positions) of all matched pattern nodes; these become the
contributing nodes of the initial backtracing trees (the right tree of
Fig. 2).

Matching is evaluated partition by partition -- each item is matched in
isolation, which is exactly what makes the paper's matcher distributable.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.backtrace.tree import BacktraceStructure, BacktraceTree
from repro.core.paths import Path, Step
from repro.core.treepattern.pattern import Edge, PatternNode, TreePattern
from repro.nested.values import Bag, DataItem, NestedSet

__all__ = ["PatternMatch", "match_item", "match_rows", "match_partitions", "seed_structure"]


class PatternMatch:
    """One matched top-level item with the value-level paths that matched."""

    __slots__ = ("item_id", "item", "paths")

    def __init__(self, item_id: Any, item: DataItem, paths: set[Path]):
        self.item_id = item_id
        self.item = item
        self.paths = paths

    def seed_tree(self) -> BacktraceTree:
        """Build the initial backtracing tree: matched paths contribute."""
        tree = BacktraceTree()
        for path in self.paths:
            tree.ensure_path(path, contributing=True)
        return tree

    def __repr__(self) -> str:
        rendered = sorted(str(path) for path in self.paths)
        return f"PatternMatch(id={self.item_id}, paths={rendered})"


def _with_pos(path: Path, pos: int) -> Path:
    """Attach a concrete position to the last step of *path*."""
    last = path.last()
    return Path(path.parent().steps + (Step(last.name, pos),))


def _direct_candidates(value: Any, path: Path, name: str) -> Iterator[tuple[Path, Any]]:
    """Parent-child candidates: attribute *name* of a struct, or of the
    elements of a collection (Fig. 4 navigates ``tweets / text`` through the
    bag's elements).  ``*`` matches every attribute."""
    if isinstance(value, DataItem):
        if name == "*":
            for attr, attr_value in value.pairs():
                yield path.child(attr), attr_value
        elif name in value:
            yield path.child(name), value[name]
    elif isinstance(value, (Bag, NestedSet)):
        for pos, element in enumerate(value, start=1):
            if not isinstance(element, DataItem):
                continue
            element_path = _with_pos(path, pos)
            if name == "*":
                for attr, attr_value in element.pairs():
                    yield element_path.child(attr), attr_value
            elif name in element:
                yield element_path.child(name), element[name]


def _descendant_candidates(value: Any, path: Path, name: str) -> Iterator[tuple[Path, Any]]:
    """Ancestor-descendant candidates: attribute *name* at any depth.

    ``*`` matches every attribute at every depth."""
    if isinstance(value, DataItem):
        for attr, attr_value in value.pairs():
            attr_path = path.child(attr)
            if name == "*" or attr == name:
                yield attr_path, attr_value
            yield from _descendant_candidates(attr_value, attr_path, name)
    elif isinstance(value, (Bag, NestedSet)):
        for pos, element in enumerate(value, start=1):
            yield from _descendant_candidates(element, _with_pos(path, pos), name)


def _expand_elements(
    node: PatternNode, candidates: Iterator[tuple[Path, Any]]
) -> Iterator[tuple[Path, Any]]:
    """Fan value-constrained collection candidates out over their elements.

    A constrained node naming a collection of *constants* (e.g. a
    ``collect_list`` of strings) addresses the individual elements:
    ``/labels="b"`` matches ``labels[2]`` when the second element is ``b``.
    Unconstrained nodes (and collections of structs, which are navigated via
    child patterns) pass through unchanged.
    """
    for path, value in candidates:
        if (
            node.has_value_constraint()
            and isinstance(value, (Bag, NestedSet))
            and not node.value_matches(value)
        ):
            for pos, element in enumerate(value, start=1):
                yield _with_pos(path, pos), element
        else:
            yield path, value


def _collection_context(candidate_path: Path) -> tuple[str, ...]:
    """Key identifying the collection instance a candidate sits in.

    The count constraint of Fig. 4 counts occurrences *within one nested
    collection*: the context of ``tweets[2].text`` is the ``tweets`` bag,
    the context of ``groups[1].vals[2]`` is ``groups[1].vals``.  Candidates
    without positional steps share the whole-item context.
    """
    last_positional = -1
    for index, step in enumerate(candidate_path.steps):
        if isinstance(step.pos, int):
            last_positional = index
    if last_positional < 0:
        return ()
    prefix = [str(step) for step in candidate_path.steps[:last_positional]]
    prefix.append(candidate_path.steps[last_positional].name)
    return tuple(prefix)


def _match_node(node: PatternNode, value: Any, path: Path) -> set[Path] | None:
    """Match *node* within the context value; return matched paths or None.

    A count constraint ``(low, high)`` applies per enclosing collection
    instance: with ``low > 0`` the node matches if at least one collection
    holds between ``low`` and ``high`` qualifying occurrences (only those
    collections' occurrences are reported); with ``low == 0`` the constraint
    is an upper bound that every collection must respect (``[0,0]`` is
    negation).  Without a count constraint the node must match at least
    once anywhere.
    """
    if node.edge == Edge.CHILD:
        candidates = _direct_candidates(value, path, node.name)
    else:
        candidates = _descendant_candidates(value, path, node.name)
    successes: list[tuple[tuple[str, ...], set[Path]]] = []
    for candidate_path, candidate_value in _expand_elements(node, candidates):
        if not node.value_matches(candidate_value):
            continue
        gathered: set[Path] = {candidate_path}
        failed = False
        for sub_node in node.children:
            sub_paths = _match_node(sub_node, candidate_value, candidate_path)
            if sub_paths is None:
                failed = True
                break
            gathered |= sub_paths
        if not failed:
            successes.append((_collection_context(candidate_path), gathered))
    if node.count is None:
        if not successes:
            return None
        matched: set[Path] = set()
        for _, paths in successes:
            matched |= paths
        return matched
    low, high = node.count
    by_context: dict[tuple[str, ...], list[set[Path]]] = {}
    for context, paths in successes:
        by_context.setdefault(context, []).append(paths)
    if low == 0:
        # Pure upper bound: every collection must respect it.
        if high is not None and any(len(group) > high for group in by_context.values()):
            return None
        return set().union(*(paths for group in by_context.values() for paths in group)) if successes else set()
    matched = set()
    satisfied = False
    for group in by_context.values():
        if low <= len(group) and (high is None or len(group) <= high):
            satisfied = True
            for paths in group:
                matched |= paths
    if not satisfied:
        return None
    return matched


def match_item(pattern: TreePattern, item: DataItem) -> set[Path] | None:
    """Match one top-level item; return the matched value-level paths.

    Returns ``None`` if the item does not satisfy the pattern.
    """
    gathered: set[Path] = set()
    for node in pattern.children:
        paths = _match_node(node, item, Path())
        if paths is None:
            return None
        gathered |= paths
    return gathered


def match_rows(
    pattern: TreePattern, rows: list[tuple[Any, DataItem]]
) -> list[PatternMatch]:
    """Match a list of ``(id, item)`` rows (one partition)."""
    matches = []
    for item_id, item in rows:
        paths = match_item(pattern, item)
        if paths is not None:
            matches.append(PatternMatch(item_id, item, paths))
    return matches


def match_partitions(
    pattern: TreePattern, partitions: list[list[tuple[Any, DataItem]]]
) -> list[PatternMatch]:
    """Match every partition independently (distributed-style execution)."""
    matches: list[PatternMatch] = []
    for partition in partitions:
        matches.extend(match_rows(pattern, partition))
    return matches


def seed_structure(matches: list[PatternMatch]) -> BacktraceStructure:
    """Build the initial backtracing structure from pattern matches.

    Requires the rows to carry provenance identifiers (capture enabled).
    """
    structure = BacktraceStructure()
    for match in matches:
        if match.item_id is None:
            continue
        structure.add(match.item_id, match.seed_tree())
    return structure
