"""Text syntax for tree patterns.

Grammar (whitespace-insensitive)::

    pattern  := "root" body
    body     := "{" edge-node ("," edge-node)* "}"
    edge-node:= ("//" | "/") node
    node     := (NAME | "*") constraint? count? body?
    constraint := "=" value
    count    := "[" INT "," (INT | "*") "]"
    value    := STRING | NUMBER | "true" | "false" | "null"

Examples::

    root{//id_str="lp", /tweets{/text="Hello World"[2,2]}}
    root{/user{/name="Lisa Paul"}}

``//`` introduces an ancestor-descendant edge, ``/`` a parent-child edge.
"""

from __future__ import annotations

import re
from typing import Any

from repro.core.treepattern.pattern import Edge, NO_EQUALS, PatternNode, TreePattern
from repro.errors import TreePatternSyntaxError

__all__ = ["parse_pattern"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<dslash>//)
  | (?P<slash>/)
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<comma>,)
  | (?P<eq>=)
  | (?P<star>\*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z0-9_\-]*)
    """,
    re.VERBOSE,
)


class _Tokenizer:
    def __init__(self, text: str):
        self.tokens: list[tuple[str, str]] = []
        position = 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if match is None:
                raise TreePatternSyntaxError(
                    f"unexpected character {text[position]!r} at offset {position} in pattern"
                )
            position = match.end()
            kind = match.lastgroup
            if kind != "ws":
                self.tokens.append((kind, match.group()))
        self.index = 0

    def peek(self) -> tuple[str, str] | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self, expected: str | None = None) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise TreePatternSyntaxError("unexpected end of pattern")
        if expected is not None and token[0] != expected:
            raise TreePatternSyntaxError(f"expected {expected}, got {token[1]!r}")
        self.index += 1
        return token

    def accept(self, expected: str) -> bool:
        token = self.peek()
        if token is not None and token[0] == expected:
            self.index += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)


def parse_pattern(text: str) -> TreePattern:
    """Parse the compact tree-pattern syntax into a :class:`TreePattern`."""
    tokenizer = _Tokenizer(text)
    kind, value = tokenizer.next("name")
    if value != "root":
        raise TreePatternSyntaxError(f"pattern must start with 'root', got {value!r}")
    children = _parse_body(tokenizer)
    if not tokenizer.at_end():
        leftover = tokenizer.peek()
        raise TreePatternSyntaxError(f"trailing input after pattern: {leftover[1]!r}")  # type: ignore[index]
    return TreePattern(children)


def _parse_body(tokenizer: _Tokenizer) -> list[PatternNode]:
    tokenizer.next("lbrace")
    nodes = [_parse_edge_node(tokenizer)]
    while tokenizer.accept("comma"):
        nodes.append(_parse_edge_node(tokenizer))
    tokenizer.next("rbrace")
    return nodes


def _parse_edge_node(tokenizer: _Tokenizer) -> PatternNode:
    if tokenizer.accept("dslash"):
        edge = Edge.DESCENDANT
    elif tokenizer.accept("slash"):
        edge = Edge.CHILD
    else:
        token = tokenizer.peek()
        raise TreePatternSyntaxError(
            f"expected '/' or '//' before node, got {token[1] if token else 'end'!r}"
        )
    if tokenizer.accept("star"):
        name = "*"
    else:
        _, name = tokenizer.next("name")
    equals: Any = NO_EQUALS
    if tokenizer.accept("eq"):
        equals = _parse_value(tokenizer)
    count = None
    if tokenizer.accept("lbracket"):
        _, low_text = tokenizer.next("number")
        tokenizer.next("comma")
        token = tokenizer.peek()
        if token is not None and token[0] == "star":
            tokenizer.next("star")
            high: int | None = None
        else:
            _, high_text = tokenizer.next("number")
            high = int(high_text)
        tokenizer.next("rbracket")
        count = (int(low_text), high)
    children: list[PatternNode] = []
    token = tokenizer.peek()
    if token is not None and token[0] == "lbrace":
        children = _parse_body(tokenizer)
    return PatternNode(name, edge=edge, equals=equals, count=count, children=children)


def _parse_value(tokenizer: _Tokenizer) -> Any:
    kind, text = tokenizer.next()
    if kind == "string":
        body = text[1:-1]
        return body.replace('\\"', '"').replace("\\\\", "\\")
    if kind == "number":
        return float(text) if "." in text else int(text)
    if kind == "name":
        if text == "true":
            return True
        if text == "false":
            return False
        if text == "null":
            return None
        raise TreePatternSyntaxError(f"unknown literal {text!r}")
    raise TreePatternSyntaxError(f"expected a value, got {text!r}")
