"""Consistent hashing: the placement primitive shared by shards and fleet.

Two layers place work by run id:

* the **warehouse** assigns each recorded run to a storage shard
  (:meth:`~repro.warehouse.service.Warehouse.record`), and
* the **router** assigns each run's queries to the serve worker whose
  caches are hot for it (:mod:`repro.serve.router`).

Both use the same :class:`HashRing` so the mapping has the two properties
distributed provenance querying needs (cf. "Efficiently Processing Workflow
Provenance Queries on SPARK", which partitions provenance and routes each
query to the partition that owns it):

* **determinism across processes** -- points come from SHA-1 over the node
  and key strings, never from Python's per-process ``hash()``, so a router
  restarted tomorrow (or a second router on another box) computes the same
  run -> worker map;
* **bounded movement** -- adding or removing one node only remaps the keys
  that fall between the changed node's points and their predecessors, in
  expectation ``keys / nodes`` of them, so growing a fleet does not flush
  every worker's hot caches.

``replicas`` virtual points per node smooth the distribution; 64 keeps the
ring small (a fleet is a handful of workers) while staying within a few
percent of uniform.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, Sequence

from repro.errors import ReproError

__all__ = ["HashRing", "stable_hash", "DEFAULT_REPLICAS"]

#: Virtual points per node on the ring.
DEFAULT_REPLICAS = 64


def stable_hash(text: str) -> int:
    """A process-independent 64-bit hash of *text* (SHA-1 prefix).

    ``hash()`` is salted per process (PYTHONHASHSEED), which would make
    placement a per-process accident; SHA-1 gives every router, worker, and
    CLI invocation the same answer for the same key.
    """
    digest = hashlib.sha1(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over named nodes."""

    def __init__(self, nodes: Iterable[str], replicas: int = DEFAULT_REPLICAS):
        self.replicas = int(replicas)
        if self.replicas < 1:
            raise ReproError(f"hash ring needs replicas >= 1, got {replicas}")
        self.nodes: tuple[str, ...] = tuple(dict.fromkeys(nodes))
        if not self.nodes:
            raise ReproError("hash ring needs at least one node")
        points: list[tuple[int, str]] = []
        for node in self.nodes:
            for replica in range(self.replicas):
                points.append((stable_hash(f"{node}#{replica}"), node))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [node for _, node in points]

    def assign(self, key: str) -> str:
        """The node owning *key*: the first ring point at or after its hash."""
        index = bisect_right(self._points, stable_hash(key)) % len(self._points)
        return self._owners[index]

    def preference(self, key: str, count: int | None = None) -> list[str]:
        """Distinct nodes in ring order from *key*'s point: the failover chain.

        ``preference(key)[0] == assign(key)``; the router walks this list
        when the owning worker is unhealthy, so failover is deterministic
        too (every router picks the same fallback).
        """
        want = len(self.nodes) if count is None else min(count, len(self.nodes))
        start = bisect_right(self._points, stable_hash(key))
        chain: list[str] = []
        for offset in range(len(self._points)):
            node = self._owners[(start + offset) % len(self._points)]
            if node not in chain:
                chain.append(node)
                if len(chain) == want:
                    break
        return chain

    def assignments(self, keys: Sequence[str]) -> dict[str, str]:
        """``key -> node`` for every key (a convenience for listings)."""
        return {key: self.assign(key) for key in keys}

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"HashRing({list(self.nodes)!r}, replicas={self.replicas})"
