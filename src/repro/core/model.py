"""The full structural provenance model (paper Sec. 4.3, Defs. 4.9-4.10).

Before introducing the *lightweight* capture of Sec. 5.1, the paper defines
structural provenance in full: for every operator ``O`` and every result
item ``r_i``, the result provenance

``rho_i = <r_i, I, M>``

holds the input provenance ``I`` -- a bag of ``<i, I_j, A>`` triples naming
each contributing input item together with the **value-level** paths ``A``
accessed on it -- and the mapping ``M`` of value-level input paths to result
paths describing the restructuring ``O`` performed.

This module implements that full model as a *reference interpreter*: it
evaluates a logical plan directly from the Tab. 5 inference rules, without
partitioning, identifiers, or any of the lightweight optimisations.  It is
deliberately simple and eager -- the verbose semantics the lightweight
capture compresses -- and exists so tests can cross-validate the production
path (executor + operator provenance + backtracing) against the definitions:

* the input/output item relations per operator must agree,
* the value-level accesses, collapsed to schema level, must equal the
  lightweight ``A``, and
* the value-level mappings, collapsed to placeholder form, must equal the
  lightweight ``M``.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.operator_provenance import UNDEFINED
from repro.core.paths import Path, Step
from repro.engine.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    FlattenNode,
    JoinNode,
    LimitNode,
    MapNode,
    PlanNode,
    ReadNode,
    SelectNode,
    SortNode,
    UnionNode,
    WithColumnNode,
)
from repro.errors import ExecutionError
from repro.nested.values import Bag, DataItem, NestedSet, coerce_value

__all__ = ["InputProvenance", "ResultProvenance", "OperatorResult", "FullModelInterpreter"]


class InputProvenance:
    """One triple ``<i, I_j, A>`` of Def. 4.10.

    ``input_index`` names which of the operator's input datasets the item
    came from; ``accessed`` holds the value-level paths accessed on it (or
    :data:`UNDEFINED` for opaque map functions).
    """

    __slots__ = ("item", "input_index", "accessed")

    def __init__(self, item: DataItem, input_index: int, accessed: Iterable[Path] | object):
        self.item = item
        self.input_index = input_index
        if accessed is UNDEFINED:
            self.accessed: frozenset[Path] | object = UNDEFINED
        else:
            self.accessed = frozenset(accessed)  # type: ignore[arg-type]

    def accessed_or_empty(self) -> frozenset[Path]:
        if self.accessed is UNDEFINED:
            return frozenset()
        return self.accessed  # type: ignore[return-value]

    def __repr__(self) -> str:
        return f"InputProvenance(input={self.input_index}, A={sorted(map(str, self.accessed_or_empty()))})"


class ResultProvenance:
    """``rho = <r, I, M>`` of Def. 4.9 for one result item."""

    __slots__ = ("item", "inputs", "mappings")

    def __init__(
        self,
        item: DataItem,
        inputs: Sequence[InputProvenance],
        mappings: Sequence[tuple[Path, Path]] | object,
    ):
        self.item = item
        self.inputs: tuple[InputProvenance, ...] = tuple(inputs)
        if mappings is UNDEFINED:
            self.mappings: tuple[tuple[Path, Path], ...] | object = UNDEFINED
        else:
            self.mappings = tuple(mappings)  # type: ignore[arg-type]

    def mappings_or_empty(self) -> tuple[tuple[Path, Path], ...]:
        if self.mappings is UNDEFINED:
            return ()
        return self.mappings  # type: ignore[return-value]

    def input_items(self) -> list[DataItem]:
        return [entry.item for entry in self.inputs]

    def __repr__(self) -> str:
        return f"ResultProvenance({self.item!r}, |I|={len(self.inputs)})"


class OperatorResult:
    """The result provenance ``R`` of one operator: a list of rho entries."""

    __slots__ = ("oid", "op_type", "entries")

    def __init__(self, oid: int, op_type: str, entries: list[ResultProvenance]):
        self.oid = oid
        self.op_type = op_type
        self.entries = entries

    def items(self) -> list[DataItem]:
        return [entry.item for entry in self.entries]

    def io_relation(self) -> list[tuple[frozenset[str], str]]:
        """(input item reprs, output item repr) pairs, for cross-validation."""
        return [
            (frozenset(repr(item) for item in entry.input_items()), repr(entry.item))
            for entry in self.entries
        ]

    def schema_level_accesses(self, input_index: int = 0) -> frozenset[Path]:
        """All value-level accesses of the given input, collapsed to schema level."""
        collapsed: set[Path] = set()
        for entry in self.entries:
            for input_provenance in entry.inputs:
                if input_provenance.input_index != input_index:
                    continue
                for path in input_provenance.accessed_or_empty():
                    collapsed.add(path.with_placeholders())
        return frozenset(collapsed)

    def schema_level_mappings(self) -> frozenset[tuple[Path, Path]]:
        """All value-level mappings collapsed to placeholder form."""
        collapsed: set[tuple[Path, Path]] = set()
        for entry in self.entries:
            for path_in, path_out in entry.mappings_or_empty():
                collapsed.add((path_in.with_placeholders(), path_out.with_placeholders()))
        return frozenset(collapsed)

    def __repr__(self) -> str:
        return f"OperatorResult(oid={self.oid}, {self.op_type}, {len(self.entries)} items)"


def _positional(path: Path, pos: int) -> Path:
    """Attach a concrete 1-based position to the last step of *path*."""
    last = path.last()
    return Path(path.parent().steps + (Step(last.name, pos),))


class FullModelInterpreter:
    """Evaluates a plan under the full provenance model (Defs. 4.9-4.10).

    ``run`` returns one :class:`OperatorResult` per operator of the plan, in
    topological order.  No identifiers, no partitions: the verbose eager
    semantics straight from Tab. 5.
    """

    def run(self, root: PlanNode) -> dict[int, OperatorResult]:
        results: dict[int, OperatorResult] = {}
        for node in root.walk():
            results[node.oid] = self._evaluate(node, results)
        return results

    # -- per-operator rules (Tab. 5) -------------------------------------------

    def _evaluate(self, node: PlanNode, results: dict[int, OperatorResult]) -> OperatorResult:
        if isinstance(node, ReadNode):
            entries = [
                ResultProvenance(item, (), ()) for item in node.loader()
            ]
            return OperatorResult(node.oid, node.op_type, entries)
        if isinstance(node, FilterNode):
            return self._filter(node, results[node.children[0].oid])
        if isinstance(node, SelectNode):
            return self._select(node, results[node.children[0].oid])
        if isinstance(node, MapNode):
            return self._map(node, results[node.children[0].oid])
        if isinstance(node, FlattenNode):
            return self._flatten(node, results[node.children[0].oid])
        if isinstance(node, UnionNode):
            return self._union(node, results[node.children[0].oid], results[node.children[1].oid])
        if isinstance(node, JoinNode):
            return self._join(node, results[node.children[0].oid], results[node.children[1].oid])
        if isinstance(node, AggregateNode):
            return self._aggregate(node, results[node.children[0].oid])
        if isinstance(node, DistinctNode):
            return self._distinct(node, results[node.children[0].oid])
        if isinstance(node, SortNode):
            return self._sort(node, results[node.children[0].oid])
        if isinstance(node, LimitNode):
            return self._limit(node, results[node.children[0].oid])
        if isinstance(node, WithColumnNode):
            return self._with_column(node, results[node.children[0].oid])
        raise ExecutionError(f"full model has no rule for {type(node).__name__}")

    def _distinct(self, node: DistinctNode, child: OperatorResult) -> OperatorResult:
        """Distinct: every duplicate contributes; whole items are accessed."""
        groups: dict[DataItem, list[DataItem]] = {}
        order: list[DataItem] = []
        for item in child.items():
            if item not in groups:
                groups[item] = []
                order.append(item)
            groups[item].append(item)
        entries = []
        for item in order:
            accessed = [Path().child(name) for name in item.attributes()]
            entries.append(
                ResultProvenance(
                    item,
                    [InputProvenance(member, 0, accessed) for member in groups[item]],
                    (),
                )
            )
        return OperatorResult(node.oid, node.op_type, entries)

    def _sort(self, node: SortNode, child: OperatorResult) -> OperatorResult:
        """Sort: items pass through; keys are accessed, M is empty."""
        accessed = sorted(
            {path.schematic() for key in node.keys for path in key.accessed_paths()},
            key=str,
        )

        def sort_key(item: DataItem) -> tuple:
            values = []
            for key in node.keys:
                value = key.evaluate(item)
                values.append((value is not None, type(value).__name__, value))
            return tuple(values)

        ordered = sorted(child.items(), key=sort_key, reverse=node.descending)
        entries = [
            ResultProvenance(item, [InputProvenance(item, 0, accessed)], ())
            for item in ordered
        ]
        return OperatorResult(node.oid, node.op_type, entries)

    def _limit(self, node: LimitNode, child: OperatorResult) -> OperatorResult:
        """Limit: the first n items pass through untouched."""
        entries = [
            ResultProvenance(item, [InputProvenance(item, 0, ())], ())
            for item in child.items()[: node.n]
        ]
        return OperatorResult(node.oid, node.op_type, entries)

    def _with_column(self, node: WithColumnNode, child: OperatorResult) -> OperatorResult:
        """with_column: one derived attribute; the rest passes through."""
        accessed = sorted(
            (path.schematic() for path in node.expression.accessed_paths()), key=str
        )
        mappings = node.manipulation_pairs()
        entries = []
        for item in child.items():
            out_item = item.replace(**{node.name: node.expression.evaluate(item)})
            entries.append(
                ResultProvenance(out_item, [InputProvenance(item, 0, accessed)], mappings)
            )
        return OperatorResult(node.oid, node.op_type, entries)

    def _filter(self, node: FilterNode, child: OperatorResult) -> OperatorResult:
        """Filter rule: I = {{<i, I1, paths of phi>}}, M = empty."""
        accessed = sorted(
            (path.schematic() for path in node.predicate.accessed_paths()), key=str
        )
        entries = []
        for item in child.items():
            if node.predicate.evaluate(item):
                entries.append(
                    ResultProvenance(item, [InputProvenance(item, 0, accessed)], ())
                )
        return OperatorResult(node.oid, node.op_type, entries)

    def _select(self, node: SelectNode, child: OperatorResult) -> OperatorResult:
        """Select rule: A = selected paths, M = {(a_k^i, a_k^r)}."""
        accessed = sorted(
            {
                path.schematic()
                for projection in node.projections
                for path in projection.accessed_paths()
            },
            key=str,
        )
        mappings = node.manipulation_pairs()
        entries = []
        for item in child.items():
            out_item = DataItem(
                (name, projection.evaluate(item))
                for name, projection in zip(node.output_names, node.projections)
            )
            entries.append(
                ResultProvenance(out_item, [InputProvenance(item, 0, accessed)], mappings)
            )
        return OperatorResult(node.oid, node.op_type, entries)

    def _map(self, node: MapNode, child: OperatorResult) -> OperatorResult:
        """Map rule: I = {{<i, I1, bot>}}, M = bot."""
        entries = []
        for item in child.items():
            out_value = coerce_value(node.fn(item))
            if not isinstance(out_value, DataItem):
                raise ExecutionError(f"map {node.name!r} must return a data item")
            entries.append(
                ResultProvenance(out_value, [InputProvenance(item, 0, UNDEFINED)], UNDEFINED)
            )
        return OperatorResult(node.oid, node.op_type, entries)

    def _flatten(self, node: FlattenNode, child: OperatorResult) -> OperatorResult:
        """Flatten rule: per element at position x,
        I = {{<i, I1, {(a_col[x])^i}>}} and M = {((a_col[x])^i, a_new^r)}."""
        entries = []
        out_path = Path().child(node.new_name)
        for item in child.items():
            collection = (
                node.col_path.evaluate(item) if node.col_path.resolves_in(item) else None
            )
            if collection is None:
                elements: tuple[Any, ...] = ()
            elif isinstance(collection, (Bag, NestedSet)):
                elements = collection.items()
            else:
                raise ExecutionError(f"flatten path {node.col_path} is not a collection")
            if not elements and node.outer:
                element_path = node.element_path
                entries.append(
                    ResultProvenance(
                        item.replace(**{node.new_name: None}),
                        [InputProvenance(item, 0, [element_path])],
                        [(element_path, out_path)],
                    )
                )
                continue
            for position, element in enumerate(elements, start=1):
                element_path = _positional(node.col_path, position)
                entries.append(
                    ResultProvenance(
                        item.replace(**{node.new_name: element}),
                        [InputProvenance(item, 0, [element_path])],
                        [(element_path, out_path)],
                    )
                )
        return OperatorResult(node.oid, node.op_type, entries)

    def _union(
        self, node: UnionNode, left: OperatorResult, right: OperatorResult
    ) -> OperatorResult:
        """Union rule: A = M = empty; items pass through per side."""
        entries = [
            ResultProvenance(item, [InputProvenance(item, 0, ())], ())
            for item in left.items()
        ]
        entries.extend(
            ResultProvenance(item, [InputProvenance(item, 1, ())], ())
            for item in right.items()
        )
        return OperatorResult(node.oid, node.op_type, entries)

    def _join(
        self, node: JoinNode, left: OperatorResult, right: OperatorResult
    ) -> OperatorResult:
        """Join rule: per matching pair, A = condition paths per side and
        M maps every top-level schema path of both sides identically."""
        condition_paths = node.condition_paths()
        entries = []
        for left_item in left.items():
            for right_item in right.items():
                merged = left_item.merged_with(right_item)
                if not node.condition.evaluate(merged):
                    continue
                left_accessed = sorted(
                    (path for path in condition_paths if path.steps and path.head().name in left_item),
                    key=str,
                )
                right_accessed = sorted(
                    (path for path in condition_paths if path.steps and path.head().name in right_item),
                    key=str,
                )
                mappings = [
                    (Path().child(name), Path().child(name)) for name in left_item.attributes()
                ]
                mappings.extend(
                    (Path().child(name), Path().child(name)) for name in right_item.attributes()
                )
                entries.append(
                    ResultProvenance(
                        merged,
                        [
                            InputProvenance(left_item, 0, left_accessed),
                            InputProvenance(right_item, 1, right_accessed),
                        ],
                        mappings,
                    )
                )
        return OperatorResult(node.oid, node.op_type, entries)

    def _aggregate(self, node: AggregateNode, child: OperatorResult) -> OperatorResult:
        """Grouping + aggregation rule: per group, I holds every member with
        A = group keys plus aggregated attributes; M maps aggregated
        attributes to the new output attributes (with concrete positions for
        nested collectors)."""
        accessed = sorted(
            {
                path.schematic()
                for key in node.keys
                for path in key.accessed_paths()
            }
            | {
                path.schematic()
                for aggregate in node.aggregates
                for path in aggregate.accessed_paths()
            },
            key=str,
        )
        groups: dict[tuple[Any, ...], list[DataItem]] = {}
        for item in child.items():
            key_values = tuple(key.evaluate(item) for key in node.keys)
            groups.setdefault(key_values, []).append(item)
        entries = []
        for key_values, members in groups.items():
            fields: list[tuple[str, Any]] = list(zip(node.key_names, key_values))
            for aggregate in node.aggregates:
                values = [aggregate.column.evaluate(member) for member in members]
                fields.append((aggregate.output_name(), aggregate.apply(values)))
            out_item = DataItem(fields)
            # Expand the schema-level pairs of the grouping/aggregation rule
            # to concrete positions: the x-th group member produced the x-th
            # element of every nested collection.
            mappings: list[tuple[Path, Path]] = []
            for in_path, out_path in node.manipulation_pairs():
                if out_path.has_placeholder():
                    for position in range(1, len(members) + 1):
                        mappings.append((in_path, out_path.substitute_placeholder(position)))
                else:
                    mappings.append((in_path, out_path))
            entries.append(
                ResultProvenance(
                    out_item,
                    [InputProvenance(member, 0, accessed) for member in members],
                    mappings,
                )
            )
        return OperatorResult(node.oid, node.op_type, entries)
