"""Access paths over nested data items (paper Def. 4.3).

A path navigates from a context data item into nested data.  Each step names
an attribute and may carry a positional access into the attribute's
collection value: ``user_mentions[1].id_str`` evaluates to the ``id_str`` of
the **first** (positions are 1-based, following the paper) element of the
``user_mentions`` bag.

Besides concrete positions, a step may carry the schema-level placeholder
``[pos]`` used by the lightweight capture (Sec. 5.1): operator provenance
records paths once per operator with placeholders, and backtracing
substitutes the concrete positions stored in the id associations.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Iterator

from repro.errors import PathEvaluationError, PathSyntaxError

# ``repro.nested`` re-exports its schema module, which itself needs the
# Path/Step/POS types from this module.  Importing the values module lazily
# (at first evaluation) breaks that import cycle while keeping the public
# structure of both packages.
Bag = DataItem = NestedSet = None  # populated by _load_value_types()


def _load_value_types() -> None:
    global Bag, DataItem, NestedSet
    if DataItem is None:
        from repro.nested.values import Bag as _Bag, DataItem as _DataItem, NestedSet as _NestedSet

        Bag, DataItem, NestedSet = _Bag, _DataItem, _NestedSet

__all__ = ["POS", "Step", "Path", "parse_path", "enumerate_paths"]


class _PosPlaceholder:
    """Singleton marker for the schema-level ``[pos]`` placeholder."""

    _instance: "_PosPlaceholder | None" = None

    def __new__(cls) -> "_PosPlaceholder":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "pos"


#: The ``[pos]`` placeholder used in schema-level paths.
POS = _PosPlaceholder()

_STEP_RE = re.compile(r"^(?P<name>[A-Za-z_][A-Za-z0-9_\-]*)(\[(?P<pos>pos|\d+)\])?$")


class Step:
    """One path step: an attribute name with an optional positional access.

    ``pos`` is ``None`` (no positional access), a 1-based ``int``, or the
    :data:`POS` placeholder.
    """

    __slots__ = ("name", "pos")

    def __init__(self, name: str, pos: int | _PosPlaceholder | None = None):
        if not name:
            raise PathSyntaxError("path step needs a non-empty attribute name")
        if isinstance(pos, int) and (isinstance(pos, bool) or pos < 1):
            raise PathSyntaxError(f"positions are 1-based integers, got {pos!r}")
        self.name = name
        self.pos = pos

    def without_pos(self) -> "Step":
        """Return the step with any positional access removed."""
        if self.pos is None:
            return self
        return Step(self.name)

    def with_placeholder(self) -> "Step":
        """Return the step with a concrete position replaced by ``[pos]``."""
        if isinstance(self.pos, int):
            return Step(self.name, POS)
        return self

    def with_pos(self, pos: int) -> "Step":
        """Return the step with the concrete 1-based position *pos*."""
        return Step(self.name, pos)

    def matches_schematically(self, other: "Step") -> bool:
        """Compare steps by name only, ignoring positions and placeholders."""
        return self.name == other.name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Step):
            return NotImplemented
        return self.name == other.name and self.pos == other.pos

    def __hash__(self) -> int:
        return hash((self.name, None if self.pos is None else repr(self.pos)))

    def __str__(self) -> str:
        if self.pos is None:
            return self.name
        return f"{self.name}[{self.pos!r}]" if self.pos is POS else f"{self.name}[{self.pos}]"

    def __repr__(self) -> str:
        return f"Step({str(self)!r})"


class Path:
    """An access path: a sequence of :class:`Step` objects.

    Paths are immutable and hashable so they can populate the accessed /
    manipulated path sets of the provenance model.
    """

    __slots__ = ("steps",)

    def __init__(self, steps: Iterable[Step] = ()):
        self.steps: tuple[Step, ...] = tuple(steps)

    # -- construction -----------------------------------------------------

    @classmethod
    def of(cls, *names: str) -> "Path":
        """Build a path from attribute names (or full step strings)."""
        return parse_path(".".join(names))

    def child(self, name: str, pos: int | _PosPlaceholder | None = None) -> "Path":
        """Return this path extended by one step."""
        return Path(self.steps + (Step(name, pos),))

    def concat(self, other: "Path") -> "Path":
        """Return the concatenation of two paths."""
        return Path(self.steps + other.steps)

    # -- structure --------------------------------------------------------

    def is_empty(self) -> bool:
        return not self.steps

    def head(self) -> Step:
        if not self.steps:
            raise PathEvaluationError("empty path has no head")
        return self.steps[0]

    def tail(self) -> "Path":
        return Path(self.steps[1:])

    def last(self) -> Step:
        if not self.steps:
            raise PathEvaluationError("empty path has no last step")
        return self.steps[-1]

    def parent(self) -> "Path":
        """Return the path without its last step."""
        return Path(self.steps[:-1])

    def startswith(self, prefix: "Path", schematic: bool = False) -> bool:
        """Return ``True`` if *prefix* is a prefix of this path.

        With ``schematic=True`` the comparison ignores positions.
        """
        if len(prefix.steps) > len(self.steps):
            return False
        for mine, theirs in zip(self.steps, prefix.steps):
            if schematic:
                if not mine.matches_schematically(theirs):
                    return False
            elif mine != theirs:
                return False
        return True

    def replace_prefix(self, old: "Path", new: "Path") -> "Path":
        """Return the path with prefix *old* replaced by *new*.

        Raises :class:`PathEvaluationError` if *old* is not a prefix.
        """
        if not self.startswith(old):
            raise PathEvaluationError(f"{self} does not start with {old}")
        return Path(new.steps + self.steps[len(old.steps):])

    def schematic(self) -> "Path":
        """Return the schema-level path: all positions dropped."""
        return Path(step.without_pos() for step in self.steps)

    def with_placeholders(self) -> "Path":
        """Return the path with every concrete position replaced by ``[pos]``."""
        return Path(step.with_placeholder() for step in self.steps)

    def has_placeholder(self) -> bool:
        """Return ``True`` if any step carries the ``[pos]`` placeholder."""
        return any(step.pos is POS for step in self.steps)

    def substitute_placeholder(self, pos: int) -> "Path":
        """Replace the first ``[pos]`` placeholder with a concrete position."""
        steps = list(self.steps)
        for index, step in enumerate(steps):
            if step.pos is POS:
                steps[index] = step.with_pos(pos)
                return Path(steps)
        raise PathEvaluationError(f"{self} has no [pos] placeholder to substitute")

    # -- evaluation -------------------------------------------------------

    def evaluate(self, item: DataItem) -> Any:
        """Evaluate the path against a context data item (Def. 4.3).

        Raises :class:`PathEvaluationError` if a step does not resolve.
        A step over a ``None`` value resolves to ``None`` (missing nested
        data), mirroring SQL-style null propagation in DISC systems.
        """
        _load_value_types()
        current: Any = item
        for step in self.steps:
            if current is None:
                return None
            if not isinstance(current, DataItem):
                raise PathEvaluationError(
                    f"cannot take attribute {step.name!r} of non-struct {type(current).__name__}"
                )
            if step.name not in current:
                raise PathEvaluationError(f"no attribute {step.name!r} along {self}")
            current = current[step.name]
            if step.pos is not None:
                if step.pos is POS:
                    raise PathEvaluationError(f"cannot evaluate placeholder path {self}")
                if not isinstance(current, (Bag, NestedSet)):
                    raise PathEvaluationError(
                        f"positional access {step} on non-collection value"
                    )
                try:
                    current = current.at(step.pos)
                except Exception as exc:
                    raise PathEvaluationError(f"{step} in {self}: {exc}") from exc
        return current

    def resolves_in(self, item: DataItem) -> bool:
        """Return ``True`` if the path evaluates without error against *item*."""
        try:
            self.evaluate(item)
        except PathEvaluationError:
            return False
        return True

    # -- dunder -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self.steps == other.steps

    def __hash__(self) -> int:
        return hash(self.steps)

    def __str__(self) -> str:
        return ".".join(str(step) for step in self.steps)

    def __repr__(self) -> str:
        return f"Path({str(self)!r})"


def parse_path(text: str) -> Path:
    """Parse a dotted path string such as ``user_mentions[1].id_str``.

    ``[pos]`` denotes the schema-level placeholder; ``[3]`` a concrete
    1-based position.  An empty string parses to the empty path.
    """
    if not isinstance(text, str):
        raise PathSyntaxError(f"path must be a string, got {type(text).__name__}")
    stripped = text.strip()
    if not stripped:
        return Path()
    steps = []
    for part in stripped.split("."):
        match = _STEP_RE.match(part.strip())
        if not match:
            raise PathSyntaxError(f"invalid path step {part!r} in {text!r}")
        raw_pos = match.group("pos")
        if raw_pos is None:
            pos: int | _PosPlaceholder | None = None
        elif raw_pos == "pos":
            pos = POS
        else:
            pos = int(raw_pos)
            if pos < 1:
                raise PathSyntaxError(f"positions are 1-based, got {part!r}")
        steps.append(Step(match.group("name"), pos))
    return Path(steps)


def enumerate_paths(item: DataItem, prefix: Path | None = None) -> list[Path]:
    """Enumerate all value-level paths that exist in *item* (the paper's PS_d).

    Struct attributes contribute their dotted paths; collection attributes
    additionally contribute one positional path per element, recursing into
    struct elements.
    """
    _load_value_types()
    base = prefix if prefix is not None else Path()
    paths: list[Path] = []
    for name, value in item.pairs():
        attr_path = base.child(name)
        paths.append(attr_path)
        if isinstance(value, DataItem):
            paths.extend(enumerate_paths(value, attr_path))
        elif isinstance(value, (Bag, NestedSet)):
            for position, element in enumerate(value, start=1):
                element_path = base.child(name, position)
                paths.append(element_path)
                if isinstance(element, DataItem):
                    paths.extend(enumerate_paths(element, element_path))
    return paths
