"""Auditing / GDPR use-case (paper Secs. 1 and 7.3.5).

When a query result leaks, the auditor must determine (i) *whose* data is
exposed and (ii) *which of their attributes* -- the GDPR requires reporting
leaked attributes, not just leaked tuples.  Structural provenance answers
both, and additionally flags attributes that were merely *accessed*
(influencing): they are not in the leaked result, but an attacker who knows
the pipeline can stage reconstruction attacks against them.

The module also quantifies the over-reporting a tuple-level lineage
solution would cause (every attribute of every contributing tuple counts as
leaked) -- the "new credit cards for all marked customers" cost of
Sec. 7.3.5.
"""

from __future__ import annotations

import re

from repro.core.backtrace.result import ProvenanceResult

__all__ = ["ItemExposure", "AuditReport", "audit_leak"]


class ItemExposure:
    """Exposure of one input item in a leaked result."""

    __slots__ = ("item_id", "leaked_paths", "at_risk_paths")

    def __init__(self, item_id: int, leaked_paths: list[str], at_risk_paths: list[str]):
        self.item_id = item_id
        #: Contributing paths: this data is reproducible from the leak.
        self.leaked_paths = leaked_paths
        #: Influencing paths: accessed during processing, candidates for
        #: reconstruction attacks.
        self.at_risk_paths = at_risk_paths


class AuditReport:
    """Per-source exposure report derived from structural provenance."""

    def __init__(self, exposures: dict[str, list[ItemExposure]]):
        #: source name -> exposures of its items.
        self.exposures = exposures

    def affected_ids(self, source_name: str) -> list[int]:
        """Ids of input items with at least one leaked attribute."""
        return sorted(
            exposure.item_id
            for exposure in self.exposures.get(source_name, [])
            if exposure.leaked_paths
        )

    def leaked_attributes(self, source_name: str) -> set[str]:
        """Union of leaked (contributing) paths across affected items."""
        leaked: set[str] = set()
        for exposure in self.exposures.get(source_name, []):
            leaked.update(exposure.leaked_paths)
        return leaked

    def at_risk_attributes(self, source_name: str) -> set[str]:
        """Influencing-only paths: reconstruction-attack candidates.

        This is the information that neither lineage solutions (no
        attributes at all) nor Lipstick (no access tracking) can provide.
        """
        at_risk: set[str] = set()
        for exposure in self.exposures.get(source_name, []):
            at_risk.update(exposure.at_risk_paths)
        return at_risk - self.leaked_attributes(source_name)

    def lineage_overreport(self, source_name: str, schema_attributes: list[str]) -> float:
        """How many attribute exposures a tuple-level audit would report,
        relative to the structurally precise count (>= 1.0).

        A lineage-based audit marks *every* attribute of every contributing
        tuple as leaked; the ratio quantifies the unnecessary breach scope.
        """
        exposures = self.exposures.get(source_name, [])
        affected = [exposure for exposure in exposures if exposure.leaked_paths]
        if not affected:
            return 1.0
        # Compare at the attribute level the tuple-based audit reports:
        # count distinct *top-level* attributes leaked per item.
        precise = sum(
            len({path.split(".")[0].split("[")[0] for path in exposure.leaked_paths})
            for exposure in affected
        )
        tuple_level = len(affected) * len(schema_attributes)
        return tuple_level / precise if precise else float(len(schema_attributes))

    def render(self) -> str:
        """Render the audit report as text."""
        blocks = []
        for source_name, exposures in sorted(self.exposures.items()):
            lines = [f"== leak audit for {source_name} =="]
            for exposure in sorted(exposures, key=lambda e: e.item_id):
                lines.append(f"item {exposure.item_id}:")
                if exposure.leaked_paths:
                    lines.append("  leaked: " + ", ".join(exposure.leaked_paths))
                if exposure.at_risk_paths:
                    lines.append("  at risk (accessed): " + ", ".join(exposure.at_risk_paths))
            blocks.append("\n".join(lines))
        return "\n".join(blocks) if blocks else "(no exposure)"


_POSITION_RE = re.compile(r"\[\d+\]")


def _normalise(paths: list[str]) -> list[str]:
    """Collapse concrete positions: ``authors[2]`` reports as ``authors[pos]``.

    A GDPR report names leaked attributes; individual element positions do
    not change the breach scope.
    """
    return sorted({_POSITION_RE.sub("[pos]", path) for path in paths})


def audit_leak(provenance: ProvenanceResult) -> AuditReport:
    """Build an audit report from the provenance of a leaked query result."""
    exposures: dict[str, list[ItemExposure]] = {}
    for source in provenance.sources:
        source_exposures = []
        for entry in source.entries:
            source_exposures.append(
                ItemExposure(
                    entry.item_id,
                    _normalise(entry.contributing_paths()),
                    _normalise(entry.influencing_paths()),
                )
            )
        exposures.setdefault(source.name, []).extend(source_exposures)
    return AuditReport(exposures)
