"""Data-usage patterns from structural provenance (paper Sec. 7.3.5, Fig. 10).

Merging the provenance of a query workload reveals *hot* input items and
attributes (frequently contributing), *influencing-only* attributes
(accessed but never copied into a result), and *cold* data (never touched).
The paper uses this to argue for vertical (column-based) partitioning:
most top-level items are hot, but only a fraction of attributes is, so
splitting by attribute beats splitting by row.  Co-access statistics
additionally suggest which attributes to store next to each other.

:class:`UsageAnalysis` accumulates provenance results query by query and
renders the Fig. 10-style heatmap as text.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations
from typing import Iterable

from repro.core.backtrace.result import ProvenanceResult

__all__ = ["UsageAnalysis", "HeatmapRow"]


class HeatmapRow:
    """One input item's row of the usage heatmap."""

    __slots__ = ("item_id", "item_uses", "attribute_counts")

    def __init__(self, item_id: int, item_uses: int, attribute_counts: dict[str, int]):
        self.item_id = item_id
        #: How often the top-level item appeared in any provenance result
        #: (the leftmost, tuple-level column of Fig. 10 -- all a lineage
        #: solution could provide).
        self.item_uses = item_uses
        #: Per top-level attribute: in how many query results it appeared
        #: (contributing or influencing).
        self.attribute_counts = attribute_counts


class UsageAnalysis:
    """Accumulates structural provenance across a query workload."""

    def __init__(self) -> None:
        self._item_uses: Counter[tuple[str, int]] = Counter()
        self._attribute_uses: Counter[tuple[str, int, str]] = Counter()
        self._contributing: Counter[tuple[str, str]] = Counter()
        self._influencing: Counter[tuple[str, str]] = Counter()
        self._co_access: Counter[tuple[str, frozenset[str]]] = Counter()
        self.query_count = 0

    # -- accumulation -----------------------------------------------------------

    def add(self, provenance: ProvenanceResult) -> None:
        """Merge the provenance of one query into the analysis."""
        self.query_count += 1
        for source in provenance.sources:
            for entry in source.entries:
                self._item_uses[(source.name, entry.item_id)] += 1
                touched: set[str] = set()
                contributing_attrs: set[str] = set()
                influencing_attrs: set[str] = set()
                for labels, node in entry.tree.paths():
                    top = labels[0]
                    if not isinstance(top, str):
                        continue
                    touched.add(top)
                    if node.contributing:
                        contributing_attrs.add(top)
                    else:
                        influencing_attrs.add(top)
                for attr in touched:
                    self._attribute_uses[(source.name, entry.item_id, attr)] += 1
                for attr in contributing_attrs:
                    self._contributing[(source.name, attr)] += 1
                for attr in influencing_attrs - contributing_attrs:
                    self._influencing[(source.name, attr)] += 1
                if len(touched) > 1:
                    for pair in combinations(sorted(touched), 2):
                        self._co_access[(source.name, frozenset(pair))] += 1

    # -- heatmap (Fig. 10) --------------------------------------------------------

    def heatmap(
        self,
        source_name: str,
        item_ids: Iterable[int],
        attributes: Iterable[str],
    ) -> list[HeatmapRow]:
        """Build the Fig. 10 matrix for selected items and attributes."""
        attribute_list = list(attributes)
        rows = []
        for item_id in item_ids:
            counts = {
                attr: self._attribute_uses.get((source_name, item_id, attr), 0)
                for attr in attribute_list
            }
            rows.append(
                HeatmapRow(item_id, self._item_uses.get((source_name, item_id), 0), counts)
            )
        return rows

    def render_heatmap(
        self,
        source_name: str,
        item_ids: Iterable[int],
        attributes: Iterable[str],
    ) -> str:
        """Render the heatmap as an aligned text table.

        The ``item`` column is the tuple-level counter (what lineage gives);
        the remaining columns are the per-attribute counts only structural
        provenance provides.
        """
        attribute_list = list(attributes)
        rows = self.heatmap(source_name, item_ids, attribute_list)
        headers = ["id", "item"] + attribute_list
        table = [headers]
        for row in rows:
            table.append(
                [str(row.item_id), str(row.item_uses)]
                + [str(row.attribute_counts[attr]) for attr in attribute_list]
            )
        widths = [max(len(line[column]) for line in table) for column in range(len(headers))]
        rendered = []
        for line in table:
            rendered.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths)))
        return "\n".join(rendered)

    def render_heatmap_shaded(
        self,
        source_name: str,
        item_ids: Iterable[int],
        attributes: Iterable[str],
    ) -> str:
        """Render the heatmap with intensity glyphs instead of counts.

        Mirrors Fig. 10's colour coding in text: ``.`` = cold (blue),
        ``░▒▓█`` = increasingly hot.  The ``item`` column again shows the
        tuple-level counter.
        """
        attribute_list = list(attributes)
        rows = self.heatmap(source_name, item_ids, attribute_list)
        peak = max(
            [row.item_uses for row in rows]
            + [count for row in rows for count in row.attribute_counts.values()]
            + [1]
        )

        def glyph(count: int) -> str:
            if count == 0:
                return "."
            shades = "░▒▓█"
            index = min(len(shades) - 1, (count * len(shades) - 1) // peak)
            return shades[index]

        width = max((len(attr) for attr in attribute_list), default=4)
        id_width = max((len(str(row.item_id)) for row in rows), default=2)
        header = " " * (id_width + 1) + "item " + " ".join(
            attr.rjust(width) for attr in attribute_list
        )
        lines = [header]
        for row in rows:
            cells = " ".join(
                glyph(row.attribute_counts[attr]).rjust(width) for attr in attribute_list
            )
            lines.append(
                f"{str(row.item_id).rjust(id_width)} {glyph(row.item_uses).rjust(4)} {cells}"
            )
        return "\n".join(lines)

    # -- hot / cold classification ---------------------------------------------------

    def hot_items(self, source_name: str, min_uses: int = 1) -> list[tuple[int, int]]:
        """Items used at least *min_uses* times, hottest first."""
        entries = [
            (item_id, uses)
            for (name, item_id), uses in self._item_uses.items()
            if name == source_name and uses >= min_uses
        ]
        entries.sort(key=lambda pair: (-pair[1], pair[0]))
        return entries

    def cold_items(self, source_name: str, universe: Iterable[int]) -> list[int]:
        """Items of *universe* that never influenced any result (blue rows)."""
        return sorted(
            item_id
            for item_id in universe
            if self._item_uses.get((source_name, item_id), 0) == 0
        )

    def hot_attributes(self, source_name: str) -> list[tuple[str, int]]:
        """Attributes that contributed to at least one result, hottest first."""
        entries = [
            (attr, uses)
            for (name, attr), uses in self._contributing.items()
            if name == source_name
        ]
        entries.sort(key=lambda pair: (-pair[1], pair[0]))
        return entries

    def influencing_only_attributes(self, source_name: str) -> list[tuple[str, int]]:
        """Attributes accessed but never contributing (e.g. ``year`` in Fig. 10).

        These are invisible to both lineage solutions (no attribute
        information) and Lipstick (no access tracking).
        """
        contributing = {
            attr for (name, attr) in self._contributing if name == source_name
        }
        entries = [
            (attr, uses)
            for (name, attr), uses in self._influencing.items()
            if name == source_name and attr not in contributing
        ]
        entries.sort(key=lambda pair: (-pair[1], pair[0]))
        return entries

    def cold_attributes(self, source_name: str, schema_attributes: Iterable[str]) -> list[str]:
        """Attributes of the schema never accessed nor contributing."""
        touched = {attr for (name, attr) in self._contributing if name == source_name}
        touched |= {attr for (name, attr) in self._influencing if name == source_name}
        return sorted(attr for attr in schema_attributes if attr not in touched)

    # -- layout suggestions ----------------------------------------------------------

    def co_accessed_pairs(self, source_name: str, top: int = 5) -> list[tuple[tuple[str, str], int]]:
        """Attribute pairs frequently used together (layout co-location)."""
        entries = [
            (tuple(sorted(pair)), uses)
            for (name, pair), uses in self._co_access.items()
            if name == source_name
        ]
        entries.sort(key=lambda entry: (-entry[1], entry[0]))
        return entries[:top]

    def partitioning_advice(self, source_name: str, schema_attributes: Iterable[str]) -> str:
        """Summarise the Fig. 10 argument for this workload as text."""
        schema_list = list(schema_attributes)
        hot_item_count = len(self.hot_items(source_name))
        hot_attrs = self.hot_attributes(source_name)
        cold_attrs = self.cold_attributes(source_name, schema_list)
        lines = [
            f"source {source_name}: {hot_item_count} hot top-level items over "
            f"{self.query_count} queries",
            f"hot attributes ({len(hot_attrs)}/{len(schema_list)}): "
            + ", ".join(attr for attr, _ in hot_attrs),
            f"cold attributes ({len(cold_attrs)}/{len(schema_list)}): " + ", ".join(cold_attrs),
        ]
        influencing = self.influencing_only_attributes(source_name)
        if influencing:
            lines.append(
                "influencing-only attributes: "
                + ", ".join(f"{attr} ({uses}x)" for attr, uses in influencing)
            )
        if 2 * len(hot_attrs) < len(schema_list):
            # Only a fraction of the attributes contributes -- the Fig. 10
            # conclusion: split columns, not rows.
            lines.append("advice: vertical (column-based) partitioning of hot vs cold attributes")
        else:
            lines.append("advice: horizontal partitioning may suffice; most attributes are hot")
        pairs = self.co_accessed_pairs(source_name)
        if pairs:
            lines.append(
                "co-locate: "
                + "; ".join(f"{a}+{b} ({uses}x)" for (a, b), uses in pairs)
            )
        return "\n".join(lines)
