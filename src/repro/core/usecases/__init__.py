"""Use-cases enabled by structural provenance (paper Sec. 7.3.5)."""

from repro.core.usecases.auditing import AuditReport, ItemExposure, audit_leak
from repro.core.usecases.usage import HeatmapRow, UsageAnalysis

__all__ = ["AuditReport", "ItemExposure", "audit_leak", "HeatmapRow", "UsageAnalysis"]
