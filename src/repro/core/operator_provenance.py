"""Lightweight operator provenance (paper Def. 5.1 and Tab. 6).

The eager capture phase records, per executed operator, the 5-tuple

``P = <oid, type, I: {{<p, A>}}, M, P>``

where ``I`` references each input's preceding operator ``p`` together with
the **schema-level** paths ``A`` accessed on that input, ``M`` is the bag of
schema-level manipulation pairs (input path -> output path, positions
replaced by the ``[pos]`` placeholder), and the associations ``P`` hold the
per-item identifiers (and positions where needed).  The structure of the
associations depends on the operator type (Tab. 6):

=================  =====================================================
operator           association record
=================  =====================================================
map/select/filter  ``(id_i, id_o)``
join/union         ``(id_i1, id_i2, id_o)`` (one side ``None`` in union)
flatten            ``(id_i, pos, id_o)``
groupBy+aggregate  ``(ids_i tuple, id_o)`` -- input position = nested pos
read               ``(id_o,)`` -- fresh identifiers
=================  =====================================================

Size accounting distinguishes the *lineage* share (what a Titian-style
solution would store: the bare id associations) from the *structural* share
(positions, accessed/manipulated schema paths) to reproduce Fig. 8.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.core.paths import Path
from repro.errors import ProvenanceError
from repro.nested.schema import Schema

__all__ = [
    "UNDEFINED",
    "InputRef",
    "Associations",
    "UnaryAssociations",
    "BinaryAssociations",
    "FlattenAssociations",
    "AggregationAssociations",
    "ReadAssociations",
    "OperatorProvenance",
]

_ID_BYTES = 8  # one stored identifier (64-bit)
_POS_BYTES = 4  # one stored position (32-bit)


class _Undefined:
    """Singleton for the paper's ``bot`` (unknown A or M, e.g. for map)."""

    _instance: "_Undefined | None" = None

    def __new__(cls) -> "_Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNDEFINED"

    def __bool__(self) -> bool:
        return False


#: The paper's ``bot``: semantics of the operator are unknown (map UDFs).
UNDEFINED = _Undefined()


class InputRef:
    """One entry of ``I``: predecessor operator id plus accessed paths ``A``.

    ``predecessor`` is ``None`` for source (read) operators.  ``accessed`` is
    a frozen set of schema-level paths, or :data:`UNDEFINED` when the
    operator's internals are opaque (map).
    """

    __slots__ = ("predecessor", "accessed", "schema")

    def __init__(
        self,
        predecessor: int | None,
        accessed: Iterable[Path] | _Undefined,
        schema: Schema | None = None,
    ):
        self.predecessor = predecessor
        if isinstance(accessed, _Undefined):
            self.accessed: frozenset[Path] | _Undefined = UNDEFINED
        else:
            self.accessed = frozenset(accessed)
        #: Input schema snapshot; needed to backtrace map (mark whole schema
        #: manipulated) and join (prune the other side's attributes).
        self.schema = schema

    def accessed_or_empty(self) -> frozenset[Path]:
        """Return the accessed paths, treating UNDEFINED as empty."""
        if isinstance(self.accessed, _Undefined):
            return frozenset()
        return self.accessed

    def __repr__(self) -> str:
        return f"InputRef(pred={self.predecessor}, A={self.accessed!r})"


class Associations:
    """Base class of the operator-dependent id association bags."""

    def __len__(self) -> int:
        raise NotImplementedError

    def lineage_bytes(self) -> int:
        """Bytes a lineage-only (Titian-style) capture would store."""
        raise NotImplementedError

    def structural_extra_bytes(self) -> int:
        """Extra bytes structural provenance stores (positions)."""
        return 0

    def output_ids(self) -> Iterator[int]:
        """Iterate over all output identifiers."""
        raise NotImplementedError


class UnaryAssociations(Associations):
    """``{(id_i, id_o)}`` for map, select, filter."""

    __slots__ = ("records", "_by_output")

    def __init__(self, records: Sequence[tuple[int, int]] = ()):
        self.records: list[tuple[int, int]] = list(records)
        self._by_output: dict[int, int] | None = None

    def add(self, id_in: int, id_out: int) -> None:
        self.records.append((id_in, id_out))
        self._by_output = None

    def by_output(self) -> dict[int, int]:
        """Cached output-id index (built once, reused across queries).

        The backtracing join of Alg. 3 probes this index; caching it per
        operator amortises repeated provenance questions on one capture --
        the query-time optimisation the paper lists as future work.
        """
        if self._by_output is None:
            self._by_output = {id_out: id_in for id_in, id_out in self.records}
        return self._by_output

    def __len__(self) -> int:
        return len(self.records)

    def lineage_bytes(self) -> int:
        return len(self.records) * 2 * _ID_BYTES

    def output_ids(self) -> Iterator[int]:
        return (id_out for _, id_out in self.records)


class BinaryAssociations(Associations):
    """``{(id_i1, id_i2, id_o)}`` for join and union.

    For a union, exactly one of ``id_i1``/``id_i2`` is ``None`` per record,
    marking which input the item originates from; the union backtracing
    filters on definedness (Sec. 6.3).
    """

    __slots__ = ("records", "_by_output")

    def __init__(self, records: Sequence[tuple[int | None, int | None, int]] = ()):
        self.records: list[tuple[int | None, int | None, int]] = list(records)
        self._by_output: dict[int, tuple[int | None, int | None]] | None = None

    def add(self, id_in1: int | None, id_in2: int | None, id_out: int) -> None:
        self.records.append((id_in1, id_in2, id_out))
        self._by_output = None

    def by_output(self) -> dict[int, tuple[int | None, int | None]]:
        """Cached output-id index (see :meth:`UnaryAssociations.by_output`)."""
        if self._by_output is None:
            self._by_output = {
                id_out: (id_in1, id_in2) for id_in1, id_in2, id_out in self.records
            }
        return self._by_output

    def __len__(self) -> int:
        return len(self.records)

    def lineage_bytes(self) -> int:
        return len(self.records) * 3 * _ID_BYTES

    def output_ids(self) -> Iterator[int]:
        return (id_out for _, _, id_out in self.records)


class FlattenAssociations(Associations):
    """``{(id_i, pos, id_o)}`` for flatten; ``pos`` is 1-based.

    The position is the *structural* extra that lineage solutions do not
    capture (Sec. 7.3.2, last paragraph).
    """

    __slots__ = ("records", "_by_output")

    def __init__(self, records: Sequence[tuple[int, int, int]] = ()):
        self.records: list[tuple[int, int, int]] = list(records)
        self._by_output: dict[int, tuple[int, int]] | None = None

    def add(self, id_in: int, pos: int, id_out: int) -> None:
        self.records.append((id_in, pos, id_out))
        self._by_output = None

    def by_output(self) -> dict[int, tuple[int, int]]:
        """Cached output-id index (see :meth:`UnaryAssociations.by_output`)."""
        if self._by_output is None:
            self._by_output = {
                id_out: (id_in, pos) for id_in, pos, id_out in self.records
            }
        return self._by_output

    def __len__(self) -> int:
        return len(self.records)

    def lineage_bytes(self) -> int:
        return len(self.records) * 2 * _ID_BYTES

    def structural_extra_bytes(self) -> int:
        return len(self.records) * _POS_BYTES

    def output_ids(self) -> Iterator[int]:
        return (id_out for _, _, id_out in self.records)


class AggregationAssociations(Associations):
    """``{(ids_i, id_o)}`` for groupBy+aggregation.

    The i-th input id corresponds to the i-th element of any nested
    collection the aggregation produced for the group (Tab. 6), so positions
    are stored implicitly by order.
    """

    __slots__ = ("records", "_by_output")

    def __init__(self, records: Sequence[tuple[tuple[int, ...], int]] = ()):
        self.records: list[tuple[tuple[int, ...], int]] = list(records)
        self._by_output: dict[int, tuple[int, ...]] | None = None

    def add(self, ids_in: Sequence[int], id_out: int) -> None:
        self.records.append((tuple(ids_in), id_out))
        self._by_output = None

    def by_output(self) -> dict[int, tuple[int, ...]]:
        """Cached output-id index (see :meth:`UnaryAssociations.by_output`)."""
        if self._by_output is None:
            self._by_output = {id_out: ids_in for ids_in, id_out in self.records}
        return self._by_output

    def __len__(self) -> int:
        return len(self.records)

    def total_input_ids(self) -> int:
        return sum(len(ids_in) for ids_in, _ in self.records)

    def lineage_bytes(self) -> int:
        return (self.total_input_ids() + len(self.records)) * _ID_BYTES

    def output_ids(self) -> Iterator[int]:
        return (id_out for _, id_out in self.records)


class ReadAssociations(Associations):
    """Fresh identifiers assigned to source items."""

    __slots__ = ("ids",)

    def __init__(self, ids: Sequence[int] = ()):
        self.ids: list[int] = list(ids)

    def add(self, id_out: int) -> None:
        self.ids.append(id_out)

    def __len__(self) -> int:
        return len(self.ids)

    def lineage_bytes(self) -> int:
        return len(self.ids) * _ID_BYTES

    def output_ids(self) -> Iterator[int]:
        return iter(self.ids)


class OperatorProvenance:
    """The lightweight 5-tuple ``P`` for one executed operator (Def. 5.1)."""

    __slots__ = ("oid", "op_type", "inputs", "manipulations", "associations", "label")

    def __init__(
        self,
        oid: int,
        op_type: str,
        inputs: Sequence[InputRef],
        manipulations: Sequence[tuple[Path, Path]] | _Undefined,
        associations: Associations,
        label: str | None = None,
    ):
        self.oid = oid
        self.op_type = op_type
        self.inputs: tuple[InputRef, ...] = tuple(inputs)
        if isinstance(manipulations, _Undefined):
            self.manipulations: tuple[tuple[Path, Path], ...] | _Undefined = UNDEFINED
        else:
            self.manipulations = tuple(manipulations)
        self.associations = associations
        #: Human-readable label for reports (e.g. "flatten user_mentions").
        self.label = label or op_type

    def input(self, index: int = 0) -> InputRef:
        """Return the *index*-th input reference."""
        try:
            return self.inputs[index]
        except IndexError:
            raise ProvenanceError(
                f"operator {self.oid} ({self.op_type}) has no input #{index}"
            ) from None

    def manipulations_or_empty(self) -> tuple[tuple[Path, Path], ...]:
        """Return M, treating UNDEFINED as empty (callers check separately)."""
        if isinstance(self.manipulations, _Undefined):
            return ()
        return self.manipulations

    def manipulations_undefined(self) -> bool:
        """Return ``True`` if M is the paper's ``bot`` (map operator)."""
        return isinstance(self.manipulations, _Undefined)

    # -- space accounting (Fig. 8) ------------------------------------------

    def lineage_bytes(self) -> int:
        """Bytes of the lineage share (bare id associations)."""
        return self.associations.lineage_bytes()

    def structural_extra_bytes(self) -> int:
        """Bytes of the structural share: positions plus schema-level paths.

        Schema-level paths are stored once per operator, which is exactly why
        the structural overhead stays small (Sec. 5.1).
        """
        path_bytes = 0
        for input_ref in self.inputs:
            for path in input_ref.accessed_or_empty():
                path_bytes += len(str(path))
        for path_in, path_out in self.manipulations_or_empty():
            path_bytes += len(str(path_in)) + len(str(path_out))
        return path_bytes + self.associations.structural_extra_bytes()

    def total_bytes(self) -> int:
        """Total stored bytes for this operator's provenance."""
        return self.lineage_bytes() + self.structural_extra_bytes()

    def __repr__(self) -> str:
        return (
            f"OperatorProvenance(oid={self.oid}, type={self.op_type!r}, "
            f"|P|={len(self.associations)})"
        )
