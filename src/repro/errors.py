"""Exception hierarchy for the Pebble reproduction.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.

Each class also carries a stable machine-readable ``code``.  The versioned
HTTP surface (``/v1``) puts this code in its error envelope so remote callers
can classify failures without string-matching messages, and the HTTP client
maps codes back onto this hierarchy -- the wire format survives exception
renames, the codes do not change.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library.

    ``retryable`` classifies the failure for the scheduler's fault-tolerance
    layer: transient errors (timeouts, lost workers, injected faults) may be
    retried with backoff, everything else fails the run immediately.  Callers
    classify through this attribute rather than string-matching messages.

    ``code`` is the stable wire identifier of the failure mode; subclasses
    narrow it.  It is part of the ``/v1`` API contract -- never recycle a
    code for a different meaning.
    """

    retryable: bool = False
    code: str = "internal"


class TransientError(ReproError):
    """A failure that may succeed on retry (the scheduler's retry trigger)."""

    retryable = True
    code = "transient"


class TaskTimeoutError(TransientError):
    """A partition task exceeded the configured per-task timeout."""

    code = "deadline_exceeded"


class WorkerLostError(TransientError):
    """A pool worker died before delivering its task's result."""

    code = "worker_lost"


class InjectedFault(TransientError):
    """A synthetic failure raised by the fault-injection harness."""

    code = "injected_fault"


class ServeError(ReproError):
    """The provenance query service could not satisfy a request."""

    code = "bad_request"


class AdmissionError(ServeError):
    """The service's admission queue is full (HTTP 429).

    Retryable by design: the client-side backoff protocol treats a full
    queue exactly like a transient scheduler failure -- wait, then retry.
    """

    retryable = True
    code = "admission_full"


class DataModelError(ReproError):
    """A value does not conform to the nested data model (Sec. 4.1)."""

    code = "bad_data_model"


class TypeInferenceError(DataModelError):
    """Type inference or unification failed, e.g. a heterogeneous bag."""


class PathError(ReproError):
    """An access path is syntactically invalid or cannot be evaluated."""

    code = "bad_path"


class PathSyntaxError(PathError):
    """An access path string could not be parsed."""


class PathEvaluationError(PathError):
    """An access path does not resolve against a given data item."""


class ExpressionError(ReproError):
    """A column expression is invalid or cannot be evaluated."""

    code = "bad_expression"


class PlanError(ReproError):
    """A logical plan is malformed (unknown attribute, schema mismatch, ...)."""

    code = "bad_plan"


class SchemaMismatchError(PlanError):
    """Two datasets have incompatible schemas (e.g. for a union)."""


class StreamError(PlanError):
    """A plan or operation is invalid for micro-batch streaming.

    Raised when a pipeline handed to :class:`~repro.stream.StreamSession`
    contains operators the streaming executor cannot run incrementally
    (joins, unions, blocking sorts/limits, non-windowed aggregations), or
    when a session method is called out of lifecycle order.
    """

    code = "bad_stream"


class ExecutionError(ReproError):
    """An operator failed while processing data."""

    code = "execution_failed"


class ProvenanceError(ReproError):
    """Provenance capture or storage failed."""

    code = "not_found"


class LiveRunError(ProvenanceError):
    """An operation requires a sealed run but the target is still live.

    Batch-only paths (``repro index build`` backfill, eager store loads)
    reject live runs with this error; the incremental per-epoch index and
    the live store merge are the supported alternatives while a run grows.
    """

    code = "run_live"


class CaptureDisabledError(ProvenanceError):
    """A provenance query was issued but capture was not enabled."""

    code = "capture_disabled"


class BacktraceError(ProvenanceError):
    """Backtracing could not complete (missing operator provenance, ...)."""

    code = "backtrace_failed"


class AuditError(ProvenanceError):
    """An audit operation (forward trace, SAR, erasure check) failed."""

    code = "bad_audit_request"


class TreePatternError(ReproError):
    """A tree pattern is invalid."""

    code = "bad_pattern"


class TreePatternSyntaxError(TreePatternError):
    """A tree-pattern string could not be parsed."""


class WorkloadError(ReproError):
    """A workload generator or scenario was configured incorrectly."""

    code = "bad_workload"


#: ``code -> exception class`` for the /v1 client: rebuilding a typed error
#: from a wire envelope.  Built from the hierarchy so the two cannot drift.
ERROR_CODES: dict[str, type[ReproError]] = {}


def _register_codes() -> None:
    ordered: list[type[ReproError]] = [ReproError]
    index = 0
    while index < len(ordered):
        ordered.extend(ordered[index].__subclasses__())
        index += 1
    for cls in ordered:  # later (more derived) classes do not override earlier
        ERROR_CODES.setdefault(cls.code, cls)


_register_codes()


def error_code(exc: BaseException) -> str:
    """The stable wire code for *exc* (``"internal"`` for foreign errors)."""
    if isinstance(exc, ReproError):
        return exc.code
    return "internal"
