"""Exception hierarchy for the Pebble reproduction.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library.

    ``retryable`` classifies the failure for the scheduler's fault-tolerance
    layer: transient errors (timeouts, lost workers, injected faults) may be
    retried with backoff, everything else fails the run immediately.  Callers
    classify through this attribute rather than string-matching messages.
    """

    retryable: bool = False


class TransientError(ReproError):
    """A failure that may succeed on retry (the scheduler's retry trigger)."""

    retryable = True


class TaskTimeoutError(TransientError):
    """A partition task exceeded the configured per-task timeout."""


class WorkerLostError(TransientError):
    """A pool worker died before delivering its task's result."""


class InjectedFault(TransientError):
    """A synthetic failure raised by the fault-injection harness."""


class ServeError(ReproError):
    """The provenance query service could not satisfy a request."""


class AdmissionError(ServeError):
    """The service's admission queue is full (HTTP 429).

    Retryable by design: the client-side backoff protocol treats a full
    queue exactly like a transient scheduler failure -- wait, then retry.
    """

    retryable = True


class DataModelError(ReproError):
    """A value does not conform to the nested data model (Sec. 4.1)."""


class TypeInferenceError(DataModelError):
    """Type inference or unification failed, e.g. a heterogeneous bag."""


class PathError(ReproError):
    """An access path is syntactically invalid or cannot be evaluated."""


class PathSyntaxError(PathError):
    """An access path string could not be parsed."""


class PathEvaluationError(PathError):
    """An access path does not resolve against a given data item."""


class ExpressionError(ReproError):
    """A column expression is invalid or cannot be evaluated."""


class PlanError(ReproError):
    """A logical plan is malformed (unknown attribute, schema mismatch, ...)."""


class SchemaMismatchError(PlanError):
    """Two datasets have incompatible schemas (e.g. for a union)."""


class ExecutionError(ReproError):
    """An operator failed while processing data."""


class ProvenanceError(ReproError):
    """Provenance capture or storage failed."""


class CaptureDisabledError(ProvenanceError):
    """A provenance query was issued but capture was not enabled."""


class BacktraceError(ProvenanceError):
    """Backtracing could not complete (missing operator provenance, ...)."""


class AuditError(ProvenanceError):
    """An audit operation (forward trace, SAR, erasure check) failed."""


class TreePatternError(ReproError):
    """A tree pattern is invalid."""


class TreePatternSyntaxError(TreePatternError):
    """A tree-pattern string could not be parsed."""


class WorkloadError(ReproError):
    """A workload generator or scenario was configured incorrectly."""
