"""Pebble reproduction: structural provenance for nested big-data analytics.

Reproduces Diestelkaemper & Herschel, "Tracing nested data with structural
provenance for big data analytics", EDBT 2020.  The top-level package
re-exports the pieces a typical user needs: the Pebble session, the engine's
expression language, and the tree-pattern builders.
"""

from repro.engine import (
    Session,
    avg,
    coalesce,
    col,
    collect_list,
    collect_set,
    count,
    lit,
    max_,
    min_,
    struct_,
    sum_,
)
from repro.core.treepattern import TreePattern, child, descendant, parse_pattern
from repro.pebble import CapturedExecution, PebbleSession, query_provenance

__version__ = "1.0.0"

__all__ = [
    "Session",
    "avg",
    "coalesce",
    "col",
    "collect_list",
    "collect_set",
    "count",
    "lit",
    "max_",
    "min_",
    "struct_",
    "sum_",
    "TreePattern",
    "child",
    "descendant",
    "parse_pattern",
    "CapturedExecution",
    "PebbleSession",
    "query_provenance",
    "__version__",
]
