"""Pebble reproduction: structural provenance for nested big-data analytics.

Reproduces Diestelkaemper & Herschel, "Tracing nested data with structural
provenance for big data analytics", EDBT 2020.

This module is the library's **stable facade**: user programs import from
``repro`` and nothing deeper.  It re-exports

* :class:`PebbleSession` -- build pipelines and run them with capture,
* :class:`CapturedExecution` -- a captured run: results + backtracing,
* :class:`Warehouse` -- durable multi-run provenance storage,
* :class:`StreamSession` -- micro-batch streaming capture into a *live*
  run (windowed aggregation via ``repro.stream.window_by``, watermarks,
  incremental backtrace while ingesting, TTL retention),
* :func:`connect` -- the unified provenance client: one
  :class:`ProvenanceClient` protocol over ``file:///path`` (in-process)
  and ``http://host:port`` (a serve worker or fleet router),
* the audit surface -- :func:`trace_forward` (forward provenance: inputs ->
  derived outputs), :func:`subject_access_request`, and
  :func:`verify_erasure` (the GDPR workflows in :mod:`repro.audit`),
* :class:`TreePattern` (with ``parse_pattern``/``child``/``descendant``) --
  the structural query language,
* :class:`EngineConfig` -- execution knobs (partitions, scheduler backend,
  retries/timeouts, fault injection, optimizer rules),
* the expression language (``col``, ``lit``, ``struct_``, the aggregates).

Internal module paths (``repro.engine.*``, ``repro.core.*``, ...) remain
importable but are not part of the stable surface and may move between
releases.

**Migrating to 2.0**: the HTTP surface moved under ``/v1`` with a uniform
response envelope (legacy routes still answer, with a ``Deprecation``
header), and ``repro.ServeClient`` is deprecated in favour of
``repro.connect(url)``, which returns the same :class:`ProvenanceClient`
facade for local warehouses and served endpoints alike.  See
``docs/MIGRATION.md`` for the endpoint and error-code mapping.
"""

import warnings

from repro.audit import subject_access_request, trace_forward, verify_erasure
from repro.client import ProvenanceClient, connect
from repro.core.treepattern import TreePattern, child, descendant, parse_pattern
from repro.engine import (
    avg,
    coalesce,
    col,
    collect_list,
    collect_set,
    count,
    lit,
    max_,
    min_,
    struct_,
    sum_,
)
from repro.engine.config import EngineConfig
from repro.engine.session import Session as _EngineSession
from repro.pebble import CapturedExecution, PebbleSession, query_provenance
from repro.stream import StreamSession
from repro.warehouse import Warehouse

__version__ = "2.1.0"

__all__ = [
    # primary API
    "PebbleSession",
    "CapturedExecution",
    "Warehouse",
    "StreamSession",
    "connect",
    "ProvenanceClient",
    "TreePattern",
    "EngineConfig",
    # tree-pattern builders
    "child",
    "descendant",
    "parse_pattern",
    "query_provenance",
    # audit / forward provenance
    "trace_forward",
    "subject_access_request",
    "verify_erasure",
    # expression language
    "avg",
    "coalesce",
    "col",
    "collect_list",
    "collect_set",
    "count",
    "lit",
    "max_",
    "min_",
    "struct_",
    "sum_",
    # deprecated
    "Session",
    "ServeClient",
    "__version__",
]


def __getattr__(name: str) -> object:
    """Deprecated lazy attributes of the facade.

    ``repro.ServeClient`` predates :func:`connect`; resolving it still
    works (and is not cached as a module attribute, so the warning fires
    on every import site) but new code should call ``repro.connect(url)``.
    """
    if name == "ServeClient":
        warnings.warn(
            "repro.ServeClient is deprecated; use repro.connect(url) -- it "
            "returns one ProvenanceClient facade for file:// and http:// "
            "endpoints alike",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.serve.client import ServeClient

        return ServeClient
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class Session(_EngineSession):
    """Deprecated alias of the engine session; use :class:`PebbleSession`.

    ``repro.Session`` predates the facade; constructing it still works but
    warns.  The engine-internal ``repro.engine.session.Session`` stays
    silent -- the deprecation targets the public entry point only.
    """

    def __init__(self, *args: object, **kwargs: object) -> None:
        warnings.warn(
            "repro.Session is deprecated; construct repro.PebbleSession "
            "(capture + querying) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
