"""Command-line interface: run scenarios, queries, and evaluation sweeps.

Usage (also via ``python -m repro``)::

    python -m repro example                    # the paper's running example
    python -m repro scenario T3 --scale 1      # run a scenario + its query
    python -m repro explain T1                 # logical plan, rewrites, stages
    python -m repro bench fig8                 # regenerate one figure
    python -m repro bench ablation --scale .2  # optimizer rewrite ladder
    python -m repro heatmap --scale 0.5        # the Fig. 10 use-case
    python -m repro list                       # available scenarios

    python -m repro warehouse record example --root /tmp/wh
    python -m repro warehouse ls --root /tmp/wh
    python -m repro warehouse inspect run-0001-example --root /tmp/wh
    python -m repro warehouse query run-0001-example 'root{...}' --root /tmp/wh
    python -m repro stats run-0001-example --root /tmp/wh

    python -m repro serve --root /tmp/wh --port 9410   # the query service
    python -m repro serve --root /tmp/wh --fleet 4     # N workers + a router
    python -m repro bench serve --url http://127.0.0.1:9410
    python -m repro bench serve --fleet 4 --root /tmp/wh
    python -m repro stats --remote http://127.0.0.1:9410

    python -m repro shard init --root /tmp/wh --count 4
    python -m repro shard ls --root /tmp/wh
    python -m repro shard rebalance --root /tmp/wh

    python -m repro index build --root /tmp/wh         # backfill audit index
    python -m repro trace-forward --root /tmp/wh --pattern 'root{//id_str="lp"}'
    python -m repro audit sar u1 u2 --root /tmp/wh     # subject-access request
    python -m repro audit erasure u1 --root /tmp/wh    # erasure receipt
    python -m repro bench audit --subjects 2000        # indexed vs scan sweep

Most execution commands accept ``--trace PATH`` to write a Chrome
trace-event JSON of the run (loadable in Perfetto / ``chrome://tracing``).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import Iterator, Sequence

from repro.bench.harness import (
    measure_capture_overhead,
    measure_operator_overhead,
    measure_optimizer_ablation,
    measure_provenance_size,
    measure_query_times,
    measure_stream,
    measure_titian_comparison,
)
from repro.bench.reporting import (
    render_capture_overhead,
    render_operator_overhead,
    render_optimizer_ablation,
    render_provenance_sizes,
    render_query_times,
    render_stream,
    render_titian_comparison,
)
from repro.core.usecases.usage import UsageAnalysis
from repro.engine.config import EngineConfig
from repro.engine.executor import Executor
from repro.engine.session import Session
from repro.obs.tracer import Tracer, tracing
from repro.pebble.query import query_provenance
from repro.workloads.scenarios import (
    DBLP_SCENARIOS,
    RUNNING_EXAMPLE_PATTERN,
    RUNNING_EXAMPLE_TWEETS,
    SCENARIOS,
    TWITTER_SCENARIOS,
    build_running_example,
    load_workload,
    scenario,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pebble reproduction: structural provenance for nested data",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the evaluation scenarios")

    example = commands.add_parser("example", help="run the paper's running example")
    example.add_argument("--pattern", default=RUNNING_EXAMPLE_PATTERN,
                         help="tree pattern to backtrace (default: Fig. 4)")
    example.add_argument("--trace", default=None, metavar="PATH",
                         help="write a Chrome trace-event JSON of the run")

    run = commands.add_parser("scenario", help="run one scenario and its structural query")
    run.add_argument("name", choices=sorted(SCENARIOS))
    run.add_argument("--scale", type=float, default=1.0, help="workload scale factor")
    run.add_argument("--partitions", type=int, default=None,
                     help="partition count (default: engine default)")
    run.add_argument("--pattern", default=None, help="override the scenario's query")
    run.add_argument("--no-query", action="store_true", help="execute only, skip the query")
    run.add_argument("--scheduler", choices=["serial", "threads", "processes"], default=None,
                     help="partition scheduler (default: engine config / REPRO_SCHEDULER)")
    run.add_argument("--no-optimize", action="store_true",
                     help="disable plan rewriting (seed operator-at-a-time execution)")
    run.add_argument("--metrics-json", default=None, metavar="PATH",
                     help="write per-operator/per-stage execution metrics as JSON")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="write a Chrome trace-event JSON of the run")

    explain = commands.add_parser(
        "explain", help="show logical plan, applied rewrites, and physical stages"
    )
    explain.add_argument("name", choices=sorted(SCENARIOS) + ["example"])
    explain.add_argument("--scale", type=float, default=1.0, help="workload scale factor")
    explain.add_argument("--partitions", type=int, default=None,
                         help="partition count (default: engine default)")
    explain.add_argument("--capture", action="store_true",
                         help="compile for provenance capture (disables store-unsafe rewrites)")
    explain.add_argument("--scheduler", choices=["serial", "threads", "processes"], default=None)
    explain.add_argument("--no-optimize", action="store_true",
                         help="disable plan rewriting (show the unoptimized stages)")

    bench = commands.add_parser("bench", help="regenerate one evaluation artefact")
    bench.add_argument(
        "figure",
        choices=[
            "fig6", "fig7", "fig8", "fig9", "titian", "operators", "ablation",
            "serve", "audit", "stream",
        ],
    )
    bench.add_argument("--scale", type=float, default=1.0)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--batches", type=int, default=4,
                       help="micro-batch count for `bench stream`")
    bench.add_argument("--metrics-json", default=None, metavar="PATH",
                       help="write the raw measurements as JSON")
    bench.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Chrome trace-event JSON of the benchmark runs")
    bench.add_argument("--history", default=None, metavar="PATH",
                       help="bench history JSONL to append to "
                            "(default: benchmarks/history/history.jsonl, "
                            "or REPRO_BENCH_HISTORY)")
    bench.add_argument("--no-history", action="store_true",
                       help="skip appending this run to the bench history")
    serve_bench = bench.add_argument_group("serve", "options for `bench serve`")
    serve_bench.add_argument("--url", default="http://127.0.0.1:9410",
                             help="base URL of a running `repro serve`")
    serve_bench.add_argument("--fleet", type=int, default=None, metavar="N",
                             help="benchmark an N-worker fleet behind a router "
                                  "over --root (sizes 1 and N; ignores --url)")
    serve_bench.add_argument("--root", default=None,
                             help="warehouse root for --fleet mode")
    serve_bench.add_argument("--fleet-mode", choices=["thread", "process"],
                             default="thread",
                             help="how --fleet hosts its workers")
    serve_bench.add_argument("--run", default=None,
                             help="run id or name to query (default: newest)")
    serve_bench.add_argument("--pattern", default=RUNNING_EXAMPLE_PATTERN,
                             help="tree pattern to backtrace (default: Fig. 4)")
    serve_bench.add_argument("--method", choices=["lazy", "eager"], default="lazy",
                             help="server-side loading strategy for the run")
    serve_bench.add_argument("--requests", type=int, default=100,
                             help="total queries to issue")
    serve_bench.add_argument("--concurrency", type=int, default=4,
                             help="closed-loop client workers")
    serve_bench.add_argument("--report", default=None, metavar="PATH",
                             help="write the latency report JSON (+ .txt) here "
                                  "(default: benchmarks/results/serve_bench.json)")
    audit_bench = bench.add_argument_group("audit", "options for `bench audit`")
    audit_bench.add_argument("--scenarios", default="T1,D1",
                             help="comma-separated scenario names to record and sweep")
    audit_bench.add_argument("--subjects", type=int, default=2000,
                             help="subject probes per scenario (cycled over the pool)")
    audit_bench.add_argument("--subject-pool", type=int, default=500,
                             help="distinct subjects harvested from source items")

    heatmap = commands.add_parser("heatmap", help="Fig. 10 usage heatmap over D1-D5")
    heatmap.add_argument("--scale", type=float, default=0.5)
    heatmap.add_argument("--items", type=int, default=25)

    warehouse = commands.add_parser(
        "warehouse", help="record, list, inspect, and query stored provenance runs"
    )
    wh_commands = warehouse.add_subparsers(dest="warehouse_command", required=True)

    wh_record = wh_commands.add_parser(
        "record", help="execute with capture and record the run durably"
    )
    wh_record.add_argument("name", choices=sorted(SCENARIOS) + ["example"])
    wh_record.add_argument("--root", required=True, help="warehouse root directory")
    wh_record.add_argument("--scale", type=float, default=1.0)
    wh_record.add_argument("--partitions", type=int, default=None,
                           help="partition count (default: engine default)")
    wh_record.add_argument("--run-name", default=None, help="catalog name (default: scenario)")
    wh_record.add_argument("--no-index", action="store_true",
                           help="skip building the forward/audit index at record time "
                           "(backfill later with `repro index build`)")
    wh_record.add_argument("--trace", default=None, metavar="PATH",
                           help="write a Chrome trace-event JSON of the run + record")

    wh_ls = wh_commands.add_parser("ls", help="list the catalogued runs")
    wh_ls.add_argument("--root", required=True, help="warehouse root directory")

    wh_inspect = wh_commands.add_parser(
        "inspect", help="per-operator summary of one run (index only, no decode)"
    )
    wh_inspect.add_argument("run", help="run id or name (names resolve to newest)")
    wh_inspect.add_argument("--root", required=True, help="warehouse root directory")
    wh_inspect.add_argument("--probe", default=None, metavar="PATTERN",
                            help="also backtrace PATTERN and report its segment-cache "
                                 "accounting (how much of the run the query touches)")

    wh_query = wh_commands.add_parser(
        "query", help="lazily backtrace a tree pattern over a stored run"
    )
    wh_query.add_argument("run", help="run id or name (names resolve to newest)")
    wh_query.add_argument("pattern", help="tree pattern, e.g. 'root{//id_str=\"lp\"}'")
    wh_query.add_argument("--root", required=True, help="warehouse root directory")
    wh_query.add_argument("--partitions", type=int, default=None,
                          help="partition count (default: engine default)")
    wh_query.add_argument("--cache-size", type=int, default=64)
    wh_query.add_argument("--analyze", action="store_true",
                          help="print an explain-analyze breakdown: per-phase "
                               "wall time, segments touched, cache hits")
    wh_query.add_argument("--trace", default=None, metavar="PATH",
                          help="write a Chrome trace-event JSON of the query")

    wh_retain = wh_commands.add_parser(
        "retain",
        help="expire epochs older than a TTL from streaming runs "
             "(writes verified retention receipts)",
    )
    wh_retain.add_argument("--root", required=True, help="warehouse root directory")
    wh_retain.add_argument("--ttl", type=float, required=True, metavar="SECONDS",
                           help="expire epochs appended more than SECONDS ago")
    wh_retain.add_argument("--run", default=None,
                           help="restrict the sweep to one run id or name "
                                "(default: every epoch-layout run)")

    index = commands.add_parser(
        "index", help="manage the persisted per-run forward/audit indexes"
    )
    index_commands = index.add_subparsers(dest="index_command", required=True)
    index_build = index_commands.add_parser(
        "build", help="build (or rebuild) the index of a stored run"
    )
    index_build.add_argument("run", nargs="?", default=None,
                             help="run id or name (default: newest run)")
    index_build.add_argument("--root", required=True, help="warehouse root directory")
    index_build.add_argument("--force", action="store_true",
                             help="rebuild even if an index already exists")
    index_info = index_commands.add_parser(
        "info", help="show whether a run is indexed and the index sections"
    )
    index_info.add_argument("run", nargs="?", default=None,
                            help="run id or name (default: newest run)")
    index_info.add_argument("--root", required=True, help="warehouse root directory")

    forward = commands.add_parser(
        "trace-forward",
        help="forward provenance: which outputs derive from matching inputs",
    )
    forward.add_argument("run", nargs="?", default=None,
                         help="run id or name (default: newest run)")
    forward.add_argument("--pattern", required=True,
                         help="tree pattern over the source items, "
                         "e.g. 'root{//id_str=\"lp\"}'")
    forward.add_argument("--root", required=True, help="warehouse root directory")
    forward.add_argument("--method", choices=["lazy", "eager"], default="lazy")
    forward.add_argument("--no-index", action="store_true",
                         help="ignore any persisted index (full scan)")
    forward.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the JSON answer instead of the text rendering")
    forward.add_argument("--analyze", action="store_true",
                         help="print an explain-analyze breakdown: per-phase "
                              "wall time, index probes vs scan, rows visited")
    forward.add_argument("--trace", default=None, metavar="PATH",
                         help="write a Chrome trace-event JSON of the trace")

    audit = commands.add_parser(
        "audit", help="GDPR workflows: subject-access requests, erasure checks"
    )
    audit_commands = audit.add_subparsers(dest="audit_command", required=True)

    def _audit_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("subjects", nargs="*",
                         help="subject identifiers (or use --subjects-file)")
        sub.add_argument("--subjects-file", default=None, metavar="PATH",
                         help="file with one subject identifier per line")
        sub.add_argument("--root", required=True, help="warehouse root directory")
        sub.add_argument("--run", action="append", default=None, dest="runs",
                         help="restrict to this run id or name (repeatable; "
                         "default: every catalogued run)")
        sub.add_argument("--template", default=None,
                         help="pattern template with a {subject} placeholder "
                         "(default: any string leaf equals the subject)")
        sub.add_argument("--method", choices=["lazy", "eager"], default="lazy")
        sub.add_argument("--no-index", action="store_true",
                         help="ignore persisted indexes (full scan)")
        sub.add_argument("--report", default=None, metavar="PATH",
                         help="also write the JSON report here")

    audit_sar = audit_commands.add_parser(
        "sar", help="bulk subject-access request over stored runs"
    )
    _audit_common(audit_sar)
    audit_sar.add_argument("--page", type=int, default=1)
    audit_sar.add_argument("--page-size", type=int, default=100)
    audit_sar.add_argument("--include-items", action="store_true",
                           help="embed the derived output items in the report")

    audit_erasure = audit_commands.add_parser(
        "erasure",
        help="verify nothing derives from the subjects any more "
        "(exit 0 clean, 1 residuals found)",
    )
    _audit_common(audit_erasure)

    stats = commands.add_parser(
        "stats", help="print the metrics registry describing a stored run"
    )
    stats.add_argument("run", nargs="?", default=None,
                       help="run id or name (default: newest run)")
    stats.add_argument("--root", default=None, help="warehouse root directory")
    stats.add_argument("--remote", default=None, metavar="URL",
                       help="fetch the registry from a running `repro serve` "
                            "instead of opening a warehouse locally")
    stats.add_argument("--pattern", default=None,
                       help="also run this backtrace and fold its cache metrics in "
                            "(local --root only)")
    stats.add_argument("--json", action="store_true", dest="as_json",
                       help="emit JSON instead of Prometheus text exposition")
    stats.add_argument("--slow", action="store_true",
                       help="print the slow-query ring instead of the registry "
                            "(this process's, or the server's with --remote)")

    serve = commands.add_parser(
        "serve", help="serve provenance queries over a warehouse via HTTP"
    )
    serve.add_argument("--root", required=True, help="warehouse root directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9410,
                       help="listening port (0: ephemeral)")
    serve.add_argument("--workers", type=int, default=4,
                       help="query worker threads")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="admission queue depth beyond the workers (full -> 429)")
    serve.add_argument("--deadline", type=float, default=30.0,
                       help="per-request deadline in seconds (0: unbounded; over -> 504)")
    serve.add_argument("--cache-size", type=int, default=128,
                       help="pattern-result cache capacity (entries)")
    serve.add_argument("--segment-cache-size", type=int, default=None,
                       help="per-resident-run operator segment cache size")
    serve.add_argument("--partitions", type=int, default=None,
                       help="partition count for restored runs")
    serve.add_argument("--retention-ttl", type=float, default=None,
                       metavar="SECONDS",
                       help="sweep streaming runs in the background, expiring "
                            "epochs older than SECONDS (default: no sweeping)")
    serve.add_argument("--retention-sweep-interval", type=float, default=60.0,
                       metavar="SECONDS",
                       help="how often the background retention sweep runs")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Chrome trace-event JSON on shutdown")
    serve.add_argument("--fleet", type=int, default=None, metavar="N",
                       help="serve through an N-worker fleet behind a router "
                            "(the listening port becomes the router's)")
    serve.add_argument("--fleet-mode", choices=["thread", "process"],
                       default="thread",
                       help="how --fleet hosts its workers (default: thread)")

    shard = commands.add_parser(
        "shard", help="manage the warehouse's storage shards"
    )
    shard_commands = shard.add_subparsers(dest="shard_command", required=True)
    shard_ls = shard_commands.add_parser(
        "ls", help="per-shard run counts, sizes, and epochs"
    )
    shard_ls.add_argument("--root", required=True, help="warehouse root directory")
    shard_init = shard_commands.add_parser(
        "init", help="initialise (or grow) the shard layout"
    )
    shard_init.add_argument("--root", required=True, help="warehouse root directory")
    shard_init.add_argument("--count", type=int, required=True,
                            help="number of shards (grow-only)")
    shard_rebalance = shard_commands.add_parser(
        "rebalance",
        help="move runs to their ring-assigned shards (optionally growing first)",
    )
    shard_rebalance.add_argument("--root", required=True,
                                 help="warehouse root directory")
    shard_rebalance.add_argument("--count", type=int, default=None,
                                 help="grow to this many shards before rebalancing")

    return parser


def _cmd_list() -> int:
    for name in sorted(SCENARIOS):
        spec = SCENARIOS[name]
        print(f"{name} ({spec.kind}): {spec.description}")
        print(f"    query: {spec.pattern}")
    return 0


def _cmd_example(pattern: str) -> int:
    session = Session(num_partitions=2)
    pipeline = build_running_example(session, list(RUNNING_EXAMPLE_TWEETS))
    execution = pipeline.execute(capture=True)
    print("Result (Tab. 2):")
    for item in execution.items():
        print(" ", item)
    provenance = query_provenance(execution, pattern)
    print(f"\nProvenance of {pattern}:")
    print(provenance.render())
    return 0


def _engine_config(scheduler: str | None, no_optimize: bool) -> EngineConfig:
    """The environment-derived config with the CLI's explicit overrides."""
    config = EngineConfig.from_env()
    if scheduler is not None:
        config = config.replace(scheduler=scheduler)
    if no_optimize:
        config = config.replace(optimize=False)
    return config


@contextlib.contextmanager
def _trace_to(path: str | None) -> Iterator[None]:
    """Run the body under a live tracer; write a Chrome trace on exit.

    With no *path* this is a no-op and the process-wide null tracer stays
    active, so untraced commands pay nothing.
    """
    if not path:
        yield
        return
    tracer = Tracer()
    try:
        with tracing(tracer):
            yield
    finally:
        # Written even when the command fails: a trace of a failed run is
        # exactly the postmortem artifact tracing exists for.
        tracer.write_chrome_trace(path)
        print(f"wrote trace {path} ({len(tracer.spans())} spans)")


def _write_json(path: str, payload: object) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {path}")


def _build_pipeline(name: str, session: Session, scale: float):
    """Return ``(dataset, description)`` for a scenario name or ``example``."""
    if name == "example":
        dataset = build_running_example(session, list(RUNNING_EXAMPLE_TWEETS))
        return dataset, "the paper's running example (Sec. 2)"
    spec = scenario(name)
    dataset = spec.build(session, load_workload(spec.kind, scale))
    return dataset, spec.description


def _cmd_scenario(args: argparse.Namespace) -> int:
    spec = scenario(args.name)
    data = load_workload(spec.kind, args.scale)
    session = Session(
        num_partitions=args.partitions,
        config=_engine_config(args.scheduler, args.no_optimize),
    )
    execution = spec.build(session, data).execute(capture=True)
    print(f"{args.name}: {spec.description}")
    print(f"result rows: {len(execution)}")
    print(f"provenance:  {execution.store.size_report()}")
    if args.metrics_json:
        _write_json(args.metrics_json, execution.metrics.to_json())
    if args.no_query:
        return 0
    query = args.pattern or spec.pattern
    provenance = query_provenance(execution, query)
    print(f"\nquery: {query}")
    print(f"matched result items: {len(provenance.matched_output_ids)}")
    for source in provenance.sources:
        print(f"  {source.name}: {len(source)} input items in provenance")
    print()
    print(provenance.render())
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    session = Session(
        num_partitions=args.partitions,
        config=_engine_config(args.scheduler, args.no_optimize),
    )
    dataset, description = _build_pipeline(args.name, session, args.scale)
    physical = Executor(capture=args.capture, config=session.config).compile(dataset.plan)
    config = session.config
    print(f"{args.name}: {description}")
    print(
        f"capture: {'on' if args.capture else 'off'}  "
        f"optimize: {'on' if config.optimize else 'off'}  "
        f"scheduler: {config.scheduler}  partitions: {config.num_partitions}"
    )
    print("\nlogical plan:")
    print(dataset.explain())
    print("\nrewrites:")
    print(physical.report.describe())
    print("\nphysical plan:")
    print(physical.describe())
    return 0


def _measurement_dict(measurement: object) -> dict:
    """Flatten one bench measurement (all of which use ``__slots__``) to JSON."""
    return {
        slot: getattr(measurement, slot)
        for slot in type(measurement).__slots__
    }


def _cmd_bench(
    figure: str,
    scale: float,
    repeats: int,
    metrics_json: str | None,
    history: str | None = None,
    no_history: bool = False,
    batches: int = 4,
) -> int:
    measurements: list = []
    if figure == "fig6":
        measurements = measure_capture_overhead(
            TWITTER_SCENARIOS, scales=(scale,), repeats=repeats
        )
        print(render_capture_overhead(measurements, "Fig. 6 -- Twitter capture overhead"))
    elif figure == "fig7":
        measurements = measure_capture_overhead(
            DBLP_SCENARIOS, scales=(scale,), repeats=repeats
        )
        print(render_capture_overhead(measurements, "Fig. 7 -- DBLP capture overhead"))
    elif figure == "fig8":
        twitter = measure_provenance_size(TWITTER_SCENARIOS, scale=scale)
        dblp = measure_provenance_size(DBLP_SCENARIOS, scale=scale)
        measurements = twitter + dblp
        print(render_provenance_sizes(twitter, "Fig. 8(a) -- Twitter provenance size"))
        print(render_provenance_sizes(dblp, "Fig. 8(b) -- DBLP provenance size"))
    elif figure == "fig9":
        twitter = measure_query_times(TWITTER_SCENARIOS, scale=scale, repeats=repeats)
        dblp = measure_query_times(DBLP_SCENARIOS, scale=scale, repeats=repeats)
        measurements = twitter + dblp
        print(render_query_times(twitter, "Fig. 9(a) -- Twitter query runtime"))
        print(render_query_times(dblp, "Fig. 9(b) -- DBLP query runtime"))
    elif figure == "titian":
        measurement = measure_titian_comparison(scale=scale, repeats=max(repeats, 9))
        measurements = [measurement]
        print(render_titian_comparison(measurement))
    elif figure == "operators":
        measurements = measure_operator_overhead(scale=scale, repeats=repeats)
        print(render_operator_overhead(measurements))
    elif figure == "ablation":
        measurements = measure_optimizer_ablation(
            TWITTER_SCENARIOS, scale=scale, repeats=repeats
        )
        print(render_optimizer_ablation(measurements))
    elif figure == "stream":
        measurements = measure_stream(scale=scale, repeats=repeats, batches=batches)
        print(render_stream(measurements))
    if metrics_json:
        payload = {
            "figure": figure,
            "scale": scale,
            "measurements": [_measurement_dict(entry) for entry in measurements],
        }
        _write_json(metrics_json, payload)
    if measurements and not no_history:
        from repro.bench.history import append_history

        path = append_history(
            figure, scale, [_measurement_dict(entry) for entry in measurements],
            path=history,
        )
        if path is not None:
            print(f"history: appended {len(measurements)} record(s) to {path}")
    return 0


def _cmd_heatmap(scale: float, items: int) -> int:
    usage = UsageAnalysis()
    for name in DBLP_SCENARIOS:
        spec = scenario(name)
        data = load_workload(spec.kind, scale)
        execution = spec.build(Session(num_partitions=4), data).execute(capture=True)
        usage.add(query_provenance(execution, spec.pattern))
    attributes = ["key", "title", "authors", "year", "crossref", "pages"]
    source = "inproceedings.json"
    print(usage.render_heatmap(source, range(1, items + 1), attributes))
    print()
    print(usage.partitioning_advice(source, attributes))
    return 0


def _cmd_warehouse(args: argparse.Namespace) -> int:
    from repro.warehouse import Warehouse

    warehouse = Warehouse.open(args.root)

    if args.warehouse_command == "record":
        session = Session(num_partitions=args.partitions)
        if args.name == "example":
            pipeline = build_running_example(session, list(RUNNING_EXAMPLE_TWEETS))
        else:
            spec = scenario(args.name)
            pipeline = spec.build(session, load_workload(spec.kind, args.scale))
        with _trace_to(args.trace):
            execution = pipeline.execute(capture=True)
            record = warehouse.record(
                execution,
                name=args.run_name or args.name,
                index=not args.no_index,
            )
        print(f"recorded {record.run_id} ({record.name})")
        print(f"  operators: {record.operator_count}")
        print(f"  rows:      {record.row_count}")
        print(f"  bytes:     {record.total_bytes}")
        print(f"  indexed:   {'yes' if record.indexed else 'no'}")
        return 0

    if args.warehouse_command == "ls":
        runs = warehouse.runs()
        if not runs:
            print(f"warehouse {warehouse.root}: no runs")
            return 0
        print(f"warehouse {warehouse.root}: {len(runs)} run(s)")
        header = f"{'run id':<24} {'name':<16} {'created':<20} {'ops':>4} {'rows':>6} {'bytes':>10}"
        print(header)
        print("-" * len(header))
        for record in runs:
            print(
                f"{record.run_id:<24} {record.name:<16} {record.created_iso():<20} "
                f"{record.operator_count:>4} {record.row_count:>6} {record.total_bytes:>10}"
            )
        return 0

    if args.warehouse_command == "inspect":
        summary = warehouse.inspect(args.run)
        print(f"{summary['run_id']} ({summary['name']}), created {summary['created']}")
        print(f"sink oid {summary['sink_oid']}, {summary['rows']} rows, "
              f"{summary['total_bytes']} bytes on disk")
        header = f"{'oid':>4} {'type':<12} {'kind':<12} {'records':>8} {'bytes':>9}  label"
        print(header)
        print("-" * len(header))
        for op in summary["operators"]:
            label = op["label"]
            if op["source_name"]:
                label = f"{label} [{op['source_name']}]"
            print(
                f"{op['oid']:>4} {op['op_type']:<12} {op['kind']:<12} "
                f"{op['records']:>8} {op['segment_bytes']:>9}  {label}"
            )
        if args.probe:
            _, cache = warehouse.backtrace(summary["run_id"], args.probe)
            print()
            print(f"probe: {args.probe}")
            print(f"segment cache: {json.dumps(cache.to_json())}")
        return 0

    if args.warehouse_command == "query":
        breakdown = None
        if args.analyze:
            from repro.obs.breakdown import QueryBreakdown

            breakdown = QueryBreakdown()
        with _trace_to(args.trace):
            provenance, metrics = warehouse.backtrace(
                args.run,
                args.pattern,
                num_partitions=args.partitions,
                cache_size=args.cache_size,
                breakdown=breakdown,
            )
        print(f"query: {args.pattern}")
        print(f"matched result items: {len(provenance.matched_output_ids)}")
        for source in provenance.sources:
            print(f"  {source.name}: {len(source)} input items in provenance")
        print()
        print(provenance.render())
        print()
        total = warehouse.inspect(args.run)["operators"]
        print(
            f"segments decoded: {metrics.misses}/{len(total)} "
            f"(cache hit rate {metrics.hit_rate:.2f}, {metrics.bytes_read} bytes read)"
        )
        print(f"segment cache: {json.dumps(metrics.to_json())}")
        if breakdown is not None:
            from repro.obs.breakdown import render_breakdown

            print()
            print(render_breakdown(breakdown.to_json()))
        return 0

    if args.warehouse_command == "retain":
        report = warehouse.retain(args.ttl, run_id=args.run)
        if not report["receipts"]:
            print(f"retention: no epochs older than {args.ttl:g}s")
            return 0
        print(f"retention: {len(report['receipts'])} run(s) swept "
              f"(ttl {args.ttl:g}s)")
        for receipt in report["receipts"]:
            epochs = [entry["epoch"] for entry in receipt["expired_epochs"]]
            verified = receipt["verified"]
            status = (
                "verified"
                if verified["sink_ids_absent"] and verified["source_ids_absent"]
                else "FAILED VERIFICATION"
            )
            print(f"  {receipt['run_id']}: expired epoch(s) "
                  f"{', '.join(str(epoch) for epoch in epochs)} -- {status}, "
                  f"receipt sha256:{receipt['digest'][:12]}")
        return 0

    raise AssertionError(
        f"unhandled warehouse command {args.warehouse_command!r}"
    )  # pragma: no cover


def _cmd_index(args: argparse.Namespace) -> int:
    from repro.warehouse import RunIndex, Warehouse
    from repro.warehouse.reader import load_manifest

    warehouse = Warehouse.open(args.root)
    record = warehouse.resolve(args.run)

    if args.index_command == "build":
        from repro.errors import LiveRunError

        try:
            entry = warehouse.build_index(record.run_id, force=args.force)
        except LiveRunError as exc:
            # A live run indexes itself per epoch; a batch backfill would
            # race the ingest. Explain instead of dumping a traceback.
            print(f"index build: {exc}", file=sys.stderr)
            return 1
        print(f"indexed {record.run_id}: "
              f"{entry['inputs']} input ids, {entry['terms']} terms, "
              f"{entry['items']} item ranges, {entry['paths']} paths "
              f"({entry['segment_bytes']} bytes)")
        return 0

    if args.index_command == "info":
        manifest = load_manifest(warehouse.run_dir(record.run_id))
        index = RunIndex.load(warehouse.run_dir(record.run_id), manifest)
        if index is None:
            print(f"{record.run_id}: not indexed "
                  f"(forward/audit queries fall back to a full scan)")
            return 0
        print(f"{record.run_id}: {json.dumps(index.summary())}")
        return 0

    raise AssertionError(
        f"unhandled index command {args.index_command!r}"
    )  # pragma: no cover


def _cmd_trace_forward(args: argparse.Namespace) -> int:
    from repro.warehouse import Warehouse

    breakdown = None
    if args.analyze:
        from repro.obs.breakdown import QueryBreakdown

        breakdown = QueryBreakdown()
    warehouse = Warehouse.open(args.root)
    with _trace_to(args.trace):
        result = warehouse.forward(
            args.run,
            args.pattern,
            method=args.method,
            use_index=not args.no_index,
            breakdown=breakdown,
        )
    if args.as_json:
        payload = result.to_json()
        if breakdown is not None:
            payload["analyze"] = breakdown.to_json()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(result.render())
        stats = result.stats
        print(f"\nindex: {'used' if stats['index_used'] else 'absent (full scan)'}  "
              f"operators decoded: {stats['operators_decoded']}  "
              f"skipped: {stats['operators_skipped']}")
        if breakdown is not None:
            from repro.obs.breakdown import render_breakdown

            print()
            print(render_breakdown(breakdown.to_json()))
    return 0


def _audit_subjects(args: argparse.Namespace) -> list[str]:
    subjects = list(args.subjects)
    if args.subjects_file:
        with open(args.subjects_file, "r", encoding="utf-8") as handle:
            subjects.extend(
                line.strip() for line in handle if line.strip()
            )
    if not subjects:
        raise SystemExit("audit: no subjects given (arguments or --subjects-file)")
    return subjects


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.audit import (
        DEFAULT_SUBJECT_TEMPLATE,
        subject_access_request,
        verify_erasure,
    )
    from repro.warehouse import Warehouse

    warehouse = Warehouse.open(args.root)
    subjects = _audit_subjects(args)
    template = args.template or DEFAULT_SUBJECT_TEMPLATE

    if args.audit_command == "sar":
        report = subject_access_request(
            warehouse,
            subjects,
            runs=args.runs,
            template=template,
            method=args.method,
            page=args.page,
            page_size=args.page_size,
            use_index=not args.no_index,
            include_items=args.include_items,
        )
        print(f"subject-access request: page {report['page']}/{report['pages']}, "
              f"{report['total_subjects']} subject(s)")
        for entry in report["subjects"]:
            print(f"  {entry['subject']}: {entry['total_outputs']} derived output(s) "
                  f"across {entry['run_count']} run(s)")
            for run in entry["runs"]:
                print(f"    {run['run_id']}: {run['matched_inputs']} input item(s) "
                      f"-> {run['output_count']} output(s)")
        if args.report:
            _write_json(args.report, report)
        return 0

    if args.audit_command == "erasure":
        report = verify_erasure(
            warehouse,
            subjects,
            runs=args.runs,
            template=template,
            method=args.method,
            use_index=not args.no_index,
        )
        verdict = "CLEAN" if report["clean"] else "RESIDUALS FOUND"
        print(f"erasure verification: {verdict} "
              f"({report['subject_count']} subject(s), "
              f"{len(report['runs_checked'])} run(s))")
        for finding in report["subjects"]:
            if finding["clean"]:
                print(f"  {finding['subject']}: clean")
            else:
                for residual in finding["residuals"]:
                    print(f"  {finding['subject']}: {residual['matched_inputs']} "
                          f"input item(s) still feed {len(residual['output_ids'])} "
                          f"output(s) in {residual['run_id']}")
        print(f"digest: sha256:{report['digest']}")
        if args.report:
            _write_json(args.report, report)
        return 0 if report["clean"] else 1

    raise AssertionError(
        f"unhandled audit command {args.audit_command!r}"
    )  # pragma: no cover


def _local_slow_payload() -> dict:
    """This process's slow-query ring, shaped like ``GET /debug/slow``."""
    from repro.obs.slowlog import get_slow_log, slow_threshold_seconds

    threshold = slow_threshold_seconds()
    ring = get_slow_log()
    return {
        "threshold_ms": threshold * 1000.0 if threshold is not None else None,
        "total": ring.total,
        "entries": ring.snapshot(),
    }


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.remote and args.root:
        print("stats: use either --root or --remote, not both", file=sys.stderr)
        return 2
    if args.remote:
        from repro.serve.client import ServeClient

        if args.pattern:
            print("stats: --pattern needs a local --root", file=sys.stderr)
            return 2
        client = ServeClient(args.remote)
        if args.slow:
            print(json.dumps(client.debug_slow(), indent=2))
            return 0
        if args.as_json:
            print(json.dumps(client.run_stats(args.run), indent=2))
        else:
            print(client.run_stats(args.run, prometheus=True), end="")
        return 0
    if not args.root:
        if args.slow:
            # No warehouse involved: report whatever this process captured.
            print(json.dumps(_local_slow_payload(), indent=2))
            return 0
        print("stats: one of --root or --remote is required", file=sys.stderr)
        return 2
    from repro.warehouse import Warehouse

    registry = Warehouse.open(args.root).stats(args.run, pattern=args.pattern)
    if args.slow:
        # The --pattern query (if any) just ran in-process, so over-budget
        # work shows up here exactly like it would on a server's /debug/slow.
        print(json.dumps(_local_slow_payload(), indent=2))
        return 0
    if args.as_json:
        print(json.dumps(registry.to_json(), indent=2))
    else:
        print(registry.render_prometheus(), end="")
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro.warehouse import Warehouse

    warehouse = Warehouse.open(args.root)

    if args.shard_command == "ls":
        summary = warehouse.shard_summary()
        if not warehouse.sharded:
            print(f"warehouse {warehouse.root}: unsharded (flat layout)")
        header = f"{'shard':<12} {'runs':>4} {'rows':>8} {'bytes':>12} {'epoch':>5}"
        print(header)
        print("-" * len(header))
        for entry in summary:
            name = entry["shard"] or "(legacy)"
            print(f"{name:<12} {entry['runs']:>4} {entry['rows']:>8} "
                  f"{entry['bytes']:>12} {entry['epoch']:>5}")
        return 0

    if args.shard_command == "init":
        names = warehouse.init_shards(args.count)
        print(f"warehouse {warehouse.root}: {len(names)} shard(s)")
        for name in names:
            print(f"  {name}")
        return 0

    if args.shard_command == "rebalance":
        outcome = warehouse.rebalance(count=args.count)
        print(f"warehouse {warehouse.root}: {len(outcome['shards'])} shard(s), "
              f"{len(outcome['moved'])} run(s) moved, {outcome['unmoved']} in place")
        for move in outcome["moved"]:
            source = move["from"] or "(legacy)"
            print(f"  {move['run_id']}: {source} -> {move['to']}")
        return 0

    raise AssertionError(
        f"unhandled shard command {args.shard_command!r}"
    )  # pragma: no cover


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    from repro.serve.fleet import Fleet
    from repro.serve.router import RouterService, RouterServer

    with Fleet(args.root, size=args.fleet, mode=args.fleet_mode) as fleet:
        router = RouterService(fleet.workers())
        server = RouterServer(router, host=args.host, port=args.port)
        print(f"routing warehouse {args.root} at {server.url}")
        print(f"  fleet: {args.fleet} {args.fleet_mode} worker(s)")
        for name, url in fleet.workers():
            print(f"    {name}: {url}")
        print("  endpoints: /v1/healthz /v1/fleet /v1/runs /v1/stats "
              "/metrics POST /v1/query /v1/forward /v1/audit/sar "
              "/v1/audit/erasure")
        sys.stdout.flush()
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            print("\nshutting down fleet")
            sys.stdout.flush()
            server.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.fleet:
        return _cmd_serve_fleet(args)
    from repro.serve import ProvenanceServer, QueryService, ServeConfig
    from repro.warehouse.reader import DEFAULT_CACHE_SIZE

    config = ServeConfig(
        root=args.root,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        deadline=args.deadline,
        cache_size=args.cache_size,
        segment_cache_size=(
            args.segment_cache_size
            if args.segment_cache_size is not None
            else DEFAULT_CACHE_SIZE
        ),
        num_partitions=args.partitions,
        retention_ttl=args.retention_ttl,
        retention_sweep_interval=args.retention_sweep_interval,
    )
    from repro.obs.profile import profile_enabled

    profiler = None
    if profile_enabled():
        from repro.obs.profile import SamplingProfiler

        # One profiler for the server's lifetime: the sampler sees the
        # worker threads, so server-side query work is attributed too.
        profiler = SamplingProfiler(stage="serve").start()
    with _trace_to(args.trace):
        service = QueryService.open(config)
        server = ProvenanceServer(service)
        print(f"serving warehouse {service.warehouse.root} at {server.url}")
        print(f"  workers: {config.workers}  queue limit: {config.queue_limit}  "
              f"deadline: {config.deadline or 'none'}s")
        if config.retention_ttl:
            print(f"  retention: ttl {config.retention_ttl:g}s, sweep every "
                  f"{config.retention_sweep_interval:g}s")
        print("  endpoints: /healthz /runs /runs/<id> /stats /metrics "
              "/debug/slow POST /query /forward /audit/sar")
        if profiler is not None:
            print("  profiler: sampling (REPRO_PROFILE=on)")
        # Supervisors read the banner through a pipe; don't sit in the buffer.
        sys.stdout.flush()
        server.install_signal_handlers()
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass  # direct ^C before the handler was armed: same clean path
        finally:
            if server.signalled is not None:
                print("\nshutting down (signal), draining queries")
            else:
                print("\nshutting down")
            sys.stdout.flush()
            server.close()
            if profiler is not None:
                from repro.obs.profile import profile_out_path

                profiler.stop()
                out = profile_out_path() or "serve_profile.folded"
                lines = profiler.write_folded(out)
                print(f"wrote {out} ({lines} stacks, "
                      f"{profiler.sample_count} samples)")
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    if args.fleet:
        return _cmd_bench_fleet(args)
    from repro.serve.bench import run_load, write_report

    report = run_load(
        args.url,
        args.pattern,
        run=args.run,
        method=args.method,
        requests=args.requests,
        concurrency=args.concurrency,
    )
    print(report.render())
    json_path, text_path = write_report(
        report, args.report or "benchmarks/results/serve_bench.json"
    )
    print(f"wrote {json_path} and {text_path}")
    return 0 if report.completed else 1


def _cmd_bench_fleet(args: argparse.Namespace) -> int:
    import os

    from repro.serve.fleetbench import (
        render_fleet_report,
        run_fleet_bench,
        write_fleet_report,
    )

    if not args.root:
        print("bench serve --fleet needs --root", file=sys.stderr)
        return 2
    report = run_fleet_bench(
        args.root,
        size=args.fleet,
        pattern=args.pattern,
        run=args.run,
        method=args.method,
        requests=args.requests,
        concurrency=args.concurrency,
        mode=args.fleet_mode,
    )
    print(render_fleet_report(report))
    json_path, text_path = write_fleet_report(
        report, args.report or "benchmarks/results/fleet_bench.json"
    )
    print(f"wrote {json_path} and {text_path}")
    if not report["byte_identical"]:
        print("bench serve --fleet: fleet answers diverged from direct "
              "warehouse queries", file=sys.stderr)
        return 1
    # Scaling is only a pass/fail question when there are cores to scale onto.
    if (os.cpu_count() or 1) >= 2 * args.fleet and report["speedup"] < 1.5:
        print(f"bench serve --fleet: speedup x{report['speedup']:.2f} below "
              "expectation on a multi-core host", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_audit(args: argparse.Namespace) -> int:
    from repro.audit.bench import render_audit_report, run_audit_bench, write_audit_report

    scenarios = tuple(
        name.strip() for name in args.scenarios.split(",") if name.strip()
    )
    for name in scenarios:
        if name not in SCENARIOS:
            print(f"bench audit: unknown scenario {name!r}", file=sys.stderr)
            return 2
    report = run_audit_bench(
        scenarios=scenarios,
        scale=args.scale,
        subjects=args.subjects,
        subject_pool=args.subject_pool,
    )
    print(render_audit_report(report))
    json_path, text_path = write_audit_report(
        report, args.report or "benchmarks/results/audit_bench.json"
    )
    print(f"wrote {json_path} and {text_path}")
    slower = [
        entry["scenario"]
        for entry in report["scenarios"]
        if entry["indexed"]["wall_seconds"] >= entry["scan"]["wall_seconds"]
    ]
    if slower:
        print(f"bench audit: index no faster than scan on {', '.join(slower)}",
              file=sys.stderr)
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "example":
        with _trace_to(args.trace):
            return _cmd_example(args.pattern)
    if args.command == "scenario":
        with _trace_to(args.trace):
            return _cmd_scenario(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "bench":
        if args.figure == "serve":
            return _cmd_bench_serve(args)
        if args.figure == "audit":
            return _cmd_bench_audit(args)
        with _trace_to(args.trace):
            return _cmd_bench(
                args.figure, args.scale, args.repeats, args.metrics_json,
                history=args.history, no_history=args.no_history,
                batches=args.batches,
            )
    if args.command == "heatmap":
        return _cmd_heatmap(args.scale, args.items)
    if args.command == "warehouse":
        return _cmd_warehouse(args)
    if args.command == "index":
        return _cmd_index(args)
    if args.command == "trace-forward":
        return _cmd_trace_forward(args)
    if args.command == "audit":
        return _cmd_audit(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "shard":
        return _cmd_shard(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
