"""The pattern-result cache: memoised answers to repeated provenance queries.

The serving workload the paper's query evaluation (Sec. 6) implies is
*repeated*: the same auditing or data-usage question is asked against the
same immutable run again and again.  Stored runs never change after
``record``, so a query's answer is a pure function of
``(run, pattern, method)`` -- the perfect cache key.  The cache turns the
second and every later ask into a dictionary lookup, which is what the
``repro bench serve`` report measures as the warm/cold latency gap.

Two properties matter beyond a plain LRU:

* **Single-flight computation.**  Concurrent misses on the same key would
  each run the backtrace; instead the first requester computes while the
  others wait on the entry, so a key is computed exactly once no matter how
  many threads race for it.  This also makes the hit/miss counters
  deterministic under concurrency: misses == unique keys computed.
* **Failure does not poison.**  A computation that raises removes its entry
  (after propagating the error to every waiter), so a transient failure --
  e.g. a deadline overrun -- never caches as a permanent wrong answer.

Invalidation comes in two grains.  Whole-cache (:meth:`invalidate`) covers
catalog changes that can move *name* resolution ("newest run named X").
Run-scoped (:meth:`invalidate_runs`) covers per-shard epoch bumps: the
serving layer keys every entry with the resolved run id(s) in position 1,
so when one shard's epoch moves only the answers over that shard's runs
drop and every other worker-hot entry survives.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable

from repro.errors import ServeError, TaskTimeoutError

__all__ = ["PatternResultCache", "CacheStats"]


class CacheStats:
    """Cumulative accounting of one cache instance (read under the cache lock)."""

    __slots__ = ("hits", "misses", "evictions", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def to_json(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, invalidations={self.invalidations})"
        )


class _Entry:
    """One cache slot: either resolved to a value or still being computed."""

    __slots__ = ("ready", "value", "error")

    def __init__(self) -> None:
        self.ready = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


class PatternResultCache:
    """Thread-safe LRU of query answers with single-flight computation."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ServeError(f"pattern cache needs capacity >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: OrderedDict[Any, _Entry] = OrderedDict()

    def get_or_compute(
        self,
        key: Any,
        compute: Callable[[], Any],
        wait_timeout: float | None = None,
    ) -> tuple[Any, bool]:
        """Return ``(value, was_hit)``; computes at most once per resident key.

        A hit may still block briefly while the owning thread finishes the
        computation; *wait_timeout* bounds that wait (the serving layer
        passes its per-request deadline) and overrunning it raises
        :class:`~repro.errors.TaskTimeoutError`, mirroring the pool's
        deadline semantics.
        """
        owner = False
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.stats.hits += 1
                self._entries.move_to_end(key)
            else:
                owner = True
                self.stats.misses += 1
                entry = _Entry()
                self._entries[key] = entry
                if len(self._entries) > self.capacity:
                    self._evict_oldest(protect=key)
        if owner:
            try:
                entry.value = compute()
            except BaseException as exc:
                entry.error = exc
                with self._lock:
                    if self._entries.get(key) is entry:
                        del self._entries[key]
                entry.ready.set()
                raise
            entry.ready.set()
            return entry.value, False
        if not entry.ready.wait(wait_timeout):
            raise TaskTimeoutError(
                f"waited {wait_timeout}s for an in-flight computation of {key!r}"
            )
        if entry.error is not None:
            raise entry.error
        return entry.value, True

    def _evict_oldest(self, protect: Any) -> None:
        """Drop the least-recently-used entry that is not *protect*."""
        for key in self._entries:
            if key != protect:
                del self._entries[key]
                self.stats.evictions += 1
                return

    def invalidate(self) -> int:
        """Drop every entry (catalog changed); returns the number dropped.

        In-flight computations are unaffected: their waiters hold direct
        entry references, and the owner's result simply never lands in the
        map (it was already removed), so the next request recomputes.
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            if dropped:
                self.stats.invalidations += 1
            return dropped

    def invalidate_runs(self, run_ids: set[str]) -> int:
        """Drop entries whose answer depends on any run in *run_ids*.

        The serving layer's cache keys carry the resolved run scope at
        position 1: a single run id for ``query``/``forward`` keys, a tuple
        of run ids for ``sar``/``erasure`` keys.  Counts one invalidation
        event when anything dropped (same accounting as :meth:`invalidate`).
        """
        with self._lock:
            doomed = []
            for key in self._entries:
                scope = key[1] if isinstance(key, tuple) and len(key) > 1 else None
                if isinstance(scope, str):
                    if scope in run_ids:
                        doomed.append(key)
                elif isinstance(scope, tuple):
                    if any(run in run_ids for run in scope):
                        doomed.append(key)
                else:
                    # Unrecognised key shape: drop conservatively.
                    doomed.append(key)
            for key in doomed:
                del self._entries[key]
            if doomed:
                self.stats.invalidations += 1
            return len(doomed)

    def snapshot(self) -> dict[str, int]:
        """Entry count plus the cumulative stats, read atomically."""
        with self._lock:
            return {"entries": len(self._entries), **self.stats.to_json()}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        with self._lock:
            return f"PatternResultCache({len(self._entries)}/{self.capacity}, {self.stats!r})"
