"""The query worker pool: bounded concurrency with admission control.

A provenance backtrace is CPU-bound pure-Python work; letting every HTTP
connection run one directly would melt the process under load.  The pool
separates the two concerns:

* **connection threads** (``ThreadingHTTPServer``) accept requests and wait;
* **query workers** (a fixed ``ThreadPoolExecutor``) run the backtraces.

Admission control sits between them: at most ``workers + queue_limit``
requests may be in flight, and the next one is rejected *immediately* with
:class:`~repro.errors.AdmissionError` (HTTP 429) rather than queued without
bound -- under overload the server stays responsive and tells clients to
back off, which the :class:`~repro.serve.client.ServeClient` retry protocol
understands.

Deadlines reuse the scheduler's semantics from the fault-tolerance layer: a
request that exceeds its wall-clock budget fails with
:class:`~repro.errors.TaskTimeoutError` (HTTP 504).  As with the pool
schedulers, an already-running computation cannot be preempted -- the worker
finishes and its result is discarded; only the *requester* is released.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Callable

from repro.errors import AdmissionError, ServeError, TaskTimeoutError

__all__ = ["QueryPool", "PoolStats"]


class PoolStats:
    """Cumulative request accounting of one pool (updated under its lock)."""

    __slots__ = ("admitted", "completed", "rejected", "timeouts")

    def __init__(self) -> None:
        self.admitted = 0
        self.completed = 0
        self.rejected = 0
        self.timeouts = 0

    def to_json(self) -> dict[str, int]:
        return {
            "admitted": self.admitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
        }

    def __repr__(self) -> str:
        return (
            f"PoolStats(admitted={self.admitted}, completed={self.completed}, "
            f"rejected={self.rejected}, timeouts={self.timeouts})"
        )


class QueryPool:
    """A fixed worker pool that rejects excess load instead of queueing it."""

    def __init__(
        self,
        workers: int = 4,
        queue_limit: int = 16,
        deadline: float | None = 30.0,
    ):
        if workers < 1:
            raise ServeError(f"query pool needs >= 1 worker, got {workers}")
        if queue_limit < 0:
            raise ServeError(f"queue limit cannot be negative, got {queue_limit}")
        self.workers = workers
        self.queue_limit = queue_limit
        #: Default per-request wall-clock budget; ``None`` disables deadlines.
        self.deadline = deadline
        self.stats = PoolStats()
        self._lock = threading.Lock()
        self._pending = 0
        self._pool: ThreadPoolExecutor | None = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve-query"
        )

    # -- observables -----------------------------------------------------------

    def pending(self) -> int:
        """Requests admitted but not yet finished (running + queued)."""
        with self._lock:
            return self._pending

    def queue_depth(self) -> int:
        """Admitted requests that are waiting for a free worker."""
        with self._lock:
            return max(0, self._pending - self.workers)

    # -- the admission + deadline protocol ------------------------------------

    def run(self, fn: Callable[[], Any], deadline: float | None = None) -> Any:
        """Admit, execute on a worker, and wait -- bounded by the deadline.

        Raises :class:`AdmissionError` when ``workers + queue_limit``
        requests are already in flight, and :class:`TaskTimeoutError` when
        *fn* does not finish within the deadline (the instance default
        unless overridden per call).
        """
        pool = self._pool
        if pool is None:
            raise ServeError("query pool is closed")
        with self._lock:
            if self._pending >= self.workers + self.queue_limit:
                self.stats.rejected += 1
                raise AdmissionError(
                    f"query queue is full ({self._pending} in flight, "
                    f"{self.workers} workers + {self.queue_limit} queue slots)"
                )
            self._pending += 1
            self.stats.admitted += 1
        try:
            future = pool.submit(self._execute, fn)
        except RuntimeError as exc:  # pool shut down between check and submit
            self._finish()
            raise ServeError(f"query pool is shutting down: {exc}") from exc
        budget = self.deadline if deadline is None else deadline
        try:
            return future.result(budget)
        except FutureTimeoutError:
            if future.cancel():
                # Never started: the worker will not run _execute, so the
                # pending slot must be released here.
                self._finish()
            with self._lock:
                self.stats.timeouts += 1
            raise TaskTimeoutError(
                f"request exceeded its {budget}s deadline"
            ) from None

    def _execute(self, fn: Callable[[], Any]) -> Any:
        try:
            return fn()
        finally:
            self._finish(completed=True)

    def _finish(self, completed: bool = False) -> None:
        with self._lock:
            self._pending -= 1
            if completed:
                self.stats.completed += 1

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Finish running work and release the workers (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "QueryPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"QueryPool({self.workers} workers, queue<={self.queue_limit}, "
            f"pending={self.pending()})"
        )
