"""The HTTP layer: stdlib ``http.server`` endpoints over a QueryService.

The API is **versioned**: the stable surface lives under ``/v1`` and every
``/v1`` endpoint -- success, 400, 404, 429, 504, 500 alike -- answers with
one uniform JSON envelope::

    {"ok": true,  "data": <payload>}
    {"ok": false, "error": {"code": <stable code>, "message": ...,
                            "retryable": bool}}

``error.code`` comes from the :class:`~repro.errors.ReproError` hierarchy's
stable ``code`` attributes (``admission_full``, ``deadline_exceeded``,
``bad_pattern``, ``not_found``, ...), so remote callers classify failures
without parsing messages, and the typed client rebuilds the matching
exception class from the code.

Endpoints (all JSON)::

    GET  /v1/healthz               liveness + basic capacity figures
    GET  /v1/runs                  the catalog (one object per stored run)
    GET  /v1/runs/<run_id>         manifest summary + recorded run metrics
    GET  /v1/stats[?run=ID]        the per-run registry `repro stats` renders
    POST /v1/query                 {"pattern", "run", "method", "analyze"}
    POST /v1/forward               {"pattern", "run", "method", "analyze"}
    GET  /v1/debug/slow            the slow-query ring (REPRO_SLOW_QUERY_MS)
    POST /v1/audit/sar             {"subjects", "template", "run", "runs",
                                    "method", "page", "page_size"}
    POST /v1/audit/erasure         {"subjects", "template", "run", "runs",
                                    "method"} -- digest-signed receipt

Outside the version namespace:

* ``GET /metrics`` -- Prometheus text exposition.  Scrape formats are
  governed by their own spec, not by this API's envelope, so the endpoint
  is deliberately unversioned (as is ``GET /stats?format=prometheus``).
* every pre-/v1 route (``/query``, ``/runs``, ...) still answers with its
  historical body shape but carries ``Deprecation: true`` plus a ``Link:
  </v1/...>; rel="successor-version"`` header pointing at its replacement.

Error statuses (legacy body ``{"error": ..., "kind": ...}``):

* 400 -- malformed request (bad JSON, unknown method, invalid pattern)
* 404 -- unknown run or route
* 429 -- admission queue full (:class:`~repro.errors.AdmissionError`)
* 504 -- per-request deadline exceeded (:class:`~repro.errors.TaskTimeoutError`)
* 500 -- anything else

Each connection runs on its own thread (``ThreadingHTTPServer``); heavy
work is bounded separately by the service's query pool, so accepting a
request never commits the server to running it.  Requests are traced
("request <endpoint>" spans in the ``serve`` category) and counted into the
service registry by endpoint *template* -- ``/v1/runs/<id>``, not the
concrete id -- to keep the metric cardinality bounded.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    AdmissionError,
    AuditError,
    LiveRunError,
    ProvenanceError,
    ServeError,
    StreamError,
    TaskTimeoutError,
    TreePatternError,
    error_code,
)
from repro.obs.log import get_logger
from repro.obs.tracer import get_tracer
from repro.serve.service import QueryService

__all__ = ["ProvenanceServer", "API_VERSION", "error_envelope"]

#: Upper bound on accepted request bodies (a tree pattern is tiny).
MAX_BODY_BYTES = 1 << 20

#: The current (only) version namespace of the HTTP surface.
API_VERSION = "v1"


def error_status(exc: BaseException) -> int:
    """Map a service exception to its HTTP status code."""
    if isinstance(exc, AdmissionError):
        return 429
    if isinstance(exc, TaskTimeoutError):
        return 504
    if isinstance(exc, LiveRunError):
        # A batch-only operation against a still-live run (or vice versa):
        # the resource exists, its *state* conflicts with the request.
        return 409
    if isinstance(exc, (ServeError, TreePatternError, AuditError, StreamError)):
        return 400
    if isinstance(exc, ProvenanceError):
        return 404
    return 500


def error_envelope(exc: BaseException) -> dict[str, Any]:
    """The uniform ``/v1`` error body for *exc* (also used by the router)."""
    return {
        "ok": False,
        "error": {
            "code": error_code(exc),
            "message": str(exc),
            "retryable": bool(getattr(exc, "retryable", False)),
        },
    }


class _ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service for its handlers."""

    daemon_threads = True
    #: Ephemeral port 0 resolves at bind time; ``server_port`` reflects it.
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: QueryService):
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    """Routes one connection; all responses carry Content-Length (keep-alive)."""

    protocol_version = "HTTP/1.1"
    server: _ServeHTTPServer

    # -- plumbing --------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        # The default handler writes to stderr per request; route nothing --
        # the service emits structured "serve-query" events instead.
        pass

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if status == 429:
            self.send_header("Retry-After", "1")
        if getattr(self, "_deprecated", False):
            # RFC 8594-style sunset signalling for the pre-/v1 surface.
            self.send_header("Deprecation", "true")
            self.send_header(
                "Link", f"</{API_VERSION}{self._legacy_path}>; rel=\"successor-version\""
            )
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(status, body, "application/json")

    def _send_text(self, status: int, text: str) -> None:
        self._send(status, text.encode("utf-8"), "text/plain; version=0.0.4")

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            raise ServeError(f"request body must be 1..{MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        return payload

    # -- routing ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def _route(self, verb: str) -> None:
        service = self.server.service
        split = urlsplit(self.path)
        segments = [part for part in split.path.split("/") if part]
        query = parse_qs(split.query)
        # Version resolution happens before anything can fail so that even
        # a catalog-refresh error answers in the caller's dialect.
        self._versioned = segments[:1] == [API_VERSION]
        if self._versioned:
            segments = segments[1:]
        self._legacy_path = split.path
        self._deprecated = not self._versioned and segments != ["metrics"]
        endpoint = "(unknown)"
        status = 500
        started = perf_counter()
        handle = None
        try:
            service.check_catalog()
            endpoint, handler = self._dispatch(verb, segments, query)
            if self._versioned:
                endpoint = f"/{API_VERSION}" + endpoint
            with get_tracer().span(f"request {endpoint}", "serve", verb=verb) as handle:
                status = handler()
        except Exception as exc:  # noqa: BLE001 -- every error becomes a response
            status = error_status(exc)
            if self._versioned:
                self._send_json(status, error_envelope(exc))
            else:
                self._send_json(
                    status, {"error": str(exc), "kind": type(exc).__name__}
                )
            if status == 500:
                get_logger("serve").event(
                    "serve-error", endpoint=endpoint, error=str(exc)
                )
        finally:
            service.observe_request(
                endpoint,
                status,
                perf_counter() - started,
                span_id=getattr(handle, "span_id", None),
            )

    def _dispatch(self, verb, segments, query):
        """Resolve ``(endpoint template, thunk)``; raises for unknown routes.

        Called with the version prefix already stripped: the legacy aliases
        and the ``/v1`` surface share one route table, differing only in
        response dialect (envelope vs. historical body) and headers.
        """
        service = self.server.service
        if verb == "GET" and segments == ["healthz"]:
            return "/healthz", lambda: self._ok(service.health())
        if verb == "GET" and segments == ["runs"]:
            return "/runs", lambda: self._ok({"runs": service.runs()})
        if verb == "GET" and len(segments) == 2 and segments[0] == "runs":
            return "/runs/<id>", lambda: self._ok(service.run_detail(segments[1]))
        if verb == "GET" and segments == ["stats"]:
            return "/stats", lambda: self._stats(query)
        if verb == "GET" and segments == ["metrics"] and not self._versioned:
            return "/metrics", lambda: self._metrics()
        if verb == "GET" and segments == ["debug", "slow"]:
            return "/debug/slow", lambda: self._ok(service.debug_slow())
        if verb == "POST" and segments == ["query"]:
            return "/query", lambda: self._query()
        if verb == "POST" and segments == ["forward"]:
            return "/forward", lambda: self._forward()
        if verb == "POST" and segments == ["audit", "sar"]:
            return "/audit/sar", lambda: self._sar()
        if verb == "POST" and segments == ["audit", "erasure"] and self._versioned:
            return "/audit/erasure", lambda: self._erasure()
        raise ProvenanceError(f"no such route: {verb} {self._legacy_path}")

    # -- endpoint bodies (each returns the response status) --------------------

    def _ok(self, payload: Any) -> int:
        if self._versioned:
            payload = {"ok": True, "data": payload}
        self._send_json(200, payload)
        return 200

    def _stats(self, query: dict[str, list[str]]) -> int:
        service = self.server.service
        run = (query.get("run") or [None])[0]
        registry = service.run_stats(run)
        wants_text = (query.get("format") or ["json"])[0] == "prometheus"
        if wants_text and not self._versioned:
            self._send_text(200, registry.render_prometheus())
            return 200
        return self._ok(registry.to_json())

    def _metrics(self) -> int:
        self._send_text(200, self.server.service.render_metrics())
        return 200

    def _query(self) -> int:
        body = self._read_body()
        pattern = body.get("pattern")
        if not isinstance(pattern, str):
            raise ServeError("query needs a 'pattern' string")
        payload = self.server.service.query(
            pattern,
            run_id=body.get("run"),
            method=body.get("method", "lazy"),
            analyze=bool(body.get("analyze", False)),
        )
        return self._ok(payload)

    def _forward(self) -> int:
        body = self._read_body()
        pattern = body.get("pattern")
        if not isinstance(pattern, str):
            raise ServeError("forward query needs a 'pattern' string")
        payload = self.server.service.forward(
            pattern,
            run_id=body.get("run"),
            method=body.get("method", "lazy"),
            analyze=bool(body.get("analyze", False)),
        )
        return self._ok(payload)

    def _sar(self) -> int:
        body = self._read_body()
        subjects = body.get("subjects")
        if not isinstance(subjects, list):
            raise ServeError("sar needs a 'subjects' list")
        kwargs: dict[str, Any] = {}
        if "template" in body:
            kwargs["template"] = body["template"]
        if "runs" in body:
            kwargs["runs"] = body["runs"]
        payload = self.server.service.sar(
            subjects,
            run_id=body.get("run"),
            method=body.get("method", "lazy"),
            page=int(body.get("page", 1)),
            page_size=int(body.get("page_size", 100)),
            **kwargs,
        )
        return self._ok(payload)

    def _erasure(self) -> int:
        body = self._read_body()
        subjects = body.get("subjects")
        if not isinstance(subjects, list):
            raise ServeError("erasure needs a 'subjects' list")
        kwargs: dict[str, Any] = {}
        if "template" in body:
            kwargs["template"] = body["template"]
        if "runs" in body:
            kwargs["runs"] = body["runs"]
        payload = self.server.service.erasure(
            subjects,
            run_id=body.get("run"),
            method=body.get("method", "lazy"),
            **kwargs,
        )
        return self._ok(payload)


class ProvenanceServer:
    """The long-running server: binds, serves, and shuts down cleanly.

    ::

        with ProvenanceServer(service, port=0) as server:   # ephemeral port
            client = ServeClient(server.url)
            ...

    ``start()`` serves from a daemon thread (tests, embedding);
    ``serve_forever()`` blocks (the CLI).  Closing shuts the socket down and
    closes the service's query pool.
    """

    def __init__(self, service: QueryService, host: str | None = None, port: int | None = None):
        self.service = service
        host = host if host is not None else service.config.host
        port = port if port is not None else service.config.port
        self._httpd = _ServeHTTPServer((host, port), service)
        self._thread: threading.Thread | None = None
        self._signalled: int | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ProvenanceServer":
        """Serve from a background daemon thread; returns immediately."""
        if self._thread is not None:
            raise ServeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-accept",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted or shut down."""
        self._httpd.serve_forever(poll_interval=0.1)

    def install_signal_handlers(self) -> None:
        """Make SIGINT/SIGTERM end :meth:`serve_forever` gracefully.

        The handler may not call ``shutdown()`` directly -- it would
        deadlock: ``shutdown`` blocks until the ``serve_forever`` loop (the
        very frame the signal interrupted) acknowledges.  A short-lived
        thread issues it instead, ``serve_forever`` returns, and the CLI's
        ``finally: server.close()`` runs the ordinary drain-and-flush path.
        Only callable from the main thread (CPython delivers signals there).
        """
        import signal

        def _handle(signum: int, _frame: Any) -> None:
            if self._signalled is not None:
                return  # second signal while draining: already on our way out
            self._signalled = signum
            get_logger("serve").event("serve-signal", signal=signal.Signals(signum).name)
            threading.Thread(
                target=self._httpd.shutdown, name="repro-serve-shutdown", daemon=True
            ).start()

        signal.signal(signal.SIGINT, _handle)
        signal.signal(signal.SIGTERM, _handle)

    @property
    def signalled(self) -> int | None:
        """The signal number that triggered shutdown, if any."""
        return self._signalled

    def close(self) -> None:
        # shutdown() is safe to repeat: after a signal already stopped the
        # serve loop, the stop-event remains set and this returns at once.
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()
        self.service.close()

    def __enter__(self) -> "ProvenanceServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ProvenanceServer({self.url}, {self.service!r})"
