"""The query service: warehouse + resident stores + caches + admission.

This is the transport-independent core of ``repro.serve``: every HTTP
endpoint is a thin shim over one :class:`QueryService` method, so the whole
serving behaviour (admission control, deadlines, caching, invalidation,
metrics) is testable without a socket.

Serving changes the warehouse's access pattern from "load per query" to
"load once, query forever":

* one **resident execution per (run, method)** -- loaded lazily on first
  use and shared by all request threads (the
  :class:`~repro.warehouse.reader.LazyProvenanceStore` is thread safe);
  the ``lazy`` method decodes operator segments on demand, the ``eager``
  method materialises the whole run up front so queries never touch disk --
  the two sides of the paper's eager-vs-lazy query evaluation (Sec. 6),
  now selectable per request;
* one **pattern-result cache** keyed by ``(run, pattern, method)``,
  invalidated when the catalog gains a run (stored runs are immutable, but
  name resolution is "newest wins");
* one **query pool** bounding concurrent backtraces with admission control
  (429) and per-request deadlines (504).

Request accounting flows into a :class:`~repro.obs.metrics.MetricsRegistry`
(the process-wide one by default) and every query runs under a tracer span,
so a ``--trace`` serve session exports one merged timeline of requests,
backtrace phases, and segment reads.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable

from repro.audit.forward import ForwardTracer
from repro.audit.sar import (
    DEFAULT_SUBJECT_TEMPLATE,
    erasure_over_tracers,
    sar_over_tracers,
)
from repro.core.backtrace.result import ProvenanceResult
from repro.engine.executor import ExecutionResult
from repro.errors import ServeError
from repro.obs.breakdown import QueryBreakdown, activate
from repro.obs.log import get_logger
from repro.obs.metrics import Counter, MetricsRegistry, get_registry, set_build_info
from repro.obs.slowlog import get_slow_log, observe_query, slow_threshold_seconds
from repro.obs.tracer import get_tracer
from repro.pebble.query import query_provenance
from repro.serve.cache import PatternResultCache
from repro.serve.pool import QueryPool
from repro.warehouse import Warehouse
from repro.warehouse.catalog import LEGACY_SHARD, RUN_EPOCH_PREFIX
from repro.warehouse.live import LiveProvenanceStore
from repro.warehouse.reader import DEFAULT_CACHE_SIZE, LazyProvenanceStore
from repro.warehouse.service import METRICS_NAME

__all__ = ["ServeConfig", "QueryService", "QUERY_METHODS", "result_to_json"]

#: The two run-loading strategies a query may request.
QUERY_METHODS = ("lazy", "eager")


@dataclass(frozen=True)
class ServeConfig:
    """All serving knobs in one picklable, printable bundle."""

    root: str
    host: str = "127.0.0.1"
    port: int = 9410
    #: Query workers (concurrent backtraces).
    workers: int = 4
    #: Admitted-but-waiting requests beyond the workers; 0 rejects eagerly.
    queue_limit: int = 16
    #: Per-request wall-clock budget in seconds; ``None``/0 disables it.
    deadline: float | None = 30.0
    #: Pattern-result cache capacity (entries).
    cache_size: int = 128
    #: Per-store LRU capacity for lazily decoded operator segments.
    segment_cache_size: int = DEFAULT_CACHE_SIZE
    #: Partition count used when restoring runs (None: engine default).
    num_partitions: int | None = None
    #: Retention TTL in seconds for epoch-layout (streaming) runs;
    #: ``None``/0 disables the background sweep.
    retention_ttl: float | None = None
    #: Seconds between background retention sweeps.
    retention_sweep_interval: float = 60.0

    def effective_deadline(self) -> float | None:
        return self.deadline if self.deadline else None


def _suffix(labels: tuple[tuple[str, str], ...]) -> str:
    """A flat ``{k=v,...}`` rendering for shutdown-event counter names."""
    if not labels:
        return ""
    return "{" + ",".join(f"{key}={value}" for key, value in labels) + "}"


def result_to_json(result: ProvenanceResult) -> dict[str, Any]:
    """A deterministic JSON view of a provenance query answer.

    Everything is sorted (entry ids, paths, operator ids), so two answers to
    the same question serialise byte-identically -- the property the
    concurrent-vs-serial equivalence tests pin.
    """
    return {
        "matched_output_ids": list(result.matched_output_ids),
        "sources": [
            {
                "oid": source.oid,
                "name": source.name,
                "ids": source.ids(),
                "entries": [
                    {
                        "id": entry.item_id,
                        "contributing": entry.contributing_paths(),
                        "influencing": entry.influencing_paths(),
                        "accessed_by": entry.accessed_by(),
                        "manipulated_by": entry.manipulated_by(),
                        "tree": entry.tree.render(),
                    }
                    for entry in source
                ],
            }
            for source in result.sources
        ],
        "render": result.render(),
    }


class _ResidentRun:
    """One loaded (run, method) pair shared across request threads."""

    __slots__ = ("execution", "method", "loaded_at", "index")

    def __init__(self, execution: ExecutionResult, method: str, index: Any = None):
        self.execution = execution
        self.method = method
        self.loaded_at = time.time()
        #: The run's persisted :class:`~repro.warehouse.index.RunIndex`, or
        #: ``None`` when the run was recorded unindexed (forward traces then
        #: fall back to a full scan; answers are identical either way).
        self.index = index

    def forward_tracer(self) -> ForwardTracer:
        """A fresh tracer per request: per-trace stats stay un-shared."""
        return ForwardTracer(self.execution, self.index)

    @property
    def store(self) -> "LazyProvenanceStore | LiveProvenanceStore":
        store = self.execution.store
        assert isinstance(store, (LazyProvenanceStore, LiveProvenanceStore))
        return store


class QueryService:
    """Long-lived provenance query engine over one warehouse root."""

    def __init__(
        self,
        warehouse: Warehouse,
        config: ServeConfig,
        registry: MetricsRegistry | None = None,
    ):
        self.warehouse = warehouse
        self.config = config
        self.registry = registry if registry is not None else get_registry()
        self.pool = QueryPool(
            workers=config.workers,
            queue_limit=config.queue_limit,
            deadline=config.effective_deadline(),
        )
        self.cache = PatternResultCache(config.cache_size)
        self._residents: dict[tuple[str, str], _ResidentRun] = {}
        self._load_lock = threading.Lock()
        self._catalog_sig = self._catalog_signature()
        self._epochs = warehouse.epoch_vector()
        self._run_shards = {
            record.run_id: (record.shard or LEGACY_SHARD)
            for record in warehouse.runs()
        }
        self._started = time.time()
        self._closed = False
        #: Test instrumentation: called on the worker thread before each
        #: query executes (lets tests hold workers busy deterministically).
        self.query_hook: Callable[[], None] | None = None
        self._sweep_stop = threading.Event()
        self._sweeper: threading.Thread | None = None
        if config.retention_ttl:
            self._sweeper = threading.Thread(
                target=self._retention_loop, name="repro-retention", daemon=True
            )
            self._sweeper.start()
        set_build_info(self.registry, component="serve")

    @classmethod
    def open(cls, config: ServeConfig, registry: MetricsRegistry | None = None) -> "QueryService":
        return cls(Warehouse.open(config.root), config, registry=registry)

    # -- catalog freshness -----------------------------------------------------

    def _catalog_signature(self) -> tuple[int, int] | None:
        try:
            stat = os.stat(self.warehouse.root / "catalog.json")
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def check_catalog(self) -> bool:
        """Pick up external catalog changes; ``True`` if anything invalidated.

        Called on every request; the fast path is still one ``stat`` of
        ``catalog.json``.  When the file changed, the **epoch vector**
        decides the blast radius at two grains.  Shard entries cover
        membership changes: only cache entries over runs in an epoch-bumped
        shard drop.  ``run:<id>`` entries cover streaming runs: a
        micro-batch append (or retention sweep, or seal) bumps only that
        run's segment epoch, so exactly its cached answers drop -- and its
        resident execution, whose epoch snapshot no longer matches the
        segments on disk.  Batch residents are immutable and stay, *except*
        for runs whose shard assignment moved (a rebalance relocated their
        directories).
        """
        signature = self._catalog_signature()
        if signature == self._catalog_sig:
            return False
        with self._load_lock:
            signature = self._catalog_signature()
            if signature == self._catalog_sig:
                return False
            self._catalog_sig = signature
            run_set_before = set(self._run_shards)
            self.warehouse.refresh()
            before, after = self._epochs, self.warehouse.epoch_vector()
            shards_now = {
                record.run_id: (record.shard or LEGACY_SHARD)
                for record in self.warehouse.runs()
            }
            # Compare against the *service's* snapshot, not the warehouse's
            # own refresh verdict: a sweep this very process ran has already
            # mutated the warehouse in memory, yet the cache is still stale.
            if after == before and set(shards_now) == run_set_before:
                return False
            self._epochs = after
            bumped = {
                key
                for key in set(before) | set(after)
                if before.get(key, 0) != after.get(key, 0)
            }
            bumped_runs = {
                key[len(RUN_EPOCH_PREFIX):]
                for key in bumped
                if key.startswith(RUN_EPOCH_PREFIX)
            }
            bumped_shards = bumped - {
                key for key in bumped if key.startswith(RUN_EPOCH_PREFIX)
            }
            stale = {
                run_id
                for run_id, shard in shards_now.items()
                if shard in bumped_shards
            } | bumped_runs
            moved = {
                run_id
                for run_id, shard in shards_now.items()
                if self._run_shards.get(run_id, shard) != shard
            }
            self._run_shards = shards_now
            for key in [
                key for key in self._residents if key[0] in moved | bumped_runs
            ]:
                del self._residents[key]
        if bumped:
            self.cache.invalidate_runs(stale)
            if bumped_runs:
                self.registry.counter(
                    "repro_serve_segment_invalidations_total"
                ).inc(len(bumped_runs))
        else:
            # The run set changed without an epoch trail (a foreign writer):
            # fall back to the conservative whole-cache flush.
            self.cache.invalidate()
        self.registry.counter("repro_serve_catalog_refreshes_total").inc()
        return True

    # -- retention -------------------------------------------------------------

    def sweep_retention(self, ttl_seconds: float | None = None) -> dict[str, Any]:
        """One TTL sweep over every epoch-layout run; returns the report.

        Each swept run yields a verified retention receipt and a segment
        epoch bump, so the next request's :meth:`check_catalog` drops
        exactly that run's cached answers and resident store.
        """
        ttl = ttl_seconds if ttl_seconds is not None else self.config.retention_ttl
        if not ttl:
            raise ServeError("retention sweep needs a positive TTL")
        report = self.warehouse.retain(ttl)
        self.registry.counter("repro_serve_retention_sweeps_total").inc()
        expired = sum(
            len(receipt["expired_epochs"]) for receipt in report["receipts"]
        )
        if expired:
            self.registry.counter("repro_serve_segments_expired_total").inc(expired)
            get_logger("serve").event(
                "serve-retention", swept=report["swept"], segments_expired=expired
            )
            # Propagate the staleness immediately rather than waiting for
            # the next request to stat the catalog.
            self.check_catalog()
        return report

    def _retention_loop(self) -> None:
        interval = max(self.config.retention_sweep_interval, 0.01)
        while not self._sweep_stop.wait(interval):
            try:
                self.sweep_retention()
            except Exception as exc:  # noqa: BLE001 -- the sweeper must survive
                get_logger("serve").event("serve-retention-error", error=str(exc))

    # -- read-only endpoints ---------------------------------------------------

    def health(self) -> dict[str, Any]:
        from repro import __version__

        return {
            "status": "ok",
            "version": __version__,
            "runs": len(self.warehouse),
            "resident_runs": len(self._residents),
            "uptime_seconds": time.time() - self._started,
            "workers": self.config.workers,
            "queue_limit": self.config.queue_limit,
        }

    def runs(self) -> list[dict[str, Any]]:
        return [record.to_obj() for record in self.warehouse.runs()]

    def run_detail(self, run_id: str) -> dict[str, Any]:
        """Manifest summary plus the execution metrics recorded with the run."""
        summary = self.warehouse.inspect(run_id)
        metrics_path = self.warehouse.run_dir(summary["run_id"]) / METRICS_NAME
        if metrics_path.exists():
            with open(metrics_path, "r", encoding="utf-8") as handle:
                summary["metrics"] = json.load(handle)
        return summary

    def run_stats(self, run_id: str | None = None) -> MetricsRegistry:
        """The per-run registry ``repro stats`` renders, served remotely.

        Serve-side counters (queries, forward traces, SARs, requests) are
        folded in after the warehouse figures, so ``repro stats --remote``
        shows what this server has answered, not just what is stored.
        """
        registry = self.warehouse.stats(run_id, registry=MetricsRegistry())
        for metric in self.registry.metrics():
            if isinstance(metric, Counter) and metric.name.startswith("repro_serve_"):
                copy = registry.counter(metric.name, **dict(metric.labels))
                if metric.value:
                    copy.inc(metric.value)
        return registry

    # -- the query path --------------------------------------------------------

    def query(
        self,
        pattern: str,
        run_id: str | None = None,
        method: str = "lazy",
        analyze: bool = False,
    ) -> dict[str, Any]:
        """Answer one provenance query; cached, admission-controlled, traced.

        Returns the stored payload (run/pattern/method/result/query_seconds)
        plus a per-request ``server`` block carrying the cache verdict and
        this request's wall time.  With *analyze* the request bypasses the
        pattern-result cache (a cached answer has no fresh timings to
        explain) and the payload gains an ``"analyze"`` breakdown block; the
        ``"result"`` block is byte-identical either way.
        """
        if method not in QUERY_METHODS:
            raise ServeError(
                f"unknown query method {method!r}; expected one of {QUERY_METHODS}"
            )
        if not isinstance(pattern, str) or not pattern.strip():
            raise ServeError("query needs a non-empty 'pattern' string")
        record = self.warehouse.resolve(run_id)
        # Keys are ("<kind>", <run scope>, ...): position 1 is what
        # invalidate_runs inspects when a shard epoch moves.
        key = ("query", record.run_id, pattern, method)
        started = time.perf_counter()
        deadline = self.config.effective_deadline()
        if analyze:
            payload = self.pool.run(
                lambda: self._execute_query(record.run_id, pattern, method, analyze=True),
                deadline,
            )
            was_hit = False
        else:
            payload, was_hit = self.cache.get_or_compute(
                key,
                lambda: self.pool.run(
                    lambda: self._execute_query(record.run_id, pattern, method),
                    deadline,
                ),
                wait_timeout=deadline,
            )
        elapsed = time.perf_counter() - started
        self.registry.counter("repro_serve_queries_total", method=method).inc()
        return dict(payload, server={"cached": was_hit, "seconds": elapsed})

    def _execute_query(
        self, run_id: str, pattern: str, method: str, analyze: bool = False
    ) -> dict[str, Any]:
        """The pooled worker body: resolve the resident run and backtrace."""
        threshold = slow_threshold_seconds()
        breakdown = QueryBreakdown() if (analyze or threshold is not None) else None
        if breakdown is not None:
            breakdown.start()
        if self.query_hook is not None:
            self.query_hook()
        with activate(breakdown) if breakdown is not None else nullcontext():
            with get_tracer().span(
                "serve-query", "serve", run_id=run_id, pattern=pattern, method=method
            ) as span:
                resident = self._resident(run_id, method)
                started = time.perf_counter()
                result = query_provenance(resident.execution, pattern)
                seconds = time.perf_counter() - started
                span.set(matched=len(result.matched_output_ids))
        get_logger(run_id).event(
            "serve-query",
            pattern=pattern,
            method=method,
            matched=len(result.matched_output_ids),
            seconds=seconds,
        )
        payload = {
            "run_id": run_id,
            "pattern": pattern,
            "method": method,
            "result": result_to_json(result),
            "query_seconds": seconds,
        }
        if breakdown is not None:
            breakdown.finish()
            observe_query(
                "query",
                run_id,
                pattern,
                breakdown.total_seconds,
                method=method,
                breakdown=breakdown.to_json(),
                threshold=threshold,
            )
            if analyze:
                payload["analyze"] = breakdown.to_json()
        return payload

    # -- the audit path --------------------------------------------------------

    def forward(
        self,
        pattern: str,
        run_id: str | None = None,
        method: str = "lazy",
        analyze: bool = False,
    ) -> dict[str, Any]:
        """Answer one forward provenance query (inputs -> derived outputs).

        Same machinery as :meth:`query` -- admission control, deadline,
        pattern-result cache -- with a direction-prefixed cache key so a
        forward and a backward query over the same pattern never collide.
        *analyze* bypasses the cache and attaches the breakdown, exactly as
        on the query path.
        """
        if method not in QUERY_METHODS:
            raise ServeError(
                f"unknown query method {method!r}; expected one of {QUERY_METHODS}"
            )
        if not isinstance(pattern, str) or not pattern.strip():
            raise ServeError("forward query needs a non-empty 'pattern' string")
        record = self.warehouse.resolve(run_id)
        key = ("forward", record.run_id, pattern, method)
        started = time.perf_counter()
        deadline = self.config.effective_deadline()
        if analyze:
            payload = self.pool.run(
                lambda: self._execute_forward(
                    record.run_id, pattern, method, analyze=True
                ),
                deadline,
            )
            was_hit = False
        else:
            payload, was_hit = self.cache.get_or_compute(
                key,
                lambda: self.pool.run(
                    lambda: self._execute_forward(record.run_id, pattern, method),
                    deadline,
                ),
                wait_timeout=deadline,
            )
        elapsed = time.perf_counter() - started
        self.registry.counter(
            "repro_serve_forward_queries_total", method=method
        ).inc()
        return dict(payload, server={"cached": was_hit, "seconds": elapsed})

    def _execute_forward(
        self, run_id: str, pattern: str, method: str, analyze: bool = False
    ) -> dict[str, Any]:
        threshold = slow_threshold_seconds()
        breakdown = QueryBreakdown() if (analyze or threshold is not None) else None
        if breakdown is not None:
            breakdown.start()
        if self.query_hook is not None:
            self.query_hook()
        with activate(breakdown) if breakdown is not None else nullcontext():
            with get_tracer().span(
                "serve-forward", "serve", run_id=run_id, pattern=pattern, method=method
            ) as span:
                resident = self._resident(run_id, method)
                started = time.perf_counter()
                result = resident.forward_tracer().trace(pattern)
                seconds = time.perf_counter() - started
                span.set(outputs=len(result.output_ids), **result.stats)
        get_logger(run_id).event(
            "serve-forward",
            pattern=pattern,
            method=method,
            matched_inputs=result.matched_input_count,
            outputs=len(result.output_ids),
            seconds=seconds,
            **result.stats,
        )
        payload = {
            "run_id": run_id,
            "pattern": pattern,
            "method": method,
            "result": result.to_json(),
            "query_seconds": seconds,
        }
        if breakdown is not None:
            breakdown.finish()
            observe_query(
                "forward",
                run_id,
                pattern,
                breakdown.total_seconds,
                method=method,
                breakdown=breakdown.to_json(),
                threshold=threshold,
            )
            if analyze:
                payload["analyze"] = breakdown.to_json()
        return payload

    def _scope_runs(
        self, run_id: str | None, runs: list[str] | None
    ) -> tuple[str, ...]:
        """Resolve a request's run scope to an ordered id tuple.

        *runs* (an explicit list of ids/names, catalog order preserved)
        wins over *run_id*; with neither, the scope is every catalogued
        run.  The router uses *runs* to hand each worker exactly its owned
        subset while keeping the global request shape identical.
        """
        if runs is not None:
            if not isinstance(runs, list) or not all(
                isinstance(run, str) and run for run in runs
            ):
                raise ServeError("'runs' must be a list of run ids or names")
            return tuple(self.warehouse.resolve(run).run_id for run in runs)
        if run_id is None:
            return tuple(record.run_id for record in self.warehouse.runs())
        return (self.warehouse.resolve(run_id).run_id,)

    def sar(
        self,
        subjects: list[str],
        template: str = DEFAULT_SUBJECT_TEMPLATE,
        run_id: str | None = None,
        runs: list[str] | None = None,
        method: str = "lazy",
        page: int = 1,
        page_size: int = 100,
    ) -> dict[str, Any]:
        """One bulk subject-access request over the resident warehouse.

        ``run_id=None`` spans every catalogued run; ``runs`` restricts to an
        explicit subset (the router's scatter shape).  The whole report is
        one pooled task (one admission slot, one deadline) and one cache
        entry keyed by the full request shape, so repeating a page is free
        until the catalog changes.
        """
        if method not in QUERY_METHODS:
            raise ServeError(
                f"unknown query method {method!r}; expected one of {QUERY_METHODS}"
            )
        if not isinstance(subjects, list) or not subjects or not all(
            isinstance(subject, str) and subject for subject in subjects
        ):
            raise ServeError("sar needs a non-empty 'subjects' list of strings")
        run_ids = self._scope_runs(run_id, runs)
        key = (
            "sar",
            run_ids,
            tuple(sorted(set(subjects))),
            template,
            method,
            page,
            page_size,
        )
        started = time.perf_counter()
        deadline = self.config.effective_deadline()
        payload, was_hit = self.cache.get_or_compute(
            key,
            lambda: self.pool.run(
                lambda: self._execute_sar(
                    run_ids, subjects, template, method, page, page_size
                ),
                deadline,
            ),
            wait_timeout=deadline,
        )
        elapsed = time.perf_counter() - started
        self.registry.counter("repro_serve_sar_requests_total").inc()
        return dict(payload, server={"cached": was_hit, "seconds": elapsed})

    def _execute_sar(
        self,
        run_ids: tuple[str, ...],
        subjects: list[str],
        template: str,
        method: str,
        page: int,
        page_size: int,
    ) -> dict[str, Any]:
        if self.query_hook is not None:
            self.query_hook()
        with get_tracer().span(
            "serve-sar", "serve", runs=len(run_ids), subjects=len(subjects)
        ) as span:
            tracers = [
                (run_id, self._resident(run_id, method).forward_tracer())
                for run_id in run_ids
            ]
            started = time.perf_counter()
            report = sar_over_tracers(
                tracers, subjects, template=template, page=page, page_size=page_size
            )
            seconds = time.perf_counter() - started
            span.set(page=page, total_subjects=report["total_subjects"])
        get_logger("serve").event(
            "serve-sar",
            runs=len(run_ids),
            subjects=report["total_subjects"],
            page=page,
            method=method,
            seconds=seconds,
        )
        return {"method": method, "report": report, "query_seconds": seconds}

    def erasure(
        self,
        subjects: list[str],
        template: str = DEFAULT_SUBJECT_TEMPLATE,
        run_id: str | None = None,
        runs: list[str] | None = None,
        method: str = "lazy",
    ) -> dict[str, Any]:
        """One erasure verification served from resident executions.

        The report (and its sha256 ``digest``) is byte-identical to a direct
        :func:`repro.verify_erasure` call over the same warehouse state --
        the receipt does not depend on which tier produced it.
        """
        if method not in QUERY_METHODS:
            raise ServeError(
                f"unknown query method {method!r}; expected one of {QUERY_METHODS}"
            )
        if not isinstance(subjects, list) or not subjects or not all(
            isinstance(subject, str) and subject for subject in subjects
        ):
            raise ServeError("erasure needs a non-empty 'subjects' list of strings")
        run_ids = self._scope_runs(run_id, runs)
        key = ("erasure", run_ids, tuple(sorted(set(subjects))), template, method)
        started = time.perf_counter()
        deadline = self.config.effective_deadline()
        payload, was_hit = self.cache.get_or_compute(
            key,
            lambda: self.pool.run(
                lambda: self._execute_erasure(run_ids, subjects, template, method),
                deadline,
            ),
            wait_timeout=deadline,
        )
        elapsed = time.perf_counter() - started
        self.registry.counter("repro_serve_erasure_requests_total").inc()
        return dict(payload, server={"cached": was_hit, "seconds": elapsed})

    def _execute_erasure(
        self,
        run_ids: tuple[str, ...],
        subjects: list[str],
        template: str,
        method: str,
    ) -> dict[str, Any]:
        if self.query_hook is not None:
            self.query_hook()
        with get_tracer().span(
            "serve-erasure", "serve", runs=len(run_ids), subjects=len(subjects)
        ) as span:
            tracers = [
                (run_id, self._resident(run_id, method).forward_tracer())
                for run_id in run_ids
            ]
            started = time.perf_counter()
            report = erasure_over_tracers(tracers, subjects, template=template)
            seconds = time.perf_counter() - started
            span.set(clean=report["clean"], subjects=report["subject_count"])
        get_logger("serve").event(
            "serve-erasure",
            runs=len(run_ids),
            subjects=report["subject_count"],
            clean=report["clean"],
            method=method,
            seconds=seconds,
        )
        return {"method": method, "report": report, "query_seconds": seconds}

    def _resident(self, run_id: str, method: str) -> _ResidentRun:
        """The shared execution for ``(run_id, method)``, loading on first use."""
        key = (run_id, method)
        resident = self._residents.get(key)
        if resident is not None:
            return resident
        with self._load_lock:
            resident = self._residents.get(key)
            if resident is not None:
                return resident
            record = self.warehouse.resolve(run_id)
            cache_size = self.config.segment_cache_size
            if method == "eager":
                # Nothing may evict: the whole run stays resident.
                cache_size = max(cache_size, record.operator_count)
            with get_tracer().span(
                "serve-load", "serve", run_id=run_id, method=method
            ):
                execution = self.warehouse.load(
                    run_id,
                    num_partitions=self.config.num_partitions,
                    cache_size=cache_size,
                )
                index = self.warehouse.load_index(run_id)
                resident = _ResidentRun(execution, method, index)
                if method == "eager":
                    self._materialise(resident.store)
            self._residents[key] = resident
            return resident

    @staticmethod
    def _materialise(store: LazyProvenanceStore) -> None:
        """Decode every operator segment and source-item block up front."""
        for oid in sorted(store.size_report().per_operator):
            store.get(oid)
            if store.is_source(oid):
                store.source_items(oid)

    def debug_slow(self) -> dict[str, Any]:
        """The slow-query ring: what ``GET /debug/slow`` returns.

        Entries are newest first; ``total`` counts every over-budget query
        this process observed, evicted entries included.
        """
        threshold = slow_threshold_seconds()
        ring = get_slow_log()
        return {
            "threshold_ms": threshold * 1000.0 if threshold is not None else None,
            "total": ring.total,
            "entries": ring.snapshot(),
        }

    # -- metrics ---------------------------------------------------------------

    def observe_request(
        self,
        endpoint: str,
        status: int,
        seconds: float,
        span_id: int | str | None = None,
    ) -> None:
        """Fold one finished HTTP request into the registry.

        *span_id* (the request span's id, when tracing is on) becomes the
        histogram's exemplar: the trace that explains the latency tail.
        """
        self.registry.counter(
            "repro_serve_requests_total", endpoint=endpoint, status=str(status)
        ).inc()
        self.registry.histogram(
            "repro_serve_request_seconds", endpoint=endpoint
        ).observe(seconds, span_id=span_id)

    def publish_gauges(self) -> None:
        """Refresh the point-in-time gauges before a ``/metrics`` scrape."""
        registry = self.registry
        registry.gauge("repro_serve_uptime_seconds").set(time.time() - self._started)
        registry.gauge("repro_serve_inflight").set(self.pool.pending())
        registry.gauge("repro_serve_queue_depth").set(self.pool.queue_depth())
        pool = self.pool.stats
        registry.gauge("repro_serve_pool_admitted").set(pool.admitted)
        registry.gauge("repro_serve_pool_completed").set(pool.completed)
        registry.gauge("repro_serve_pool_rejected").set(pool.rejected)
        registry.gauge("repro_serve_pool_timeouts").set(pool.timeouts)
        for name, value in self.cache.snapshot().items():
            registry.gauge(f"repro_serve_pattern_cache_{name}").set(value)
        for (run_id, method), resident in list(self._residents.items()):
            cache = resident.store.metrics
            for field in ("hits", "misses", "item_hits", "item_misses", "bytes_read", "evictions"):
                registry.gauge(
                    f"repro_serve_segment_cache_{field}", run_id=run_id, method=method
                ).set(getattr(cache, field))

    def render_metrics(self) -> str:
        """The Prometheus text page ``GET /metrics`` serves."""
        self.publish_gauges()
        return self.registry.render_prometheus()

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Drain the pool and flush final counters; safe to call twice.

        Part of graceful shutdown: in-flight queries finish (the pool closes
        with ``wait=True``), then a last ``serve-shutdown`` event carrying
        the final ``/metrics`` counter values lands in the structured run
        log -- the numbers a scraper would have seen on its next pass.
        """
        with self._load_lock:
            if self._closed:
                return
            self._closed = True
        self._sweep_stop.set()
        if self._sweeper is not None:
            self._sweeper.join(timeout=5)
            self._sweeper = None
        self.pool.close()
        self.publish_gauges()
        counters = {
            metric.name + _suffix(metric.labels): metric.value
            for metric in self.registry.metrics()
            if isinstance(metric, Counter) and metric.name.startswith("repro_serve_")
        }
        get_logger("serve").event(
            "serve-shutdown",
            uptime_seconds=time.time() - self._started,
            resident_runs=len(self._residents),
            counters=counters,
        )

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"QueryService({self.warehouse!r}, {len(self._residents)} resident, "
            f"{len(self.cache)} cached answers)"
        )
