"""ServeClient: the urllib-based client of the provenance query service.

A thin, dependency-free wrapper around ``urllib.request`` that speaks the
versioned ``/v1`` JSON surface: every response is the uniform envelope
(``{"ok": ..., "data"|"error": ...}``), success payloads are unwrapped
before they reach the caller, and error envelopes are rebuilt into the
:class:`~repro.errors.ReproError` subclass their stable ``code`` names --
an ``admission_full`` answer raises :class:`AdmissionError` here exactly as
it would in-process.

Failures whose ``retryable`` attribute is true -- a full admission queue
(429), a deadline overrun (504), or an unreachable server -- are retried
with the same jitter-free exponential backoff the schedulers use
(:class:`~repro.engine.scheduler.RetryPolicy`), so client behaviour under
overload is deterministic and unit-testable.  Everything else (bad pattern,
unknown run) fails immediately.

Prefer :func:`repro.connect` over constructing this class directly: it
returns the unified :class:`~repro.client.ProvenanceClient` facade that
works identically over a warehouse directory and a served URL.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any
from urllib.parse import quote

from repro.engine.scheduler import RetryPolicy
from repro.errors import (
    ERROR_CODES,
    AdmissionError,
    ServeError,
    TaskTimeoutError,
)

__all__ = ["ServeClient", "DEFAULT_CLIENT_POLICY"]

#: Client default: three retries, 50 ms base backoff -- enough to ride out a
#: momentary queue spike without hammering an overloaded server.
DEFAULT_CLIENT_POLICY = RetryPolicy(max_retries=3, backoff=0.05)

#: Path prefix of the versioned surface this client speaks.
API_PREFIX = "/v1"


def _error_for(
    status: int, message: str, code: str | None = None, retryable: bool | None = None
) -> ServeError:
    """Rebuild the typed error for an error response.

    The ``/v1`` envelope's stable ``code`` picks the exception class (so the
    client raises exactly what the server caught); the HTTP status is the
    fallback for legacy or proxy-generated bodies.
    """
    if code is not None and code in ERROR_CODES:
        error = ERROR_CODES[code](message)
    elif status == 429:
        error = AdmissionError(message)
    elif status == 504:
        error = TaskTimeoutError(message)
    else:
        error = ServeError(f"HTTP {status}: {message}")
    if retryable is not None:
        error.retryable = retryable
    elif status == 503:  # server shutting down / transiently unavailable
        error.retryable = True
    return error  # type: ignore[return-value]


class ServeClient:
    """Typed access to one running provenance query server."""

    def __init__(
        self,
        base_url: str,
        policy: RetryPolicy | None = None,
        timeout: float = 30.0,
    ):
        self.base_url = base_url.rstrip("/")
        self.policy = policy if policy is not None else DEFAULT_CLIENT_POLICY
        #: Socket-level timeout per attempt (connect + read), in seconds.
        self.timeout = timeout

    # -- endpoints -------------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return self._get_json(f"{API_PREFIX}/healthz")

    def runs(self) -> list[dict[str, Any]]:
        return self._get_json(f"{API_PREFIX}/runs")["runs"]

    def run(self, run_id: str) -> dict[str, Any]:
        return self._get_json(f"{API_PREFIX}/runs/{run_id}")

    def run_stats(self, run_id: str | None = None, prometheus: bool = False) -> Any:
        """The server-side ``repro stats`` registry, as JSON or Prometheus text.

        The text form comes from the unversioned scrape surface (Prometheus
        exposition has its own format contract); the JSON form is ``/v1``.
        """
        if prometheus:
            path = "/stats?format=prometheus"
            if run_id:
                path += f"&run={quote(run_id)}"
            body, _ = self._request("GET", path)
            return body.decode("utf-8")
        path = f"{API_PREFIX}/stats"
        if run_id:
            path += f"?run={quote(run_id)}"
        return self._get_json(path)

    def query(
        self,
        pattern: str,
        run_id: str | None = None,
        method: str = "lazy",
        analyze: bool = False,
    ) -> dict[str, Any]:
        """Backtrace *pattern* over a stored run (the newest when unnamed).

        With *analyze* the response carries an ``"analyze"`` block of
        per-phase timings (and is computed fresh, never from the cache).
        """
        payload: dict[str, Any] = {"pattern": pattern, "method": method}
        if run_id:
            payload["run"] = run_id
        if analyze:
            payload["analyze"] = True
        return self._post_json(f"{API_PREFIX}/query", payload)

    def forward(
        self,
        pattern: str,
        run_id: str | None = None,
        method: str = "lazy",
        analyze: bool = False,
    ) -> dict[str, Any]:
        """Forward-trace *pattern*: matched source items -> derived outputs."""
        payload: dict[str, Any] = {"pattern": pattern, "method": method}
        if run_id:
            payload["run"] = run_id
        if analyze:
            payload["analyze"] = True
        return self._post_json(f"{API_PREFIX}/forward", payload)

    def debug_slow(self) -> dict[str, Any]:
        """The server's slow-query ring (``GET /v1/debug/slow``)."""
        return self._get_json(f"{API_PREFIX}/debug/slow")

    def sar(
        self,
        subjects: list[str],
        template: str | None = None,
        run_id: str | None = None,
        runs: list[str] | None = None,
        method: str = "lazy",
        page: int = 1,
        page_size: int = 100,
    ) -> dict[str, Any]:
        """One bulk subject-access request (page *page* of the report)."""
        payload: dict[str, Any] = {
            "subjects": subjects,
            "method": method,
            "page": page,
            "page_size": page_size,
        }
        if template is not None:
            payload["template"] = template
        if run_id:
            payload["run"] = run_id
        if runs is not None:
            payload["runs"] = runs
        return self._post_json(f"{API_PREFIX}/audit/sar", payload)

    def erasure(
        self,
        subjects: list[str],
        template: str | None = None,
        run_id: str | None = None,
        runs: list[str] | None = None,
        method: str = "lazy",
    ) -> dict[str, Any]:
        """One erasure verification; the report carries its sha256 digest."""
        payload: dict[str, Any] = {"subjects": subjects, "method": method}
        if template is not None:
            payload["template"] = template
        if run_id:
            payload["run"] = run_id
        if runs is not None:
            payload["runs"] = runs
        return self._post_json(f"{API_PREFIX}/audit/erasure", payload)

    def metrics_text(self) -> str:
        body, _ = self._request("GET", "/metrics")
        return body.decode("utf-8")

    # -- the retry protocol ----------------------------------------------------

    def _get_json(self, path: str) -> Any:
        body, _ = self._request("GET", path)
        return self._unwrap(body)

    def _post_json(self, path: str, payload: dict[str, Any]) -> Any:
        body, _ = self._request("POST", path, payload)
        return self._unwrap(body)

    @staticmethod
    def _unwrap(body: bytes) -> Any:
        """Strip the ``/v1`` envelope; legacy bodies pass through untouched."""
        parsed = json.loads(body)
        if isinstance(parsed, dict) and parsed.get("ok") is True and "data" in parsed:
            return parsed["data"]
        return parsed

    def _request(
        self, verb: str, path: str, payload: dict[str, Any] | None = None
    ) -> tuple[bytes, str]:
        """One logical request: up to ``policy.max_attempts`` HTTP attempts."""
        url = self.base_url + path
        data = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        policy = self.policy
        error: ServeError | None = None
        for attempt in range(1, policy.max_attempts + 1):
            request = urllib.request.Request(
                url,
                data=data,
                headers={"Content-Type": "application/json"},
                method=verb,
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return response.read(), response.headers.get_content_type()
            except urllib.error.HTTPError as exc:
                message, code, retryable = self._error_detail(exc)
                error = _error_for(exc.code, message, code=code, retryable=retryable)
            except urllib.error.URLError as exc:
                error = ServeError(f"cannot reach {url}: {exc.reason}")
                error.retryable = True
            except TimeoutError as exc:
                error = TaskTimeoutError(f"no response from {url} in {self.timeout}s")
                error.__cause__ = exc
            if not error.retryable or attempt >= policy.max_attempts:
                raise error
            time.sleep(policy.delay(attempt))
        raise error  # pragma: no cover -- loop always raises or returns

    @staticmethod
    def _error_detail(
        exc: urllib.error.HTTPError,
    ) -> tuple[str, str | None, bool | None]:
        """Extract ``(message, code, retryable)`` from an error response.

        Understands the ``/v1`` envelope first, the legacy
        ``{"error": ..., "kind": ...}`` body second, raw text last.
        """
        try:
            payload = json.loads(exc.read())
        except Exception:
            return (
                exc.reason if isinstance(exc.reason, str) else str(exc),
                None,
                None,
            )
        if isinstance(payload, dict) and isinstance(payload.get("error"), dict):
            detail = payload["error"]
            return (
                str(detail.get("message", detail)),
                detail.get("code"),
                detail.get("retryable"),
            )
        if isinstance(payload, dict) and "error" in payload:
            return str(payload["error"]), None, None
        return str(payload), None, None

    def __repr__(self) -> str:
        return f"ServeClient({self.base_url!r}, attempts<={self.policy.max_attempts})"
