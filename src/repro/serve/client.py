"""ServeClient: the urllib-based client of the provenance query service.

A thin, dependency-free wrapper around ``urllib.request`` that speaks the
``repro.serve`` JSON endpoints and reuses the PR-4 retry protocol: failures
whose ``retryable`` attribute is true -- a full admission queue (429), a
deadline overrun (504), or an unreachable server -- are retried with the
same jitter-free exponential backoff the schedulers use
(:class:`~repro.engine.scheduler.RetryPolicy`), so client behaviour under
overload is deterministic and unit-testable.  Everything else (bad pattern,
unknown run) fails immediately.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any
from urllib.parse import quote

from repro.engine.scheduler import RetryPolicy
from repro.errors import AdmissionError, ServeError, TaskTimeoutError

__all__ = ["ServeClient", "DEFAULT_CLIENT_POLICY"]

#: Client default: three retries, 50 ms base backoff -- enough to ride out a
#: momentary queue spike without hammering an overloaded server.
DEFAULT_CLIENT_POLICY = RetryPolicy(max_retries=3, backoff=0.05)


def _error_for(status: int, message: str) -> ServeError:
    """Build the typed error matching a response status."""
    if status == 429:
        return AdmissionError(message)
    if status == 504:
        return TaskTimeoutError(message)
    error = ServeError(f"HTTP {status}: {message}")
    if status == 503:  # server shutting down / transiently unavailable
        error.retryable = True
    return error


class ServeClient:
    """Typed access to one running provenance query server."""

    def __init__(
        self,
        base_url: str,
        policy: RetryPolicy | None = None,
        timeout: float = 30.0,
    ):
        self.base_url = base_url.rstrip("/")
        self.policy = policy if policy is not None else DEFAULT_CLIENT_POLICY
        #: Socket-level timeout per attempt (connect + read), in seconds.
        self.timeout = timeout

    # -- endpoints -------------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return self._get_json("/healthz")

    def runs(self) -> list[dict[str, Any]]:
        return self._get_json("/runs")["runs"]

    def run(self, run_id: str) -> dict[str, Any]:
        return self._get_json(f"/runs/{run_id}")

    def run_stats(self, run_id: str | None = None, prometheus: bool = False) -> Any:
        """The server-side ``repro stats`` registry, as JSON or Prometheus text."""
        path = "/stats"
        params = []
        if run_id:
            params.append(f"run={quote(run_id)}")
        if prometheus:
            params.append("format=prometheus")
        if params:
            path += "?" + "&".join(params)
        body, _ = self._request("GET", path)
        if prometheus:
            return body.decode("utf-8")
        return json.loads(body)

    def query(
        self,
        pattern: str,
        run_id: str | None = None,
        method: str = "lazy",
        analyze: bool = False,
    ) -> dict[str, Any]:
        """Backtrace *pattern* over a stored run (the newest when unnamed).

        With *analyze* the response carries an ``"analyze"`` block of
        per-phase timings (and is computed fresh, never from the cache).
        """
        payload: dict[str, Any] = {"pattern": pattern, "method": method}
        if run_id:
            payload["run"] = run_id
        if analyze:
            payload["analyze"] = True
        body, _ = self._request("POST", "/query", payload)
        return json.loads(body)

    def forward(
        self,
        pattern: str,
        run_id: str | None = None,
        method: str = "lazy",
        analyze: bool = False,
    ) -> dict[str, Any]:
        """Forward-trace *pattern*: matched source items -> derived outputs."""
        payload: dict[str, Any] = {"pattern": pattern, "method": method}
        if run_id:
            payload["run"] = run_id
        if analyze:
            payload["analyze"] = True
        body, _ = self._request("POST", "/forward", payload)
        return json.loads(body)

    def debug_slow(self) -> dict[str, Any]:
        """The server's slow-query ring (``GET /debug/slow``)."""
        return self._get_json("/debug/slow")

    def sar(
        self,
        subjects: list[str],
        template: str | None = None,
        run_id: str | None = None,
        method: str = "lazy",
        page: int = 1,
        page_size: int = 100,
    ) -> dict[str, Any]:
        """One bulk subject-access request (page *page* of the report)."""
        payload: dict[str, Any] = {
            "subjects": subjects,
            "method": method,
            "page": page,
            "page_size": page_size,
        }
        if template is not None:
            payload["template"] = template
        if run_id:
            payload["run"] = run_id
        body, _ = self._request("POST", "/audit/sar", payload)
        return json.loads(body)

    def metrics_text(self) -> str:
        body, _ = self._request("GET", "/metrics")
        return body.decode("utf-8")

    # -- the retry protocol ----------------------------------------------------

    def _get_json(self, path: str) -> Any:
        body, _ = self._request("GET", path)
        return json.loads(body)

    def _request(
        self, verb: str, path: str, payload: dict[str, Any] | None = None
    ) -> tuple[bytes, str]:
        """One logical request: up to ``policy.max_attempts`` HTTP attempts."""
        url = self.base_url + path
        data = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        policy = self.policy
        error: ServeError | None = None
        for attempt in range(1, policy.max_attempts + 1):
            request = urllib.request.Request(
                url,
                data=data,
                headers={"Content-Type": "application/json"},
                method=verb,
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return response.read(), response.headers.get_content_type()
            except urllib.error.HTTPError as exc:
                message = self._error_message(exc)
                error = _error_for(exc.code, message)
            except urllib.error.URLError as exc:
                error = ServeError(f"cannot reach {url}: {exc.reason}")
                error.retryable = True
            except TimeoutError as exc:
                error = TaskTimeoutError(f"no response from {url} in {self.timeout}s")
                error.__cause__ = exc
            if not error.retryable or attempt >= policy.max_attempts:
                raise error
            time.sleep(policy.delay(attempt))
        raise error  # pragma: no cover -- loop always raises or returns

    @staticmethod
    def _error_message(exc: urllib.error.HTTPError) -> str:
        try:
            payload = json.loads(exc.read())
            return str(payload.get("error", payload))
        except Exception:
            return exc.reason if isinstance(exc.reason, str) else str(exc)

    def __repr__(self) -> str:
        return f"ServeClient({self.base_url!r}, attempts<={self.policy.max_attempts})"
