"""The fleet router: one ``/v1`` front door over N serve workers.

The router owns the **run -> worker** map (a :class:`~repro.core.ring.HashRing`
over the fleet's worker names) and splits the API surface by scope:

* **run-scoped** requests (``POST /v1/query``, ``POST /v1/forward``,
  ``GET /v1/runs/<id>``) are *proxied byte-for-byte* to the worker that
  owns the run, so every query for a run lands on the worker whose
  pattern-result cache and resident
  :class:`~repro.warehouse.reader.LazyProvenanceStore` are already hot --
  and the response body is exactly what a single server would have sent;
* **cross-shard** requests are *scatter-gathered*: ``GET /v1/runs`` is the
  union of the workers' catalogs, ``GET /v1/stats`` sums the fleet's
  ``repro_serve_*`` counters over one shared copy of the warehouse figures
  (what ``repro stats --remote`` renders), and the bulk audit endpoints
  (``POST /v1/audit/sar``, ``POST /v1/audit/erasure``) hand each worker
  exactly its owned runs via the request's ``runs`` field, then merge the
  per-run findings back into **the same report bytes -- and for erasure
  the same sha256 digest -- a single process would produce**.

Placement is an affinity optimisation, never a correctness constraint:
every worker mounts the whole warehouse, so when the owning worker is
unreachable the router walks the ring's deterministic preference chain and
the answer is identical, merely colder.  Routing state is a cached catalog
snapshot, refreshed before every scatter-gather (where completeness is
correctness) and on resolution misses (for placement).

The router speaks ``/v1`` only (plus the unversioned ``/metrics`` and
``/stats?format=prometheus`` scrape surfaces, which aggregate the fleet)
and adds ``GET /v1/fleet``: the topology -- workers, ring size, and the
current run assignments.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Any, Callable

from repro.audit.sar import report_digest
from repro.core.ring import DEFAULT_REPLICAS, HashRing
from repro.errors import ProvenanceError, ServeError
from repro.obs.log import get_logger
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, set_build_info
from repro.obs.tracer import get_tracer
from repro.serve.http import API_VERSION, MAX_BODY_BYTES, error_envelope, error_status

__all__ = ["RouterService", "RouterServer"]


def _fetch(
    url: str, verb: str, path: str, data: bytes | None = None, timeout: float = 30.0
) -> tuple[int, bytes]:
    """One HTTP exchange with a worker; error responses return, not raise."""
    request = urllib.request.Request(
        url + path,
        data=data,
        headers={"Content-Type": "application/json"},
        method=verb,
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


class RouterService:
    """Transport-free router core: placement, proxying, scatter-gather."""

    def __init__(
        self,
        workers: list[tuple[str, str]],
        replicas: int = DEFAULT_REPLICAS,
        timeout: float = 30.0,
        registry: MetricsRegistry | None = None,
    ):
        if not workers:
            raise ServeError("router needs at least one worker")
        self.workers = dict(workers)
        if len(self.workers) != len(workers):
            raise ServeError("router worker names must be unique")
        self.ring = HashRing(self.workers, replicas=replicas)
        self.timeout = timeout
        self.registry = registry if registry is not None else MetricsRegistry()
        self._catalog: list[dict[str, Any]] = []
        self._catalog_lock = threading.Lock()
        set_build_info(self.registry, component="router")

    # -- the catalog snapshot --------------------------------------------------

    def refresh_catalog(self) -> list[dict[str, Any]]:
        """Re-fetch ``/v1/runs`` from the first reachable worker."""
        last_error: Exception | None = None
        for name in self.ring.preference("catalog"):
            try:
                status, body = self._worker_fetch(
                    name, "GET", f"/{API_VERSION}/runs"
                )
            except urllib.error.URLError as exc:
                last_error = exc
                continue
            if status != 200:
                last_error = ServeError(
                    f"worker {name} answered /runs with HTTP {status}"
                )
                continue
            runs = json.loads(body)["data"]["runs"]
            with self._catalog_lock:
                self._catalog = runs
            return runs
        raise ServeError(f"no worker could list runs: {last_error}")

    def catalog(self, refresh: bool = False) -> list[dict[str, Any]]:
        with self._catalog_lock:
            snapshot = list(self._catalog)
        if refresh or not snapshot:
            return self.refresh_catalog()
        return snapshot

    def _resolve(self, run: str | None) -> str | None:
        """Best-effort run resolution for *placement* (the warehouse rules:
        exact id first, then newest run of that name, ``None`` -> newest).

        A miss refreshes once; a second miss returns ``None`` and the
        request is routed by the raw value -- the worker, which always
        resolves against the live catalog, produces the authoritative
        answer (or 404) either way.
        """
        for attempt in range(2):
            catalog = self.catalog(refresh=attempt > 0)
            if run is None:
                if catalog:
                    return catalog[-1]["run_id"]
            else:
                named = None
                for record in catalog:
                    if record["run_id"] == run:
                        return run
                    if record.get("name") == run:
                        named = record["run_id"]
                if named is not None:
                    return named
        return None

    # -- placement + proxying --------------------------------------------------

    def owner(self, run_id: str) -> str:
        return self.ring.assign(run_id)

    def _worker_fetch(
        self, name: str, verb: str, path: str, data: bytes | None = None
    ) -> tuple[int, bytes]:
        started = perf_counter()
        try:
            return _fetch(self.workers[name], verb, path, data, self.timeout)
        finally:
            self.registry.counter(
                "repro_router_worker_requests_total", worker=name
            ).inc()
            self.registry.histogram(
                "repro_router_worker_seconds", worker=name
            ).observe(perf_counter() - started)

    def forward_to_owner(
        self, run_key: str, verb: str, path: str, data: bytes | None = None
    ) -> tuple[int, bytes, str]:
        """Send the raw request to *run_key*'s owner; walk the failover chain.

        Returns ``(status, body, worker)`` with the worker's body untouched
        -- the byte-identity guarantee for run-scoped endpoints.  Only
        transport failures fail over; an HTTP error status is the owner's
        authoritative answer and is returned as-is.
        """
        last_error: Exception | None = None
        for name in self.ring.preference(run_key):
            try:
                status, body = self._worker_fetch(name, verb, path, data)
            except urllib.error.URLError as exc:
                last_error = exc
                get_logger("router").event(
                    "router-failover", worker=name, path=path, error=str(exc.reason)
                )
                continue
            return status, body, name
        raise ServeError(f"no worker reachable for {path}: {last_error}")

    def _scatter(
        self, verb: str, path: str, per_worker_data: dict[str, bytes | None]
    ) -> dict[str, tuple[int, bytes]]:
        """Issue one request per worker concurrently; gather every answer."""
        results: dict[str, tuple[int, bytes]] = {}
        errors: dict[str, Exception] = {}
        lock = threading.Lock()

        def call(name: str, data: bytes | None) -> None:
            try:
                answer = self._worker_fetch(name, verb, path, data)
            except urllib.error.URLError as exc:
                with lock:
                    errors[name] = exc
                return
            with lock:
                results[name] = answer

        threads = [
            threading.Thread(
                target=call, args=(name, data), name=f"repro-router-{name}"
            )
            for name, data in per_worker_data.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            failed = ", ".join(sorted(errors))
            raise ServeError(f"fleet workers unreachable: {failed}")
        return results

    @staticmethod
    def _unwrap(name: str, status: int, body: bytes) -> Any:
        """Decode one worker's ``/v1`` envelope; re-raise its typed error."""
        payload = json.loads(body)
        if payload.get("ok") is True:
            return payload["data"]
        from repro.serve.client import _error_for

        detail = payload.get("error") or {}
        raise _error_for(
            status,
            str(detail.get("message", f"worker {name} answered HTTP {status}")),
            code=detail.get("code"),
            retryable=detail.get("retryable"),
        )

    # -- scatter-gather endpoints ----------------------------------------------

    def runs(self) -> dict[str, Any]:
        """The fleet's union catalog, in catalog (oldest-first) order."""
        answers = self._scatter(
            "GET", f"/{API_VERSION}/runs", {name: None for name in self.workers}
        )
        merged: list[dict[str, Any]] = []
        seen: set[str] = set()
        for name in sorted(answers):
            status, body = answers[name]
            for record in self._unwrap(name, status, body)["runs"]:
                if record["run_id"] not in seen:
                    seen.add(record["run_id"])
                    merged.append(record)
        merged.sort(key=lambda record: (record["created"], record["run_id"]))
        with self._catalog_lock:
            self._catalog = merged
        return {"runs": merged}

    def stats(self) -> MetricsRegistry:
        """The fleet-wide registry: shared warehouse figures + summed serve counters.

        Every worker reports the same warehouse-derived metrics (they mount
        one root), so those are taken once (first worker wins); the
        ``repro_serve_*`` counters and histograms describe each worker's own
        traffic and are summed.  Worker identity is deliberately not a
        label: the aggregate must look like one big server to dashboards.
        """
        answers = self._scatter(
            "GET", f"/{API_VERSION}/stats", {name: None for name in self.workers}
        )
        registry = MetricsRegistry()
        seen: set[tuple[str, tuple[tuple[str, str], ...]]] = set()
        for name in sorted(answers):
            status, body = answers[name]
            for entry in self._unwrap(name, status, body)["metrics"]:
                self._fold_metric(registry, entry, seen)
        return registry

    @staticmethod
    def _fold_metric(
        registry: MetricsRegistry,
        entry: dict[str, Any],
        seen: set[tuple[str, tuple[tuple[str, str], ...]]],
    ) -> None:
        labels = dict(entry.get("labels") or {})
        key = (entry["name"], tuple(sorted(labels.items())))
        additive = entry["name"].startswith("repro_serve_")
        if not additive and key in seen:
            return
        seen.add(key)
        if entry["type"] == "counter":
            counter: Counter = registry.counter(entry["name"], **labels)
            if entry["value"]:
                counter.inc(entry["value"])
        elif entry["type"] == "gauge":
            gauge: Gauge = registry.gauge(entry["name"], **labels)
            if additive:
                gauge.add(entry["value"])
            else:
                gauge.set(entry["value"])
        else:
            histogram: Histogram = registry.histogram(
                entry["name"], buckets=tuple(entry["buckets"]), **labels
            )
            if additive or histogram.count == 0:
                for index, count in enumerate(entry["counts"]):
                    histogram.counts[index] += count
                histogram.sum += entry["sum"]
                histogram.count += entry["count"]

    def _scope(self, body: dict[str, Any]) -> list[str]:
        """The ordered run-id scope of a bulk audit request.

        Refreshes the catalog first: scatter-gather completeness is a
        correctness property (a missed run is a wrong report), unlike
        query placement where staleness only costs cache warmth.
        """
        catalog = self.catalog(refresh=True)
        order = [record["run_id"] for record in catalog]
        if body.get("runs") is not None:
            runs = body["runs"]
            if not isinstance(runs, list) or not all(
                isinstance(run, str) and run for run in runs
            ):
                raise ServeError("'runs' must be a list of run ids or names")
            resolved = []
            for run in runs:
                run_id = self._resolve(run)
                if run_id is None:
                    raise ProvenanceError(f"no run {run!r} in the fleet catalog")
                resolved.append(run_id)
            return resolved
        if body.get("run"):
            run_id = self._resolve(str(body["run"]))
            if run_id is None:
                raise ProvenanceError(
                    f"no run {body['run']!r} in the fleet catalog"
                )
            return [run_id]
        return order

    def _scatter_audit(
        self, endpoint: str, body: dict[str, Any]
    ) -> tuple[list[str], dict[str, Any]]:
        """Fan a bulk audit request out by run ownership; gather the answers.

        Returns ``(ordered scope, worker -> unwrapped payload)``.  Each
        worker receives the full subject list and request shape but only
        its owned subset of the scope in ``runs`` -- pagination and subject
        ordering happen identically everywhere, so the per-run entries can
        be merged back without recomputing anything.
        """
        scope = self._scope(body)
        by_worker: dict[str, list[str]] = {}
        for run_id in scope:
            by_worker.setdefault(self.owner(run_id), []).append(run_id)
        if not by_worker:
            # An empty warehouse still produces a (subject-only) report;
            # one worker answers for the empty scope.
            by_worker[self.ring.assign("")] = []
        per_worker = {
            name: json.dumps(dict(body, runs=owned, run=None)).encode("utf-8")
            for name, owned in by_worker.items()
        }
        answers = self._scatter("POST", f"/{API_VERSION}{endpoint}", per_worker)
        payloads = {
            name: self._unwrap(name, status, answer_body)
            for name, (status, answer_body) in answers.items()
        }
        return scope, payloads

    def sar(self, body: dict[str, Any]) -> dict[str, Any]:
        """Scatter one subject-access request; merge to the single-server bytes."""
        scope, payloads = self._scatter_audit("/audit/sar", body)
        order = {run_id: index for index, run_id in enumerate(scope)}
        first = next(iter(payloads.values()))
        report = dict(first["report"])
        merged_subjects = []
        for index, template_entry in enumerate(report["subjects"]):
            runs: list[dict[str, Any]] = []
            for payload in payloads.values():
                runs.extend(payload["report"]["subjects"][index]["runs"])
            runs.sort(key=lambda entry: order[entry["run_id"]])
            merged_subjects.append(
                {
                    "subject": template_entry["subject"],
                    "runs": runs,
                    "run_count": len(runs),
                    "total_outputs": sum(
                        entry["output_count"] for entry in runs
                    ),
                }
            )
        report["subjects"] = merged_subjects
        return {
            "method": first["method"],
            "report": report,
            "query_seconds": max(
                payload["query_seconds"] for payload in payloads.values()
            ),
        }

    def erasure(self, body: dict[str, Any]) -> dict[str, Any]:
        """Scatter one erasure verification; rebuild the digest-signed receipt.

        The merged body is exactly what ``erasure_over_tracers`` would have
        produced over the full scope, so recomputing the sha256 here yields
        the same digest as a direct library call -- fleet receipts and
        single-process receipts are interchangeable.
        """
        scope, payloads = self._scatter_audit("/audit/erasure", body)
        order = {run_id: index for index, run_id in enumerate(scope)}
        first = next(iter(payloads.values()))
        findings = []
        for index, template_entry in enumerate(first["report"]["subjects"]):
            residuals: list[dict[str, Any]] = []
            for payload in payloads.values():
                residuals.extend(
                    payload["report"]["subjects"][index]["residuals"]
                )
            residuals.sort(key=lambda entry: order[entry["run_id"]])
            findings.append(
                {
                    "subject": template_entry["subject"],
                    "clean": not residuals,
                    "residuals": residuals,
                }
            )
        merged = {
            "report": "erasure-verification",
            "template": first["report"]["template"],
            "subjects": findings,
            "subject_count": len(findings),
            "clean": all(finding["clean"] for finding in findings),
            "runs_checked": scope,
        }
        return {
            "method": first["method"],
            "report": dict(merged, digest=report_digest(merged)),
            "query_seconds": max(
                payload["query_seconds"] for payload in payloads.values()
            ),
        }

    def health(self) -> dict[str, Any]:
        """Router liveness plus each worker's own health answer."""
        answers = self._scatter(
            "GET", f"/{API_VERSION}/healthz", {name: None for name in self.workers}
        )
        workers = {}
        for name in sorted(self.workers):
            status, body = answers[name]
            try:
                workers[name] = self._unwrap(name, status, body)
            except Exception as exc:  # noqa: BLE001 -- health reports, not raises
                workers[name] = {"status": "error", "error": str(exc)}
        healthy = sum(
            1 for health in workers.values() if health.get("status") == "ok"
        )
        return {
            "status": "ok" if healthy == len(self.workers) else "degraded",
            "role": "router",
            "workers": workers,
            "healthy_workers": healthy,
        }

    def fleet(self) -> dict[str, Any]:
        """The topology: workers, ring parameters, current run placement."""
        catalog = self.catalog(refresh=True)
        run_ids = [record["run_id"] for record in catalog]
        return {
            "workers": [
                {"name": name, "url": url}
                for name, url in sorted(self.workers.items())
            ],
            "replicas": self.ring.replicas,
            "assignments": self.ring.assignments(run_ids),
        }

    def debug_slow(self) -> dict[str, Any]:
        """Every worker's slow-query ring, keyed by worker name."""
        answers = self._scatter(
            "GET",
            f"/{API_VERSION}/debug/slow",
            {name: None for name in self.workers},
        )
        return {
            "workers": {
                name: self._unwrap(name, status, body)
                for name, (status, body) in sorted(answers.items())
            }
        }

    def metrics_text(self) -> str:
        """The aggregate Prometheus page, router-side counters appended."""
        registry = self.stats()
        for metric in self.registry.metrics():
            if isinstance(metric, Counter):
                copy = registry.counter(metric.name, **dict(metric.labels))
                if metric.value:
                    copy.inc(metric.value)
            elif isinstance(metric, Gauge):
                registry.gauge(metric.name, **dict(metric.labels)).set(metric.value)
        return registry.render_prometheus()

    def observe_request(self, endpoint: str, status: int, seconds: float) -> None:
        self.registry.counter(
            "repro_router_requests_total", endpoint=endpoint, status=str(status)
        ).inc()
        self.registry.histogram(
            "repro_router_request_seconds", endpoint=endpoint
        ).observe(seconds)


class _RouterHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], router: RouterService):
        super().__init__(address, _RouterHandler)
        self.router = router


class _RouterHandler(BaseHTTPRequestHandler):
    """One router connection: route, proxy or scatter, answer in-envelope."""

    protocol_version = "HTTP/1.1"
    server: _RouterHTTPServer

    def log_message(self, format: str, *args: Any) -> None:
        pass

    def _send(self, status: int, body: bytes, content_type: str, worker: str | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if worker is not None:
            self.send_header("X-Repro-Worker", worker)
        self.end_headers()
        self.wfile.write(body)

    def _send_envelope(self, payload: Any) -> int:
        body = json.dumps({"ok": True, "data": payload}, sort_keys=True).encode(
            "utf-8"
        )
        self._send(200, body, "application/json")
        return 200

    def _read_raw(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            raise ServeError(f"request body must be 1..{MAX_BODY_BYTES} bytes")
        return self.rfile.read(length)

    def _read_body(self) -> tuple[bytes, dict[str, Any]]:
        raw = self._read_raw()
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        return raw, payload

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def _route(self, verb: str) -> None:
        router = self.server.router
        from urllib.parse import parse_qs, urlsplit

        split = urlsplit(self.path)
        segments = [part for part in split.path.split("/") if part]
        versioned = segments[:1] == [API_VERSION]
        if versioned:
            segments = segments[1:]
        query = parse_qs(split.query)
        endpoint = "(unknown)"
        status = 500
        started = perf_counter()
        try:
            endpoint, handler = self._dispatch(verb, segments, versioned, query)
            if versioned:
                endpoint = f"/{API_VERSION}" + endpoint
            with get_tracer().span(f"route {endpoint}", "router", verb=verb):
                status = handler()
        except Exception as exc:  # noqa: BLE001 -- every error becomes a response
            status = error_status(exc)
            body = json.dumps(error_envelope(exc), sort_keys=True).encode("utf-8")
            self._send(status, body, "application/json")
            if status == 500:
                get_logger("router").event(
                    "router-error", endpoint=endpoint, error=str(exc)
                )
        finally:
            router.observe_request(endpoint, status, perf_counter() - started)

    def _dispatch(
        self,
        verb: str,
        segments: list[str],
        versioned: bool,
        query: dict[str, list[str]],
    ) -> tuple[str, Callable[[], int]]:
        router = self.server.router
        if verb == "GET" and segments == ["healthz"]:
            return "/healthz", lambda: self._send_envelope(router.health())
        if verb == "GET" and segments == ["fleet"]:
            return "/fleet", lambda: self._send_envelope(router.fleet())
        if verb == "GET" and segments == ["runs"]:
            return "/runs", lambda: self._send_envelope(router.runs())
        if verb == "GET" and len(segments) == 2 and segments[0] == "runs":
            return "/runs/<id>", lambda: self._proxy_run(
                segments[1], "GET", f"/{API_VERSION}/runs/{segments[1]}", None
            )
        if verb == "GET" and segments == ["stats"]:
            return "/stats", lambda: self._stats(versioned, query)
        if verb == "GET" and segments == ["metrics"] and not versioned:
            return "/metrics", lambda: self._metrics()
        if verb == "GET" and segments == ["debug", "slow"]:
            return "/debug/slow", lambda: self._send_envelope(router.debug_slow())
        if verb == "POST" and segments in (["query"], ["forward"]):
            kind = segments[0]
            return f"/{kind}", lambda: self._proxy_query(kind)
        if verb == "POST" and segments == ["audit", "sar"]:
            return "/audit/sar", lambda: self._audit(router.sar)
        if verb == "POST" and segments == ["audit", "erasure"]:
            return "/audit/erasure", lambda: self._audit(router.erasure)
        raise ProvenanceError(f"no such route: {verb} {self.path}")

    # -- handler bodies --------------------------------------------------------

    def _proxy_run(
        self, run: str, verb: str, path: str, data: bytes | None
    ) -> int:
        router = self.server.router
        run_id = router._resolve(run) or run
        status, body, worker = router.forward_to_owner(run_id, verb, path, data)
        self._send(status, body, "application/json", worker=worker)
        return status

    def _proxy_query(self, kind: str) -> int:
        """Route one query/forward to its run's owner, bytes untouched."""
        raw, payload = self._read_body()
        run = payload.get("run")
        router = self.server.router
        run_id = router._resolve(str(run) if run is not None else None)
        status, body, worker = router.forward_to_owner(
            run_id or str(run or ""), "POST", f"/{API_VERSION}/{kind}", raw
        )
        self._send(status, body, "application/json", worker=worker)
        return status

    def _audit(self, method: Callable[[dict[str, Any]], dict[str, Any]]) -> int:
        _, payload = self._read_body()
        return self._send_envelope(method(payload))

    def _stats(self, versioned: bool, query: dict[str, list[str]]) -> int:
        router = self.server.router
        registry = router.stats()
        wants_text = (query.get("format") or ["json"])[0] == "prometheus"
        if wants_text and not versioned:
            body = registry.render_prometheus().encode("utf-8")
            self._send(200, body, "text/plain; version=0.0.4")
            return 200
        return self._send_envelope(registry.to_json())

    def _metrics(self) -> int:
        body = self.server.router.metrics_text().encode("utf-8")
        self._send(200, body, "text/plain; version=0.0.4")
        return 200


class RouterServer:
    """The long-running router front-end; same lifecycle as ProvenanceServer."""

    def __init__(
        self, router: RouterService, host: str = "127.0.0.1", port: int = 0
    ):
        self.router = router
        self._httpd = _RouterHTTPServer((host, port), router)
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "RouterServer":
        if self._thread is not None:
            raise ServeError("router already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-router-accept",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever(poll_interval=0.1)

    def close(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "RouterServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"RouterServer({self.url}, {len(self.router.workers)} workers)"
