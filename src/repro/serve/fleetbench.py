"""``repro bench serve --fleet``: single worker vs fleet, same questions.

Spins the same warehouse up twice -- once as a 1-worker fleet, once at the
requested size, each behind a router -- and drives the identical closed-loop
load (:func:`repro.serve.bench.run_load`) through both.  Three things come
out:

* **throughput per fleet size**, so the scaling factor is one number
  (``speedup``); the paper's query service is embarrassingly parallel
  across runs, so on a multi-core host warm throughput should scale close
  to linearly until cores run out -- which is why the report also records
  ``cpus``: on a single-core host the fleet can only interleave, and the
  CI assertion on speedup is gated accordingly;
* **a byte-identity verdict**: before any load, one answer per recorded
  run is fetched through the router and compared against a direct
  :class:`~repro.warehouse.Warehouse` backtrace -- scaling that changes
  answers is a bug, not a speedup;
* the usual latency percentiles per size, cold and warm split out.
"""

from __future__ import annotations

import json
import os
from pathlib import Path as FsPath
from typing import Any

from repro.pebble.query import query_provenance
from repro.serve.bench import run_load
from repro.serve.fleet import Fleet
from repro.serve.router import RouterService, RouterServer
from repro.serve.service import ServeConfig, result_to_json
from repro.warehouse import Warehouse
from repro.workloads.scenarios import RUNNING_EXAMPLE_PATTERN

__all__ = ["run_fleet_bench", "write_fleet_report", "render_fleet_report"]


def _verify_byte_identity(
    root: str, url: str, pattern: str, method: str
) -> list[dict[str, Any]]:
    """Compare every run's fleet answer against a direct warehouse backtrace."""
    import repro

    warehouse = Warehouse.open(root)
    client = repro.connect(url)
    verdicts = []
    for record in warehouse.runs():
        remote = client.backtrace(pattern, run=record.run_id, method=method)
        # A fresh load per run: no state shared with the fleet's answer.
        direct = result_to_json(
            query_provenance(warehouse.load(record.run_id), pattern)
        )
        identical = json.dumps(remote["result"], sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )
        verdicts.append({"run_id": record.run_id, "identical": identical})
    return verdicts


def run_fleet_bench(
    root: str,
    size: int = 4,
    pattern: str = RUNNING_EXAMPLE_PATTERN,
    run: str | None = None,
    method: str = "lazy",
    requests: int = 200,
    concurrency: int = 8,
    mode: str = "thread",
    config: ServeConfig | None = None,
) -> dict[str, Any]:
    """Benchmark fleet sizes 1 and *size* over *root*; return the report."""
    sizes = sorted({1, max(1, size)})
    report: dict[str, Any] = {
        "bench": "fleet-serve",
        "root": str(root),
        "mode": mode,
        "pattern": pattern,
        "method": method,
        "requests": requests,
        "concurrency": concurrency,
        "cpus": os.cpu_count() or 1,
        "sizes": [],
    }
    for fleet_size in sizes:
        with Fleet(root, size=fleet_size, mode=mode, config=config) as fleet:
            router = RouterService(fleet.workers())
            with RouterServer(router) as server:
                verdicts = _verify_byte_identity(
                    str(root), server.url, pattern, method
                )
                load = run_load(
                    server.url,
                    pattern,
                    run=run,
                    method=method,
                    requests=requests,
                    concurrency=concurrency,
                )
        entry = load.to_json()
        entry["size"] = fleet_size
        entry["byte_identical"] = all(v["identical"] for v in verdicts)
        entry["identity_checks"] = verdicts
        report["sizes"].append(entry)
    base = report["sizes"][0]["throughput_rps"]
    peak = report["sizes"][-1]["throughput_rps"]
    report["speedup"] = (peak / base) if base else 0.0
    report["byte_identical"] = all(
        entry["byte_identical"] for entry in report["sizes"]
    )
    return report


def render_fleet_report(report: dict[str, Any]) -> str:
    lines = [
        f"fleet bench -- {report['root']} mode={report['mode']} "
        f"method={report['method']} cpus={report['cpus']}",
        f"pattern: {report['pattern']}",
        f"load: {report['requests']} requests, "
        f"{report['concurrency']} concurrent workers",
    ]
    for entry in report["sizes"]:
        lines.append(
            f"  size {entry['size']}: {entry['throughput_rps']:.1f} req/s  "
            f"p50 {entry['latency_ms']['p50']:.2f} ms  "
            f"warm p50 {entry['warm']['p50_ms']:.2f} ms  "
            f"errors {entry['errors']}  "
            f"byte-identical {'yes' if entry['byte_identical'] else 'NO'}"
        )
    lines.append(
        f"speedup (size {report['sizes'][-1]['size']} over 1): "
        f"x{report['speedup']:.2f}"
    )
    if report["cpus"] < 2:
        lines.append(
            "note: single-core host -- workers interleave on one CPU, "
            "so throughput scaling is not expected here"
        )
    return "\n".join(lines)


def write_fleet_report(
    report: dict[str, Any], json_path: str | FsPath
) -> tuple[FsPath, FsPath]:
    """Write the JSON report plus a text rendering next to it."""
    json_path = FsPath(json_path)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    text_path = json_path.with_suffix(".txt")
    with open(text_path, "w", encoding="utf-8") as handle:
        handle.write(render_fleet_report(report) + "\n")
    return json_path, text_path
