"""repro.serve: a concurrent provenance query service over the warehouse.

The paper's provenance outlives the run that produced it (auditing and
usage queries arrive days later, Sec. 7.4); this package turns the
warehouse into a long-running HTTP service so those queries don't pay a
process start + catalog load each time.  Everything is standard library:
``http.server`` + ``threading`` for the server, ``urllib`` for the client.

Layers, inside out:

* :mod:`repro.serve.cache` -- single-flight LRU over pattern results,
  keyed ``(run_id, pattern, method)``.
* :mod:`repro.serve.pool` -- the bounded worker pool with admission
  control (full queue -> 429) and per-request deadlines (-> 504).
* :mod:`repro.serve.service` -- :class:`QueryService`, the HTTP-free
  core: resident runs, catalog freshness, metrics.
* :mod:`repro.serve.http` -- :class:`ProvenanceServer`, the endpoints.
* :mod:`repro.serve.client` -- :class:`ServeClient`, typed access with
  the PR-4 retry protocol.
* :mod:`repro.serve.bench` -- the ``repro bench serve`` load generator.
"""

from repro.serve.cache import PatternResultCache
from repro.serve.client import ServeClient
from repro.serve.http import ProvenanceServer
from repro.serve.pool import QueryPool
from repro.serve.service import (
    QUERY_METHODS,
    QueryService,
    ServeConfig,
    result_to_json,
)

__all__ = [
    "PatternResultCache",
    "ProvenanceServer",
    "QueryPool",
    "QueryService",
    "QUERY_METHODS",
    "ServeClient",
    "ServeConfig",
    "result_to_json",
]
