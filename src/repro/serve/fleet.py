"""Fleet supervision: N serve workers over one warehouse, ready to route.

A fleet is just *N* independent ``repro serve`` workers mounted on the same
warehouse root; the :mod:`repro.serve.router` in front of them owns the
run -> worker map.  This module starts and stops the workers:

* **thread mode** (default; tests, benchmarks, single-box serving) -- each
  worker is a :class:`~repro.serve.service.QueryService` +
  :class:`~repro.serve.http.ProvenanceServer` pair in this process, on its
  own ephemeral port with its own
  :class:`~repro.obs.metrics.MetricsRegistry` (so per-worker counters
  don't collide in the shared process registry);
* **process mode** -- each worker is a ``python -m repro serve`` child
  process; the supervisor reads the worker's banner line
  (``serving warehouse <root> at http://host:port``) from its stdout pipe
  to learn the bound port, and terminates the children on close (the
  workers' signal handlers run the ordinary drain-and-flush shutdown).

Workers are named ``worker-00`` .. ``worker-NN``; those names seed the
router's hash ring, so the fleet topology -- not the accidental port
numbers -- determines placement.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import time
from typing import Any

from repro.errors import ServeError
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.serve.http import ProvenanceServer
from repro.serve.service import QueryService, ServeConfig

__all__ = ["Fleet", "FLEET_MODES"]

#: How a fleet hosts its workers.
FLEET_MODES = ("thread", "process")

#: The banner prefix every worker prints once its socket is bound.
_BANNER = "serving warehouse "


def _worker_name(index: int) -> str:
    return f"worker-{index:02d}"


class _ThreadWorker:
    """One in-process worker: a service + server pair on an ephemeral port."""

    def __init__(self, name: str, config: ServeConfig):
        self.name = name
        self.service = QueryService.open(config, registry=MetricsRegistry())
        self.server = ProvenanceServer(self.service, port=0)

    @property
    def url(self) -> str:
        return self.server.url

    def start(self) -> None:
        self.server.start()

    def close(self) -> None:
        self.server.close()


class _ProcessWorker:
    """One child-process worker, discovered through its startup banner."""

    def __init__(self, name: str, config: ServeConfig, startup_timeout: float):
        self.name = name
        self._config = config
        self._startup_timeout = startup_timeout
        self._process: subprocess.Popen[str] | None = None
        self.url: str | None = None

    def start(self) -> None:
        config = self._config
        command = [
            sys.executable, "-m", "repro", "serve",
            "--root", config.root,
            "--host", config.host,
            "--port", "0",
            "--workers", str(config.workers),
            "--queue-limit", str(config.queue_limit),
            "--deadline", str(config.deadline or 0),
            "--cache-size", str(config.cache_size),
        ]
        self._process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        deadline = time.monotonic() + self._startup_timeout
        assert self._process.stdout is not None
        while True:
            line = self._process.stdout.readline()
            if line.startswith(_BANNER) and " at http" in line:
                self.url = line.rsplit(" at ", 1)[1].strip()
                return
            if not line or time.monotonic() > deadline:
                self.close()
                raise ServeError(
                    f"fleet worker {self.name} did not report a listening "
                    f"address within {self._startup_timeout}s"
                )

    def close(self) -> None:
        process = self._process
        if process is None:
            return
        self._process = None
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
        if process.stdout is not None:
            process.stdout.close()


class Fleet:
    """N serve workers over one warehouse root; start, enumerate, stop.

    ::

        with Fleet(root, size=3) as fleet:
            router = RouterService(fleet.workers())
            ...

    ``workers()`` returns the ordered ``(name, url)`` pairs the router's
    ring is built from.
    """

    def __init__(
        self,
        root: str,
        size: int,
        mode: str = "thread",
        config: ServeConfig | None = None,
        startup_timeout: float = 30.0,
    ):
        if size < 1:
            raise ServeError(f"a fleet needs at least one worker, got {size}")
        if mode not in FLEET_MODES:
            raise ServeError(
                f"unknown fleet mode {mode!r}; expected one of {FLEET_MODES}"
            )
        self.root = str(root)
        self.size = size
        self.mode = mode
        base = config if config is not None else ServeConfig(root=self.root)
        self._config = ServeConfig(
            root=self.root,
            host=base.host,
            port=0,
            workers=base.workers,
            queue_limit=base.queue_limit,
            deadline=base.deadline,
            cache_size=base.cache_size,
            segment_cache_size=base.segment_cache_size,
            num_partitions=base.num_partitions,
        )
        self._startup_timeout = startup_timeout
        self._workers: list[_ThreadWorker | _ProcessWorker] = []

    def start(self) -> "Fleet":
        if self._workers:
            raise ServeError("fleet already started")
        try:
            for index in range(self.size):
                name = _worker_name(index)
                if self.mode == "thread":
                    worker: _ThreadWorker | _ProcessWorker = _ThreadWorker(
                        name, self._config
                    )
                else:
                    worker = _ProcessWorker(
                        name, self._config, self._startup_timeout
                    )
                worker.start()
                self._workers.append(worker)
        except BaseException:
            self.close()
            raise
        get_logger("serve").event(
            "fleet-started",
            mode=self.mode,
            size=len(self._workers),
            urls=[worker.url for worker in self._workers],
        )
        return self

    def workers(self) -> list[tuple[str, str]]:
        """Ordered ``(name, url)`` pairs -- the router ring's node set."""
        if not self._workers:
            raise ServeError("fleet not started")
        return [(worker.name, worker.url or "") for worker in self._workers]

    def describe(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "size": self.size,
            "root": self.root,
            "workers": [
                {"name": name, "url": url} for name, url in self.workers()
            ],
        }

    def close(self) -> None:
        workers, self._workers = self._workers, []
        for worker in reversed(workers):
            try:
                worker.close()
            except Exception:  # noqa: BLE001 -- best-effort teardown
                pass

    def __enter__(self) -> "Fleet":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "up" if self._workers else "down"
        return f"Fleet({self.root!r}, size={self.size}, mode={self.mode}, {state})"
