"""``repro bench serve``: a closed-loop load generator for the query service.

*Closed loop* means each of ``concurrency`` workers issues its next request
only after the previous one answered -- the classic service benchmark shape,
so measured latency includes queueing behind the server's admission layer
rather than open-loop coordinated omission.

The report separates **cold** requests (the server computed the backtrace;
``server.cached == false``) from **warm** ones (pattern-cache hits), which
turns the cache's value into a single comparable number: with one
(run, pattern, method) key, exactly one request is cold and the warm p50
should sit well under the cold latency -- the serve-smoke CI job asserts
exactly that on every push.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path as FsPath
from typing import Any

from repro.engine.scheduler import RetryPolicy
from repro.serve.client import ServeClient

__all__ = ["ServeBenchReport", "run_load", "write_report", "percentile"]


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 < fraction <= 1.0)."""
    if not sorted_values:
        return 0.0
    rank = max(1, round(fraction * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass
class ServeBenchReport:
    """One load-generation run, reduced to the numbers that matter."""

    url: str
    run: str | None
    pattern: str
    method: str
    requests: int
    concurrency: int
    completed: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    throughput_rps: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    cold_count: int = 0
    cold_mean_ms: float = 0.0
    warm_count: int = 0
    warm_p50_ms: float = 0.0
    warm_p95_ms: float = 0.0
    error_kinds: dict[str, int] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "url": self.url,
            "run": self.run,
            "pattern": self.pattern,
            "method": self.method,
            "requests": self.requests,
            "concurrency": self.concurrency,
            "completed": self.completed,
            "errors": self.errors,
            "error_kinds": dict(self.error_kinds),
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {"p50": self.p50_ms, "p95": self.p95_ms, "p99": self.p99_ms},
            "cold": {"count": self.cold_count, "mean_ms": self.cold_mean_ms},
            "warm": {
                "count": self.warm_count,
                "p50_ms": self.warm_p50_ms,
                "p95_ms": self.warm_p95_ms,
            },
        }

    def render(self) -> str:
        lines = [
            f"serve bench -- {self.url} method={self.method}",
            f"pattern: {self.pattern}" + (f"  run: {self.run}" if self.run else ""),
            f"requests: {self.completed}/{self.requests} ok, {self.errors} errors, "
            f"{self.concurrency} concurrent workers",
            f"wall: {self.wall_seconds:.3f}s  throughput: {self.throughput_rps:.1f} req/s",
            f"latency: p50 {self.p50_ms:.2f} ms  p95 {self.p95_ms:.2f} ms  "
            f"p99 {self.p99_ms:.2f} ms",
            f"cold (computed): {self.cold_count} requests, mean {self.cold_mean_ms:.2f} ms",
            f"warm (cache hit): {self.warm_count} requests, p50 {self.warm_p50_ms:.2f} ms, "
            f"p95 {self.warm_p95_ms:.2f} ms",
        ]
        if self.cold_count and self.warm_count and self.warm_p50_ms:
            lines.append(
                f"warm speedup over cold: x{self.cold_mean_ms / self.warm_p50_ms:.1f}"
            )
        return "\n".join(lines)


def run_load(
    url: str,
    pattern: str,
    run: str | None = None,
    method: str = "lazy",
    requests: int = 100,
    concurrency: int = 4,
    policy: RetryPolicy | None = None,
    timeout: float = 30.0,
) -> ServeBenchReport:
    """Drive *requests* queries through *concurrency* closed-loop workers."""
    report = ServeBenchReport(url, run, pattern, method, requests, concurrency)
    client = ServeClient(url, policy=policy, timeout=timeout)
    lock = threading.Lock()
    remaining = requests
    samples: list[tuple[float, bool]] = []

    def worker() -> None:
        nonlocal remaining
        while True:
            with lock:
                if remaining <= 0:
                    return
                remaining -= 1
            started = time.perf_counter()
            try:
                response = client.query(pattern, run_id=run, method=method)
            except Exception as exc:  # noqa: BLE001 -- counted, not fatal
                with lock:
                    report.errors += 1
                    kind = type(exc).__name__
                    report.error_kinds[kind] = report.error_kinds.get(kind, 0) + 1
                continue
            elapsed = time.perf_counter() - started
            cached = bool(response.get("server", {}).get("cached"))
            with lock:
                samples.append((elapsed, cached))

    threads = [
        threading.Thread(target=worker, name=f"repro-bench-serve-{index}")
        for index in range(max(1, concurrency))
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - wall_start

    latencies = sorted(seconds for seconds, _ in samples)
    cold = sorted(seconds for seconds, cached in samples if not cached)
    warm = sorted(seconds for seconds, cached in samples if cached)
    report.completed = len(samples)
    if report.wall_seconds > 0:
        report.throughput_rps = report.completed / report.wall_seconds
    report.p50_ms = percentile(latencies, 0.50) * 1000
    report.p95_ms = percentile(latencies, 0.95) * 1000
    report.p99_ms = percentile(latencies, 0.99) * 1000
    report.cold_count = len(cold)
    report.cold_mean_ms = (sum(cold) / len(cold) * 1000) if cold else 0.0
    report.warm_count = len(warm)
    report.warm_p50_ms = percentile(warm, 0.50) * 1000
    report.warm_p95_ms = percentile(warm, 0.95) * 1000
    return report


def write_report(
    report: ServeBenchReport, json_path: str | FsPath
) -> tuple[FsPath, FsPath]:
    """Write the JSON report plus a text rendering next to it."""
    json_path = FsPath(json_path)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report.to_json(), handle, indent=2)
        handle.write("\n")
    text_path = json_path.with_suffix(".txt")
    with open(text_path, "w", encoding="utf-8") as handle:
        handle.write(report.render() + "\n")
    return json_path, text_path
