"""Session: entry point of the engine (SparkSession analogue).

A session assigns operator identifiers, carries the
:class:`~repro.engine.config.EngineConfig` every execution inherits
(partitioning, scheduler backend, optimizer rules), and creates datasets
from in-memory items or JSONL files.
"""

from __future__ import annotations

from pathlib import Path as FsPath
from typing import Iterable

from repro.engine.config import EngineConfig
from repro.engine.dataset import Dataset
from repro.engine.plan import ReadNode
from repro.engine.storage import InMemorySource, JsonlSource, Source

__all__ = ["Session"]


class Session:
    """Creates datasets and tracks operator identifiers for one program."""

    def __init__(
        self,
        num_partitions: int | None = None,
        *,
        config: EngineConfig | None = None,
    ):
        base = config if config is not None else EngineConfig.from_env()
        #: The engine configuration every execution of this session inherits;
        #: an explicit ``num_partitions`` overrides the config's count.
        self.config = base.with_partitions(num_partitions)
        self._oid_counter = 0

    @property
    def num_partitions(self) -> int:
        return self.config.num_partitions

    def next_oid(self) -> int:
        """Return a fresh operator identifier (unique within the session)."""
        self._oid_counter += 1
        return self._oid_counter

    def from_source(self, source: Source) -> Dataset:
        """Create a dataset reading from an arbitrary source."""
        node = ReadNode(self.next_oid(), source.name, source.loader())
        return Dataset(self, node)

    def create_dataset(self, items: Iterable[object], name: str = "inline") -> Dataset:
        """Create a dataset from in-memory items (dicts are coerced)."""
        return self.from_source(InMemorySource(name, items))

    def read_jsonl(self, path: FsPath | str, name: str | None = None) -> Dataset:
        """Create a dataset reading a JSON-lines file (re-read per execution)."""
        return self.from_source(JsonlSource(path, name))

    def __repr__(self) -> str:
        return f"Session(num_partitions={self.num_partitions})"
