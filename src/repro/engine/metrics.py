"""Execution instrumentation: per-operator and per-pipeline metrics.

The evaluation (Sec. 7.3.1 / 7.3.2) reports wall-clock runtime with and
without capture plus the size of the collected provenance.  The executor
fills one :class:`OperatorMetrics` per operator and aggregates them into an
:class:`ExecutionMetrics` for the run.
"""

from __future__ import annotations

import time
from typing import Iterator

__all__ = [
    "OperatorMetrics",
    "StageMetrics",
    "ExecutionMetrics",
    "SegmentCacheMetrics",
    "Stopwatch",
]


class Stopwatch:
    """Context manager measuring elapsed wall-clock seconds."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed += time.perf_counter() - self._start


class OperatorMetrics:
    """Runtime and cardinality counters of one executed operator."""

    __slots__ = ("oid", "op_type", "label", "rows_in", "rows_out", "seconds", "capture_seconds")

    def __init__(self, oid: int, op_type: str, label: str):
        self.oid = oid
        self.op_type = op_type
        self.label = label
        self.rows_in = 0
        self.rows_out = 0
        self.seconds = 0.0
        #: Share of ``seconds`` spent assembling provenance records.
        self.capture_seconds = 0.0

    def __repr__(self) -> str:
        return (
            f"OperatorMetrics({self.label!r}: {self.rows_in} -> {self.rows_out} rows, "
            f"{self.seconds * 1000:.2f} ms)"
        )


class StageMetrics:
    """Cardinality and wall-time counters of one executed physical stage.

    A fused stage realises several logical operators at once; this is the
    stage-granular accounting (rows in/out of the whole pipeline segment and
    its wall time) that complements the per-operator slots above.
    """

    __slots__ = ("index", "kind", "label", "operator_oids", "rows_in", "rows_out", "seconds")

    def __init__(self, index: int, kind: str, label: str, operator_oids: tuple[int, ...]):
        self.index = index
        self.kind = kind
        self.label = label
        #: Logical operators this stage realises (in execution order).
        self.operator_oids = operator_oids
        self.rows_in = 0
        self.rows_out = 0
        self.seconds = 0.0

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "label": self.label,
            "operators": list(self.operator_oids),
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "seconds": self.seconds,
        }

    def __repr__(self) -> str:
        return (
            f"StageMetrics(#{self.index} {self.kind}: {self.rows_in} -> {self.rows_out} rows, "
            f"{self.seconds * 1000:.2f} ms)"
        )


class SegmentCacheMetrics:
    """Hit/miss counters of a lazy provenance reader's segment cache.

    A *miss* decodes one operator segment from disk; the miss count is
    therefore exactly the number of operators a query materialised -- the
    observable that lets tests (and the Fig. 9 warehouse benchmark) assert
    that lazy backtracing touches only the operators on the backtrace path,
    not the whole run.  Source-item blocks are counted separately because
    the reader defers them past operator decoding: a source that ends up
    with empty provenance never has its items decoded.
    """

    __slots__ = ("hits", "misses", "item_hits", "item_misses", "bytes_read", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.item_hits = 0
        self.item_misses = 0
        self.bytes_read = 0
        self.evictions = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of operator lookups served from the cache."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.item_hits = 0
        self.item_misses = 0
        self.bytes_read = 0
        self.evictions = 0

    def __repr__(self) -> str:
        return (
            f"SegmentCacheMetrics(hits={self.hits}, misses={self.misses}, "
            f"items={self.item_hits}/{self.item_hits + self.item_misses}, "
            f"read={self.bytes_read}B)"
        )


class ExecutionMetrics:
    """Aggregated metrics of one pipeline execution."""

    def __init__(self) -> None:
        self._operators: dict[int, OperatorMetrics] = {}
        self._stages: list[StageMetrics] = []
        self.total_seconds = 0.0

    def operator(self, oid: int, op_type: str, label: str) -> OperatorMetrics:
        """Return (creating if needed) the metrics slot for operator *oid*."""
        metrics = self._operators.get(oid)
        if metrics is None:
            metrics = OperatorMetrics(oid, op_type, label)
            self._operators[oid] = metrics
        return metrics

    def operators(self) -> Iterator[OperatorMetrics]:
        return iter(self._operators.values())

    def add_stage(self, stage: StageMetrics) -> None:
        """Record the accounting of one executed physical stage."""
        self._stages.append(stage)

    def stages(self) -> list[StageMetrics]:
        """Per-stage accounting, in execution order."""
        return list(self._stages)

    def to_json(self) -> dict:
        """A plain-JSON view of the run's accounting (CI artifact format)."""
        return {
            "total_seconds": self.total_seconds,
            "operators": [
                {
                    "oid": op.oid,
                    "op_type": op.op_type,
                    "label": op.label,
                    "rows_in": op.rows_in,
                    "rows_out": op.rows_out,
                    "seconds": op.seconds,
                }
                for op in self._operators.values()
            ],
            "stages": [stage.to_json() for stage in self._stages],
        }

    def by_type(self) -> dict[str, float]:
        """Sum operator seconds per operator type (per-operator overhead study)."""
        summed: dict[str, float] = {}
        for metrics in self._operators.values():
            summed[metrics.op_type] = summed.get(metrics.op_type, 0.0) + metrics.seconds
        return summed

    def __repr__(self) -> str:
        return f"ExecutionMetrics({len(self._operators)} operators, {self.total_seconds:.3f} s)"
