"""Execution instrumentation: per-operator and per-pipeline metrics.

The evaluation (Sec. 7.3.1 / 7.3.2) reports wall-clock runtime with and
without capture plus the size of the collected provenance.  The executor
fills one :class:`OperatorMetrics` per operator and aggregates them into an
:class:`ExecutionMetrics` for the run.

These per-run objects are no longer islands: each exposes a ``publish``
method that folds its counters into a :mod:`repro.obs.metrics` registry
(the process-wide one by default), so stage latencies, per-partition row
skew, capture overhead, and segment-cache behaviour accumulate across runs
and are exportable as one Prometheus text page or JSON dump
(``repro stats``).
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "OperatorMetrics",
    "StageMetrics",
    "ExecutionMetrics",
    "SegmentCacheMetrics",
    "Stopwatch",
]


class Stopwatch:
    """Context manager measuring elapsed wall-clock seconds."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed += time.perf_counter() - self._start


class OperatorMetrics:
    """Runtime and cardinality counters of one executed operator."""

    __slots__ = ("oid", "op_type", "label", "rows_in", "rows_out", "seconds", "capture_seconds")

    def __init__(self, oid: int, op_type: str, label: str):
        self.oid = oid
        self.op_type = op_type
        self.label = label
        self.rows_in = 0
        self.rows_out = 0
        self.seconds = 0.0
        #: Share of ``seconds`` spent assembling provenance records.
        self.capture_seconds = 0.0

    def __repr__(self) -> str:
        return (
            f"OperatorMetrics({self.label!r}: {self.rows_in} -> {self.rows_out} rows, "
            f"{self.seconds * 1000:.2f} ms)"
        )


class StageMetrics:
    """Cardinality and wall-time counters of one executed physical stage.

    A fused stage realises several logical operators at once; this is the
    stage-granular accounting (rows in/out of the whole pipeline segment and
    its wall time) that complements the per-operator slots above.
    """

    __slots__ = (
        "index",
        "kind",
        "label",
        "operator_oids",
        "rows_in",
        "rows_out",
        "seconds",
        "partition_rows",
        "span_id",
    )

    def __init__(self, index: int, kind: str, label: str, operator_oids: tuple[int, ...]):
        self.index = index
        self.kind = kind
        self.label = label
        #: Logical operators this stage realises (in execution order).
        self.operator_oids = operator_oids
        self.rows_in = 0
        self.rows_out = 0
        self.seconds = 0.0
        #: Output rows per partition -- the skew observable of a stage.
        self.partition_rows: tuple[int, ...] = ()
        #: The stage's trace-span id when tracing was on; becomes the
        #: latency histogram's exemplar at publish time.
        self.span_id: int | None = None

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "label": self.label,
            "operators": list(self.operator_oids),
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "seconds": self.seconds,
            "partition_rows": list(self.partition_rows),
        }

    def publish(self, registry: "MetricsRegistry | None" = None) -> None:
        """Fold this stage's accounting into a metrics registry."""
        from repro.obs.metrics import ROWS_BUCKETS, get_registry

        registry = registry if registry is not None else get_registry()
        registry.histogram("repro_stage_seconds", kind=self.kind).observe(
            self.seconds, span_id=self.span_id
        )
        registry.counter("repro_stage_rows_out_total", kind=self.kind).inc(self.rows_out)
        skew = registry.histogram(
            "repro_stage_partition_rows", buckets=ROWS_BUCKETS, kind=self.kind
        )
        for rows in self.partition_rows:
            skew.observe(rows)

    def __repr__(self) -> str:
        return (
            f"StageMetrics(#{self.index} {self.kind}: {self.rows_in} -> {self.rows_out} rows, "
            f"{self.seconds * 1000:.2f} ms)"
        )


class SegmentCacheMetrics:
    """Hit/miss counters of a lazy provenance reader's segment cache.

    A *miss* decodes one operator segment from disk; the miss count is
    therefore exactly the number of operators a query materialised -- the
    observable that lets tests (and the Fig. 9 warehouse benchmark) assert
    that lazy backtracing touches only the operators on the backtrace path,
    not the whole run.  Source-item blocks are counted separately because
    the reader defers them past operator decoding: a source that ends up
    with empty provenance never has its items decoded.

    Counter updates are atomic (:meth:`add` takes an internal lock) so one
    instance can account for a store shared by concurrent readers -- the
    serving layer keeps one resident store per run and lets every request
    thread feed the same counters.
    """

    __slots__ = (
        "hits", "misses", "item_hits", "item_misses", "bytes_read", "evictions", "_lock",
    )

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.item_hits = 0
        self.item_misses = 0
        self.bytes_read = 0
        self.evictions = 0
        self._lock = threading.Lock()

    def add(
        self,
        *,
        hits: int = 0,
        misses: int = 0,
        item_hits: int = 0,
        item_misses: int = 0,
        bytes_read: int = 0,
        evictions: int = 0,
    ) -> None:
        """Atomically apply one batch of counter increments."""
        with self._lock:
            self.hits += hits
            self.misses += misses
            self.item_hits += item_hits
            self.item_misses += item_misses
            self.bytes_read += bytes_read
            self.evictions += evictions

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of operator lookups served from the cache."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def reset(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.item_hits = 0
            self.item_misses = 0
            self.bytes_read = 0
            self.evictions = 0

    def to_json(self) -> dict:
        """Machine-readable cache accounting (CLI artifacts, fig9 payload)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "item_hits": self.item_hits,
            "item_misses": self.item_misses,
            "bytes_read": self.bytes_read,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def publish(self, registry: "MetricsRegistry | None" = None) -> None:
        """Fold one query's cache accounting into a metrics registry.

        Call once per finished query (the warehouse does); the registry
        counters then accumulate over every query the process answered.
        """
        from repro.obs.metrics import get_registry

        registry = registry if registry is not None else get_registry()
        registry.counter("repro_segment_cache_hits_total").inc(self.hits)
        registry.counter("repro_segment_cache_misses_total").inc(self.misses)
        registry.counter("repro_segment_cache_item_hits_total").inc(self.item_hits)
        registry.counter("repro_segment_cache_item_misses_total").inc(self.item_misses)
        registry.counter("repro_segment_cache_bytes_read_total").inc(self.bytes_read)
        registry.counter("repro_segment_cache_evictions_total").inc(self.evictions)
        registry.gauge("repro_segment_cache_hit_rate").set(self.hit_rate)

    def __repr__(self) -> str:
        return (
            f"SegmentCacheMetrics(hits={self.hits}, misses={self.misses}, "
            f"items={self.item_hits}/{self.item_hits + self.item_misses}, "
            f"read={self.bytes_read}B)"
        )


class ExecutionMetrics:
    """Aggregated metrics of one pipeline execution."""

    def __init__(self) -> None:
        self._operators: dict[int, OperatorMetrics] = {}
        self._stages: list[StageMetrics] = []
        self.total_seconds = 0.0
        #: Scheduler backend + fault-tolerance accounting of the run.
        self.scheduler_backend = ""
        self.task_attempts = 0
        self.task_retries = 0
        self.task_timeouts = 0
        self.worker_losses = 0
        #: Partition layout of the run (``"rows"`` or ``"columnar"``) and
        #: its accounting: resident column-buffer bytes across all stage
        #: outputs, plus how many fused-stage operator applications ran as
        #: batch kernels vs fell back to row-at-a-time evaluation.
        self.layout = "rows"
        self.partition_bytes = 0
        self.kernel_ops = 0
        self.fallback_ops = 0

    def record_scheduler(self, backend: str, stats: object) -> None:
        """Adopt the scheduler's task accounting (attempts/retries/timeouts).

        *stats* is a :class:`repro.engine.scheduler.TaskStats` (typed as
        ``object`` to keep this module import-light).
        """
        self.scheduler_backend = backend
        self.task_attempts = getattr(stats, "attempts", 0)
        self.task_retries = getattr(stats, "retries", 0)
        self.task_timeouts = getattr(stats, "timeouts", 0)
        self.worker_losses = getattr(stats, "worker_losses", 0)

    def operator(self, oid: int, op_type: str, label: str) -> OperatorMetrics:
        """Return (creating if needed) the metrics slot for operator *oid*."""
        metrics = self._operators.get(oid)
        if metrics is None:
            metrics = OperatorMetrics(oid, op_type, label)
            self._operators[oid] = metrics
        return metrics

    def operators(self) -> Iterator[OperatorMetrics]:
        return iter(self._operators.values())

    def add_stage(self, stage: StageMetrics) -> None:
        """Record the accounting of one executed physical stage."""
        self._stages.append(stage)

    def stages(self) -> list[StageMetrics]:
        """Per-stage accounting, in execution order."""
        return list(self._stages)

    def to_json(self) -> dict:
        """A plain-JSON view of the run's accounting (CI artifact format)."""
        return {
            "total_seconds": self.total_seconds,
            "scheduler": {
                "backend": self.scheduler_backend,
                "task_attempts": self.task_attempts,
                "task_retries": self.task_retries,
                "task_timeouts": self.task_timeouts,
                "worker_losses": self.worker_losses,
            },
            "layout": {
                "name": self.layout,
                "partition_bytes": self.partition_bytes,
                "kernel_ops": self.kernel_ops,
                "fallback_ops": self.fallback_ops,
            },
            "operators": [
                {
                    "oid": op.oid,
                    "op_type": op.op_type,
                    "label": op.label,
                    "rows_in": op.rows_in,
                    "rows_out": op.rows_out,
                    "seconds": op.seconds,
                    "capture_seconds": op.capture_seconds,
                }
                for op in self._operators.values()
            ],
            "stages": [stage.to_json() for stage in self._stages],
        }

    def publish(self, registry: "MetricsRegistry | None" = None) -> None:
        """Fold the run's accounting into a metrics registry.

        The executor calls this once at the end of every execution, so the
        process-wide registry observes every run: run latency, per-operator
        latency by type, capture overhead, stage latency, and per-partition
        row skew.
        """
        from repro.obs.metrics import get_registry, set_build_info

        registry = registry if registry is not None else get_registry()
        set_build_info(registry, layout=self.layout)
        registry.counter("repro_runs_total").inc()
        registry.histogram("repro_run_seconds").observe(self.total_seconds)
        if self.scheduler_backend:
            backend = self.scheduler_backend
            registry.counter("repro_task_attempts_total", scheduler=backend).inc(
                self.task_attempts
            )
            registry.counter("repro_task_retries_total", scheduler=backend).inc(
                self.task_retries
            )
            registry.counter("repro_task_timeouts_total", scheduler=backend).inc(
                self.task_timeouts
            )
            registry.counter("repro_worker_losses_total", scheduler=backend).inc(
                self.worker_losses
            )
        if self.layout == "columnar":
            registry.gauge("repro_partition_bytes").set(self.partition_bytes)
            registry.counter("repro_batch_kernel_ops_total", mode="kernel").inc(
                self.kernel_ops
            )
            registry.counter("repro_batch_kernel_ops_total", mode="fallback").inc(
                self.fallback_ops
            )
        for op in self._operators.values():
            registry.histogram("repro_operator_seconds", op_type=op.op_type).observe(
                op.seconds
            )
            registry.counter("repro_operator_rows_out_total", op_type=op.op_type).inc(
                op.rows_out
            )
            if op.capture_seconds:
                registry.counter("repro_capture_seconds_total").inc(op.capture_seconds)
        for stage in self._stages:
            stage.publish(registry)

    def by_type(self) -> dict[str, float]:
        """Sum operator seconds per operator type (per-operator overhead study)."""
        summed: dict[str, float] = {}
        for metrics in self._operators.values():
            summed[metrics.op_type] = summed.get(metrics.op_type, 0.0) + metrics.seconds
        return summed

    def __repr__(self) -> str:
        return f"ExecutionMetrics({len(self._operators)} operators, {self.total_seconds:.3f} s)"
