"""Deterministic fault injection for the scheduler's fault-tolerance layer.

Chaos testing the retry/timeout machinery needs failures that are (a) cheap
to switch on for a whole run (``REPRO_FAULTS`` or ``EngineConfig(faults=...)``)
and (b) **deterministic**: the equivalence property tests assert that a run
with injected faults produces bit-identical results, provenance stores, and
backtrace answers across every scheduler backend, which only holds if the
same tasks fail on the same attempts regardless of execution order.

Probe selection is therefore hash-based, not ``random``-based: a task fires a
probe iff ``sha256(seed | task key | attempt) / 2**64 < probability``.  The
task key (stage index + partition + segment) is stable across backends and
repeat runs, so a fault plan is a pure function of the plan shape.

Probe modes (the spec grammar is ``mode:probability[:option=value...]``):

``flaky_once:P``
    The selected task raises :class:`~repro.errors.InjectedFault` on its
    *first* attempt only -- the canonical transient failure; one retry heals
    it, so any ``max_retries >= 1`` run must succeed with identical output.
``crash:P``
    The selected task raises on *every* attempt (selection is re-drawn per
    attempt) -- exercises retry-budget exhaustion and first-error surfacing.
``delay:P[:seconds=S]``
    The selected task sleeps ``S`` seconds (default 0.05) before running --
    exercises per-task timeouts and straggler reordering.

Options: ``seed=N`` reseeds the hash (default 0), ``seconds=S`` sets the
delay duration.  Example: ``REPRO_FAULTS=flaky_once:0.2:seed=7``.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

from repro.errors import ExecutionError, InjectedFault

__all__ = ["FaultPlan", "parse_faults"]

_MODES = ("flaky_once", "crash", "delay")

#: Default sleep of a ``delay`` probe, in seconds.
DEFAULT_DELAY_SECONDS = 0.05


def _fraction(seed: int, key: str, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) from (seed, task key, attempt)."""
    digest = hashlib.sha256(f"{seed}|{key}|{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """One parsed probe; applied inside every stage task before it runs.

    Instances are immutable and picklable, so a plan travels to process-pool
    workers inside the :class:`~repro.engine.physical.StageTask` descriptor
    and fires identically in-process and out-of-process.
    """

    mode: str
    probability: float
    seed: int = 0
    seconds: float = DEFAULT_DELAY_SECONDS

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ExecutionError(f"unknown fault mode {self.mode!r}; pick one of {_MODES}")
        if not 0.0 <= self.probability <= 1.0:
            raise ExecutionError(f"fault probability must be in [0, 1], got {self.probability}")
        if self.seconds < 0:
            raise ExecutionError(f"fault delay must be non-negative, got {self.seconds}")

    def selects(self, key: str, attempt: int) -> bool:
        """Whether the probe fires for task *key* on *attempt* (1-based)."""
        if self.probability <= 0.0:
            return False
        if self.mode == "flaky_once":
            # Selection is per task, the failure only on the first attempt.
            return attempt == 1 and _fraction(self.seed, key, 0) < self.probability
        draw_attempt = attempt if self.mode == "crash" else 0
        return _fraction(self.seed, key, draw_attempt) < self.probability

    def apply(self, key: str, attempt: int) -> None:
        """Fire the probe for task *key* on *attempt* if selected."""
        if not self.selects(key, attempt):
            return
        if self.mode == "delay":
            time.sleep(self.seconds)
            return
        raise InjectedFault(
            f"injected {self.mode} fault in task {key!r} (attempt {attempt})"
        )

    def spec(self) -> str:
        """The canonical spec string this plan round-trips through."""
        parts = [self.mode, repr(self.probability)]
        if self.seed:
            parts.append(f"seed={self.seed}")
        if self.mode == "delay" and self.seconds != DEFAULT_DELAY_SECONDS:
            parts.append(f"seconds={self.seconds}")
        return ":".join(parts)


def parse_faults(spec: str | None) -> FaultPlan | None:
    """Parse a ``REPRO_FAULTS`` spec string into a plan (``None`` if empty)."""
    if not spec or not spec.strip():
        return None
    fields = [field.strip() for field in spec.strip().split(":")]
    if len(fields) < 2:
        raise ExecutionError(
            f"malformed fault spec {spec!r}; expected mode:probability[:option=value]"
        )
    mode = fields[0]
    try:
        probability = float(fields[1])
    except ValueError as error:
        raise ExecutionError(f"malformed fault probability in {spec!r}: {error}") from None
    options: dict[str, float | int] = {}
    for field in fields[2:]:
        name, _, raw = field.partition("=")
        if name not in ("seed", "seconds"):
            raise ExecutionError(f"unknown fault option {name!r} in spec {spec!r}")
        try:
            options[name] = int(raw) if name == "seed" else float(raw)
        except ValueError as error:
            raise ExecutionError(f"malformed fault option in {spec!r}: {error}") from None
    return FaultPlan(mode=mode, probability=probability, **options)  # type: ignore[arg-type]
