"""Partitioning utilities for the simulated distributed execution.

The engine processes every dataset as a list of partitions, mirroring how a
DISC system distributes bags across workers.  Narrow operators (filter,
select, map, flatten) run partition-by-partition; joins and aggregations
repartition their inputs by a hash of the key, simulating a shuffle.  This
keeps the provenance capture and the tree-pattern matcher exercising the
same per-partition code paths as a distributed deployment, which is what the
paper's scalability argument rests on.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence, TypeVar

Row = TypeVar("Row")

__all__ = ["partition_rows", "hash_partition", "concat_partitions"]


def partition_rows(rows: Sequence[Row], num_partitions: int) -> list[list[Row]]:
    """Split *rows* into ``num_partitions`` contiguous chunks.

    Contiguous (range) partitioning keeps the input order reconstructable by
    concatenation, which makes executions deterministic and therefore
    testable; DISC systems give the same guarantee for file splits.
    """
    if num_partitions < 1:
        raise ValueError(f"need at least one partition, got {num_partitions}")
    total = len(rows)
    base, remainder = divmod(total, num_partitions)
    partitions: list[list[Row]] = []
    start = 0
    for index in range(num_partitions):
        size = base + (1 if index < remainder else 0)
        partitions.append(list(rows[start:start + size]))
        start += size
    return partitions


def hash_partition(
    rows: Iterable[Row],
    num_partitions: int,
    key_of: Callable[[Row], Any],
) -> list[list[Row]]:
    """Repartition *rows* by ``hash(key) % num_partitions`` (a shuffle)."""
    partitions: list[list[Row]] = [[] for _ in range(num_partitions)]
    for row in rows:
        partitions[hash(key_of(row)) % num_partitions].append(row)
    return partitions


def concat_partitions(partitions: Iterable[Iterable[Row]]) -> list[Row]:
    """Concatenate partitions back into one list (a collect)."""
    collected: list[Row] = []
    for partition in partitions:
        collected.extend(partition)
    return collected
