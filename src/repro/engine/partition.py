"""Partitioning utilities for the simulated distributed execution.

The engine processes every dataset as a list of partitions, mirroring how a
DISC system distributes bags across workers.  Narrow operators (filter,
select, map, flatten) run partition-by-partition; joins and aggregations
repartition their inputs by a hash of the key, simulating a shuffle.  This
keeps the provenance capture and the tree-pattern matcher exercising the
same per-partition code paths as a distributed deployment, which is what the
paper's scalability argument rests on.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.nested.values import Bag, DataItem, NestedSet

Row = TypeVar("Row")

__all__ = ["partition_rows", "hash_partition", "stable_hash", "concat_partitions"]


def partition_rows(rows: Sequence[Row], num_partitions: int) -> list[list[Row]]:
    """Split *rows* into ``num_partitions`` contiguous chunks.

    Contiguous (range) partitioning keeps the input order reconstructable by
    concatenation, which makes executions deterministic and therefore
    testable; DISC systems give the same guarantee for file splits.
    """
    if num_partitions < 1:
        raise ValueError(f"need at least one partition, got {num_partitions}")
    total = len(rows)
    base, remainder = divmod(total, num_partitions)
    partitions: list[list[Row]] = []
    start = 0
    for index in range(num_partitions):
        size = base + (1 if index < remainder else 0)
        partitions.append(list(rows[start:start + size]))
        start += size
    return partitions


def _feed(crc: int, value: Any) -> int:
    """Fold one model value into a CRC, canonically.

    Python equality crosses numeric types (``1 == True == 1.0``) and the
    engine groups/joins on that equality, so equal keys must land in the same
    bucket: bools and integral floats encode as their integer value.  Every
    encoding is prefixed with a kind byte so distinct values never collide
    structurally (``"1"`` vs ``1``, ``()`` vs ``("",)``).
    """
    if value is None:
        return zlib.crc32(b"N", crc)
    if isinstance(value, float):
        if value.is_integer():
            value = int(value)  # 1.0 buckets with 1 and True
        else:
            return zlib.crc32(b"f" + struct.pack("<d", value), crc)
    if isinstance(value, int):  # includes bool
        encoded = str(int(value)).encode("ascii")  # arbitrary precision
        return zlib.crc32(b"i" + encoded, crc)
    if isinstance(value, str):
        return zlib.crc32(b"s" + value.encode("utf-8"), crc)
    if isinstance(value, DataItem):
        crc = zlib.crc32(b"d", crc)
        for name, attr_value in value.pairs():
            crc = zlib.crc32(name.encode("utf-8") + b"\x00", crc)
            crc = _feed(crc, attr_value)
        return zlib.crc32(b"\x01", crc)
    if isinstance(value, (Bag, NestedSet)):
        crc = zlib.crc32(b"B" if isinstance(value, Bag) else b"S", crc)
        for element in value.items():
            crc = _feed(crc, element)
        return zlib.crc32(b"\x01", crc)
    if isinstance(value, tuple):
        crc = zlib.crc32(b"t", crc)
        for element in value:
            crc = _feed(crc, element)
        return zlib.crc32(b"\x01", crc)
    # Out-of-model fallback: repr is stable for the values the engine sees.
    return zlib.crc32(b"o" + repr(value).encode("utf-8"), crc)


def stable_hash(key: Any) -> int:
    """A process-independent hash of a shuffle key (CRC-32 over a canonical
    encoding).  Unlike builtin ``hash``, the value does not depend on
    ``PYTHONHASHSEED``, so every worker process -- and every re-execution --
    assigns a row to the same partition."""
    return _feed(0, key)


def hash_partition(
    rows: Iterable[Row],
    num_partitions: int,
    key_of: Callable[[Row], Any],
) -> list[list[Row]]:
    """Repartition *rows* by ``stable_hash(key) % num_partitions`` (a shuffle).

    The shuffle previously keyed on builtin ``hash()``, which is randomized
    per interpreter for strings: two pool workers (or two recorded runs)
    could disagree on a row's bucket.  :func:`stable_hash` pins the
    assignment across processes.
    """
    partitions: list[list[Row]] = [[] for _ in range(num_partitions)]
    for row in rows:
        partitions[stable_hash(key_of(row)) % num_partitions].append(row)
    return partitions


def concat_partitions(partitions: Iterable[Iterable[Row]]) -> list[Row]:
    """Concatenate partitions back into one list (a collect)."""
    collected: list[Row] = []
    for partition in partitions:
        collected.extend(partition)
    return collected
