"""Pluggable schedulers: how independent partition tasks are executed.

A fused stage compiles to one picklable :class:`~repro.engine.physical.
StageTask` per input partition; the tasks are independent (each reads only
its own partition), so a scheduler may run them in any order or concurrently.

Three backends share one **fault-tolerance layer** implemented in the
:class:`Scheduler` base class:

* retries: failures whose ``retryable`` attribute is true (the
  :class:`~repro.errors.TransientError` branch -- timeouts, lost workers,
  injected faults) are retried up to ``RetryPolicy.max_retries`` times with
  a jitter-free exponential backoff, so the retry schedule is deterministic
  and unit-testable;
* timeouts: with ``RetryPolicy.task_timeout`` set, a task that exceeds its
  wall-clock budget fails with :class:`~repro.errors.TaskTimeoutError`
  (transient, hence retried).  Pool backends enforce the budget on the
  ``Future``; the serial backend checks post-hoc (it cannot preempt);
* determinism: result order is always task-submission order, every pending
  task finishes its protocol before the batch resolves, and when tasks fail
  terminally the **first submission-order task's original error** (its first
  recorded failure, not the last retry's) is raised -- identical across all
  backends, so the engine's output and error surface are
  scheduler-independent.

Tasks must be **pure** for retries to be sound: a re-executed task must
recompute the identical result.  ``StageTask`` guarantees this by carrying
its full input; the equivalence property tests pin it under injected faults.

Per-run accounting (attempts, retries, timeouts, worker losses) accumulates
in :class:`TaskStats`; the executor folds it into the run's metrics and the
process-wide registry (``repro stats``).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor as PoolExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.engine.config import EngineConfig
from repro.errors import ExecutionError, TaskTimeoutError, WorkerLostError

__all__ = [
    "Scheduler",
    "SerialScheduler",
    "ThreadPoolScheduler",
    "ProcessPoolScheduler",
    "RetryPolicy",
    "TaskStats",
    "backoff_schedule",
    "make_scheduler",
]

Task = Callable[[], Any]

#: One task's outcome inside a batch: ``(value, None)`` or ``(None, error)``.
_Outcome = tuple[Any, BaseException | None]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout knobs of the fault-tolerance layer.

    The backoff is **jitter-free** on purpose: the delay before retrying
    attempt ``n`` is exactly ``min(backoff * factor**(n-1), max_delay)``
    seconds, so chaos tests and the determinism guarantee never depend on a
    random source.  (Partition counts are small; the thundering-herd case
    jitter exists for does not arise here.)
    """

    #: Retries *after* the first attempt; 0 disables retrying.
    max_retries: int = 2
    #: Base delay in seconds before the first retry.
    backoff: float = 0.05
    #: Multiplier applied per subsequent retry.
    factor: float = 2.0
    #: Upper bound on a single delay.
    max_delay: float = 2.0
    #: Per-task wall-clock budget in seconds; ``None`` disables timeouts.
    task_timeout: float | None = None

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def delay(self, attempt: int) -> float:
        """Seconds to sleep after failed *attempt* (1-based) before retrying."""
        if self.backoff <= 0:
            return 0.0
        return min(self.backoff * self.factor ** (attempt - 1), self.max_delay)


def backoff_schedule(policy: RetryPolicy) -> list[float]:
    """The full deterministic delay sequence of *policy*, one per retry."""
    return [policy.delay(attempt) for attempt in range(1, policy.max_attempts)]


class TaskStats:
    """Scheduler-lifetime task accounting (summed over every ``run`` call)."""

    __slots__ = ("attempts", "retries", "timeouts", "worker_losses")

    def __init__(self) -> None:
        self.attempts = 0
        self.retries = 0
        self.timeouts = 0
        self.worker_losses = 0

    def to_json(self) -> dict[str, int]:
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_losses": self.worker_losses,
        }

    def __repr__(self) -> str:
        return (
            f"TaskStats(attempts={self.attempts}, retries={self.retries}, "
            f"timeouts={self.timeouts}, worker_losses={self.worker_losses})"
        )


_NO_RESULT = object()


def _set_attempt(task: Task, attempt: int) -> None:
    """Stamp the attempt number on tasks that track it (``StageTask`` does)."""
    try:
        task.attempt = attempt  # type: ignore[attr-defined]
    except AttributeError:
        pass


class Scheduler:
    """Executes batches of independent tasks; results in submission order.

    Subclasses implement :meth:`_run_batch` (one attempt over a task list);
    the shared :meth:`run` drives the retry protocol around it.
    """

    name = "abstract"

    def __init__(self, *, policy: RetryPolicy | None = None):
        self.policy = policy if policy is not None else RetryPolicy()
        self.stats = TaskStats()

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        """Run *tasks* with retries; returns results in submission order.

        Raises the first submission-order task's original error once every
        task has either succeeded or exhausted its retry budget.
        """
        policy = self.policy
        count = len(tasks)
        results: list[Any] = [_NO_RESULT] * count
        errors: list[BaseException | None] = [None] * count
        pending = list(range(count))
        for attempt in range(1, policy.max_attempts + 1):
            for index in pending:
                _set_attempt(tasks[index], attempt)
            outcomes = self._run_batch([tasks[index] for index in pending])
            self.stats.attempts += len(pending)
            retrying: list[int] = []
            for index, (value, error) in zip(pending, outcomes):
                if error is None:
                    results[index] = value
                    continue
                if isinstance(error, TaskTimeoutError):
                    self.stats.timeouts += 1
                elif isinstance(error, WorkerLostError):
                    self.stats.worker_losses += 1
                if errors[index] is None:
                    errors[index] = error  # keep the task's *original* failure
                if getattr(error, "retryable", False) and attempt < policy.max_attempts:
                    retrying.append(index)
            if not retrying:
                break
            self.stats.retries += len(retrying)
            delay = policy.delay(attempt)
            if delay:
                time.sleep(delay)
            pending = retrying
        for index in range(count):
            if results[index] is _NO_RESULT:
                error = errors[index]
                assert error is not None
                raise error
        return results

    def _run_batch(self, tasks: Sequence[Task]) -> list[_Outcome]:
        """Run one attempt of *tasks*; one outcome per task, never raises."""
        raise NotImplementedError

    def close(self) -> None:
        """Release scheduler resources (idempotent)."""

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialScheduler(Scheduler):
    """Runs tasks one after another on the calling thread (the seed path).

    Timeouts are detected post-hoc (a single thread cannot preempt a running
    task): the task's result is discarded and the attempt reported as a
    :class:`TaskTimeoutError`, keeping the error surface identical to the
    pool backends.
    """

    name = "serial"

    def _run_batch(self, tasks: Sequence[Task]) -> list[_Outcome]:
        timeout = self.policy.task_timeout
        outcomes: list[_Outcome] = []
        for task in tasks:
            started = time.perf_counter()
            try:
                value = task()
            except BaseException as exc:
                outcomes.append((None, exc))
                continue
            if timeout is not None and time.perf_counter() - started > timeout:
                outcomes.append(
                    (None, TaskTimeoutError(f"task exceeded {timeout}s budget"))
                )
            else:
                outcomes.append((value, None))
        return outcomes


class _PoolScheduler(Scheduler):
    """Shared future-driving logic of the thread- and process-pool backends."""

    def __init__(self, max_workers: int | None = None, *, policy: RetryPolicy | None = None):
        super().__init__(policy=policy)
        self._max_workers = max_workers
        self._pool: PoolExecutor | None = self._new_pool()

    def _new_pool(self) -> PoolExecutor:
        raise NotImplementedError

    def _run_batch(self, tasks: Sequence[Task]) -> list[_Outcome]:
        if self._pool is None:
            raise ExecutionError("scheduler already closed")
        timeout = self.policy.task_timeout
        try:
            futures: list[Future[Any]] = [self._pool.submit(task) for task in tasks]
        except BrokenExecutor as exc:
            # The pool broke between batches (e.g. workers OOM-killed while
            # idle): every task of this attempt is lost but retryable.
            self._rebuild_pool()
            return [
                (None, WorkerLostError(f"executor broken at submit: {exc}"))
                for _ in tasks
            ]
        outcomes: list[_Outcome] = []
        broken = False
        for future in futures:
            try:
                outcomes.append((future.result(timeout), None))
            except FutureTimeoutError:
                future.cancel()
                outcomes.append(
                    (None, TaskTimeoutError(f"task exceeded {timeout}s budget"))
                )
            except BrokenExecutor as exc:
                broken = True
                outcomes.append(
                    (None, WorkerLostError(f"worker died mid-task: {exc}"))
                )
            except BaseException as exc:
                outcomes.append((None, exc))
        if broken:
            # A broken pool rejects all further submissions; rebuild it so
            # the retry attempts (and later stages) have live workers.
            self._rebuild_pool()
        return outcomes

    def _rebuild_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = self._new_pool()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadPoolScheduler(_PoolScheduler):
    """Runs partition tasks concurrently on a shared thread pool.

    Python threads still serialise CPU-bound bytecode, but the engine's
    per-partition work releases the GIL during I/O and benefits on
    free-threaded builds; more importantly the backend proves the fused
    stages are safe to execute concurrently (the equivalence property tests
    run the whole suite through this scheduler).
    """

    name = "threads"

    def _new_pool(self) -> PoolExecutor:
        workers = self._max_workers or min(32, (os.cpu_count() or 2))
        return ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-stage")


class ProcessPoolScheduler(_PoolScheduler):
    """Runs pickled stage tasks on a process pool (true CPU parallelism).

    Structural-provenance capture is CPU-bound pure-Python work -- exactly
    what the GIL serialises -- so this is the backend that scales capture
    with cores.  It requires tasks to be picklable: ``StageTask`` descriptors
    qualify by construction; plans containing unpicklable user functions
    (lambda UDFs) fail the submission with the raw pickling error, which is
    deliberately *not* transient.  A worker death surfaces as
    :class:`~repro.errors.WorkerLostError` (transient) and the pool is
    rebuilt before the retry attempt.
    """

    name = "processes"

    def _new_pool(self) -> PoolExecutor:
        workers = self._max_workers or min(8, (os.cpu_count() or 2))
        return ProcessPoolExecutor(max_workers=workers)


def make_scheduler(config: EngineConfig) -> Scheduler:
    """Instantiate the scheduler backend (and retry policy) of *config*."""
    policy = RetryPolicy(
        max_retries=config.max_retries,
        backoff=config.retry_backoff,
        task_timeout=config.task_timeout,
    )
    if config.scheduler == "threads":
        return ThreadPoolScheduler(config.max_workers, policy=policy)
    if config.scheduler == "processes":
        return ProcessPoolScheduler(config.max_workers, policy=policy)
    return SerialScheduler(policy=policy)
