"""Pluggable schedulers: how independent partition tasks are executed.

A fused stage produces one closed-over task per input partition; the tasks
are independent (they only read their own partition), so a scheduler may run
them in any order or concurrently.  Result order is always task-submission
order, and when several tasks fail the *first* task's error (in submission
order) is raised -- so the serial and thread-pool backends surface identical
errors and the engine's output is scheduler-independent.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.engine.config import EngineConfig
from repro.errors import ExecutionError

__all__ = ["Scheduler", "SerialScheduler", "ThreadPoolScheduler", "make_scheduler"]

Task = Callable[[], Any]


class Scheduler:
    """Executes a batch of independent tasks; results in submission order."""

    name = "abstract"

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        raise NotImplementedError

    def close(self) -> None:
        """Release scheduler resources (idempotent)."""

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialScheduler(Scheduler):
    """Runs tasks one after another on the calling thread (the seed path)."""

    name = "serial"

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        return [task() for task in tasks]


class ThreadPoolScheduler(Scheduler):
    """Runs partition tasks concurrently on a shared thread pool.

    Python threads still serialise CPU-bound bytecode, but the engine's
    per-partition work releases the GIL during I/O and benefits on
    free-threaded builds; more importantly the backend proves the fused
    stages are safe to execute concurrently (the equivalence property tests
    run the whole suite through this scheduler).
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None):
        workers = max_workers or min(32, (os.cpu_count() or 2))
        self._pool: ThreadPoolExecutor | None = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-stage"
        )

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        if self._pool is None:
            raise ExecutionError("scheduler already closed")
        futures: list[Future[Any]] = [self._pool.submit(task) for task in tasks]
        results: list[Any] = []
        first_error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # surface the first error in task order
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_scheduler(config: EngineConfig) -> Scheduler:
    """Instantiate the scheduler backend selected by *config*."""
    if config.scheduler == "threads":
        return ThreadPoolScheduler(config.max_workers)
    return SerialScheduler()
