"""Capture hooks: pluggable per-operator observers of an execution.

The seed executor hard-wired provenance capture (``capture=True``) and the
Titian-style lineage baseline (``lineage_only=True``) into every operator
handler.  The physical-plan engine instead *emits* capture events -- one per
registered source and per executed logical operator, plus one per physical
stage -- and any number of :class:`CaptureHook` instances consume them:

* :class:`StructuralCaptureHook` -- Pebble's structural capture (Sec. 5.1):
  full accessed paths ``A``, manipulation pairs ``M``, id associations.
* :class:`LineageCaptureHook` -- the Titian baseline: id associations only,
  ``A`` and ``M`` blanked (Sec. 7.3.4 comparison).
* :class:`MetricsHook` -- wraps an :class:`ExecutionMetrics`; the stage and
  operator accounting the bench harness consumes.

Two class attributes tell the engine what a hook needs: ``needs_ids`` forces
the id-assignment phase (rows carry provenance ids), and ``plan_fidelity``
pins the executed plan to the logical plan operator-for-operator, disabling
rewrites that change the captured associations (e.g. filter pushdown).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.operator_provenance import (
    Associations,
    InputRef,
    OperatorProvenance,
    UNDEFINED,
)
from repro.core.paths import Path
from repro.core.store import ProvenanceStore
from repro.engine.metrics import ExecutionMetrics, StageMetrics
from repro.nested.schema import Schema
from repro.nested.values import DataItem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.plan import PlanNode, ReadNode

__all__ = [
    "CaptureHook",
    "StructuralCaptureHook",
    "LineageCaptureHook",
    "MetricsHook",
    "hooks_for",
    "provenance_store",
]

#: ``(predecessor oid, accessed paths or UNDEFINED, input schema)`` -- the
#: raw material of an :class:`InputRef`; each hook decides what to keep.
InputSpec = tuple[int, object, Schema]


class CaptureHook:
    """Base class: every event is a no-op; subclasses override what they need."""

    #: Hook requires per-row provenance ids (the id-assignment phase runs).
    needs_ids = False
    #: Hook requires the executed plan to match the logical plan; disables
    #: result-preserving rewrites that change the captured associations.
    plan_fidelity = False
    #: The provenance store this hook fills, if any (surfaced on the
    #: :class:`~repro.engine.executor.ExecutionResult`).
    store: ProvenanceStore | None = None

    def on_source(self, node: "ReadNode", items_by_id: dict[int, DataItem]) -> None:
        """A read operator registered its items (capture runs only)."""

    def on_operator(
        self,
        node: "PlanNode",
        inputs: Sequence[InputSpec],
        manipulations: object,
        associations: Associations,
    ) -> None:
        """A logical operator finished; *manipulations* may be UNDEFINED."""

    def on_stage(self, stage: StageMetrics) -> None:
        """A physical stage finished executing."""


class StructuralCaptureHook(CaptureHook):
    """Pebble's structural provenance capture: the full 5-tuple per operator."""

    needs_ids = True
    plan_fidelity = True

    def __init__(self, store: ProvenanceStore | None = None):
        self.store = store if store is not None else ProvenanceStore()

    def _input_ref(self, spec: InputSpec) -> InputRef:
        predecessor, accessed, schema = spec
        return InputRef(predecessor, accessed, schema=schema)

    def on_source(self, node: "ReadNode", items_by_id: dict[int, DataItem]) -> None:
        assert self.store is not None
        self.store.register_source_items(node.oid, node.name, items_by_id)

    def on_operator(
        self,
        node: "PlanNode",
        inputs: Sequence[InputSpec],
        manipulations: object,
        associations: Associations,
    ) -> None:
        assert self.store is not None
        refs = tuple(self._input_ref(spec) for spec in inputs)
        self.store.register(
            OperatorProvenance(
                node.oid, node.op_type, refs, manipulations, associations, node.label()
            )
        )


class LineageCaptureHook(StructuralCaptureHook):
    """Titian-style baseline: id associations only, no structural paths.

    Mirrors the seed's ``lineage_only`` mode: accessed paths and manipulation
    pairs are blanked at registration time, so backtracing over the resulting
    store degrades to plain lineage.
    """

    def _input_ref(self, spec: InputSpec) -> InputRef:
        predecessor, _accessed, schema = spec
        return InputRef(predecessor, frozenset(), schema=schema)

    def on_operator(
        self,
        node: "PlanNode",
        inputs: Sequence[InputSpec],
        manipulations: object,
        associations: Associations,
    ) -> None:
        blanked: tuple[tuple[Path, Path], ...] = ()
        super().on_operator(node, inputs, blanked, associations)


class MetricsHook(CaptureHook):
    """Collects per-stage accounting into an :class:`ExecutionMetrics`.

    Needs neither ids nor plan fidelity: metrics observe whatever plan the
    optimizer produced.  The engine writes operator-level counters into the
    wrapped metrics object directly; this hook receives the stage events.
    """

    def __init__(self, metrics: ExecutionMetrics | None = None):
        self.metrics = metrics if metrics is not None else ExecutionMetrics()

    def on_stage(self, stage: StageMetrics) -> None:
        self.metrics.add_stage(stage)


def hooks_for(capture: bool, lineage_only: bool) -> list[CaptureHook]:
    """Translate the legacy ``capture``/``lineage_only`` flags into hooks."""
    hooks: list[CaptureHook] = []
    if capture:
        hooks.append(LineageCaptureHook() if lineage_only else StructuralCaptureHook())
    return hooks


def capture_spec(hooks: Iterable[CaptureHook]) -> bool:
    """Distil the hook set into the capture flag shipped inside stage tasks.

    Hooks themselves stay driver-side (they hold stores, metrics, and the
    id-assignment state); the only hook-derived state a partition task needs
    is whether any hook requires per-row provenance ids -- i.e. whether the
    operators must record trace entries for the serial finalisation pass.
    The flag is plain data, so it travels inside pickled ``StageTask``s.
    """
    return any(hook.needs_ids for hook in hooks)


def provenance_store(hooks: Iterable[CaptureHook]) -> ProvenanceStore | None:
    """Return the first store produced by *hooks*, or ``None``."""
    for hook in hooks:
        if hook.store is not None:
            return hook.store
    return None
