"""Column expressions with accessed-path tracking.

The provenance capture rules (paper Tab. 5) need to know, per operator, which
schema-level paths a predicate or projection *accesses* (the set ``A``) and
which input paths a projection copies to which output paths (the mapping
``M``).  Rather than parsing user code, the engine exposes a small expression
language -- in the spirit of SparkSQL's ``Column`` -- whose every node can
report its accessed paths:

>>> expr = (col("retweet_count") == 0) & col("user.id_str").is_not_null()
>>> sorted(str(p) for p in expr.accessed_paths())
['retweet_count', 'user.id_str']

Projections additionally report *manipulation pairs* ``(input path, output
path)``: a plain column projection copies a subtree, a ``struct`` constructor
nests its fields under a new attribute.  Computed expressions (comparisons,
arithmetic) derive new values; following the spirit of the select rule we map
each accessed path to the output attribute so backtracing can still reach the
inputs, and mark the expression as derived.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ExpressionError
from repro.core.paths import Path, parse_path
from repro.nested.values import Bag, DataItem, NestedSet

__all__ = [
    "Expression",
    "ColumnExpr",
    "LiteralExpr",
    "UnaryExpr",
    "BinaryExpr",
    "FunctionExpr",
    "StructExpr",
    "AliasedExpr",
    "AggregateExpr",
    "col",
    "lit",
    "struct_",
    "coalesce",
    "count",
    "sum_",
    "min_",
    "max_",
    "avg",
    "collect_list",
    "collect_set",
    "as_expression",
    "as_operand",
]


# -- named operand functions --------------------------------------------------
#
# Expression nodes are shipped to process-pool workers inside pickled
# ``StageTask`` descriptors; module-level functions pickle by reference while
# lambdas do not, so every derived-expression semantic lives here by name.


def _logical_and(a: Any, b: Any) -> bool:
    return bool(a) and bool(b)


def _logical_or(a: Any, b: Any) -> bool:
    return bool(a) or bool(b)


def _logical_not(a: Any) -> bool:
    return not bool(a)


def _is_null(a: Any) -> bool:
    return a is None


def _is_not_null(a: Any) -> bool:
    return a is not None


def _contains(a: Any, b: Any) -> bool:
    return b in a if a is not None else False


def _startswith(a: Any, b: Any) -> bool:
    return a.startswith(b) if isinstance(a, str) else False


def _isin(a: Any, b: Any) -> bool:
    return a in b


def _collection_size(a: Any) -> int:
    return 0 if a is None else len(a)


def _lowercase(a: Any) -> Any:
    return a.lower() if isinstance(a, str) else a


def _first_non_null(*values: Any) -> Any:
    for value in values:
        if value is not None:
            return value
    return None


def as_expression(value: Any) -> "Expression":
    """Coerce *value* into an expression.

    Strings become column references (``"user.id_str"``), expressions pass
    through, and everything else becomes a literal.
    """
    if isinstance(value, Expression):
        return value
    if isinstance(value, str):
        return ColumnExpr(parse_path(value))
    return LiteralExpr(value)


def as_operand(value: Any) -> "Expression":
    """Coerce an *operand* of a comparison or function into an expression.

    Unlike :func:`as_expression`, plain strings become **literals** here:
    ``col("text") == "good"`` compares against the constant ``"good"``,
    matching SparkSQL's Column semantics.  Pass ``col(...)`` explicitly to
    compare two columns.
    """
    if isinstance(value, Expression):
        return value
    return LiteralExpr(value)


class Expression:
    """Base class of all scalar expressions."""

    def evaluate(self, item: DataItem) -> Any:
        """Evaluate the expression against one data item."""
        raise NotImplementedError

    def accessed_paths(self) -> set[Path]:
        """Return the schema-level paths this expression reads."""
        raise NotImplementedError

    def output_name(self) -> str:
        """Return the default output attribute name when selected."""
        raise ExpressionError(f"expression {self} needs an alias to be selected")

    def is_projection(self) -> bool:
        """Return ``True`` if the expression copies a subtree verbatim."""
        return False

    def manipulation_pairs(self, out: Path) -> list[tuple[Path, Path]]:
        """Return ``(input path, output path)`` pairs when written to *out*."""
        return [(path, out) for path in sorted(self.accessed_paths(), key=str)]

    def alias(self, name: str) -> "AliasedExpr":
        """Name the expression's output attribute."""
        return AliasedExpr(self, name)

    # -- operator sugar ----------------------------------------------------

    def __eq__(self, other: Any) -> "BinaryExpr":  # type: ignore[override]
        return BinaryExpr("==", self, as_operand(other), operator.eq)

    def __ne__(self, other: Any) -> "BinaryExpr":  # type: ignore[override]
        return BinaryExpr("!=", self, as_operand(other), operator.ne)

    def __lt__(self, other: Any) -> "BinaryExpr":
        return BinaryExpr("<", self, as_operand(other), operator.lt)

    def __le__(self, other: Any) -> "BinaryExpr":
        return BinaryExpr("<=", self, as_operand(other), operator.le)

    def __gt__(self, other: Any) -> "BinaryExpr":
        return BinaryExpr(">", self, as_operand(other), operator.gt)

    def __ge__(self, other: Any) -> "BinaryExpr":
        return BinaryExpr(">=", self, as_operand(other), operator.ge)

    def __add__(self, other: Any) -> "BinaryExpr":
        return BinaryExpr("+", self, as_operand(other), operator.add)

    def __sub__(self, other: Any) -> "BinaryExpr":
        return BinaryExpr("-", self, as_operand(other), operator.sub)

    def __mul__(self, other: Any) -> "BinaryExpr":
        return BinaryExpr("*", self, as_operand(other), operator.mul)

    def __truediv__(self, other: Any) -> "BinaryExpr":
        return BinaryExpr("/", self, as_operand(other), operator.truediv)

    def __and__(self, other: Any) -> "BinaryExpr":
        return BinaryExpr("and", self, as_operand(other), _logical_and)

    def __or__(self, other: Any) -> "BinaryExpr":
        return BinaryExpr("or", self, as_operand(other), _logical_or)

    def __invert__(self) -> "UnaryExpr":
        return UnaryExpr("not", self, _logical_not)

    def __hash__(self) -> int:  # expressions are identity-hashed
        return id(self)

    # -- convenience predicates ---------------------------------------------

    def is_null(self) -> "UnaryExpr":
        return UnaryExpr("is_null", self, _is_null)

    def is_not_null(self) -> "UnaryExpr":
        return UnaryExpr("is_not_null", self, _is_not_null)

    def contains(self, needle: Any) -> "BinaryExpr":
        return BinaryExpr("contains", self, as_operand(needle), _contains)

    def startswith(self, prefix: Any) -> "BinaryExpr":
        return BinaryExpr("startswith", self, as_operand(prefix), _startswith)

    def isin(self, candidates: Iterable[Any]) -> "BinaryExpr":
        frozen = tuple(candidates)
        return BinaryExpr("isin", self, LiteralExpr(frozen), _isin)

    def size(self) -> "UnaryExpr":
        """Collection size; ``None`` counts as 0 (missing nested list)."""
        return UnaryExpr("size", self, _collection_size)

    def lower(self) -> "UnaryExpr":
        return UnaryExpr("lower", self, _lowercase)


class ColumnExpr(Expression):
    """A reference to an attribute path, e.g. ``col("user.id_str")``."""

    def __init__(self, path: Path):
        if path.is_empty():
            raise ExpressionError("column reference needs a non-empty path")
        self.path = path

    def evaluate(self, item: DataItem) -> Any:
        if not self.path.resolves_in(item):
            # Missing attributes evaluate to null, as in SparkSQL reads of
            # heterogeneous JSON.
            return None
        return self.path.evaluate(item)

    def accessed_paths(self) -> set[Path]:
        return {self.path.schematic()}

    def output_name(self) -> str:
        return self.path.last().name

    def is_projection(self) -> bool:
        return True

    def manipulation_pairs(self, out: Path) -> list[tuple[Path, Path]]:
        return [(self.path.schematic(), out)]

    def __str__(self) -> str:
        return f"col({self.path})"


class LiteralExpr(Expression):
    """A constant value."""

    def __init__(self, value: Any):
        self.value = value

    def evaluate(self, item: DataItem) -> Any:
        return self.value

    def accessed_paths(self) -> set[Path]:
        return set()

    def manipulation_pairs(self, out: Path) -> list[tuple[Path, Path]]:
        return []

    def __str__(self) -> str:
        return f"lit({self.value!r})"


class UnaryExpr(Expression):
    """A derived expression over one operand."""

    def __init__(self, name: str, operand: Expression, fn: Callable[[Any], Any]):
        self.name = name
        self.operand = operand
        self.fn = fn

    def evaluate(self, item: DataItem) -> Any:
        return self.fn(self.operand.evaluate(item))

    def accessed_paths(self) -> set[Path]:
        return self.operand.accessed_paths()

    def __str__(self) -> str:
        return f"{self.name}({self.operand})"


class BinaryExpr(Expression):
    """A derived expression over two operands."""

    def __init__(self, name: str, left: Expression, right: Expression, fn: Callable[[Any, Any], Any]):
        self.name = name
        self.left = left
        self.right = right
        self.fn = fn

    def evaluate(self, item: DataItem) -> Any:
        return self.fn(self.left.evaluate(item), self.right.evaluate(item))

    def accessed_paths(self) -> set[Path]:
        return self.left.accessed_paths() | self.right.accessed_paths()

    def __str__(self) -> str:
        return f"({self.left} {self.name} {self.right})"


class FunctionExpr(Expression):
    """A named n-ary function over expressions (e.g. ``coalesce``)."""

    def __init__(self, name: str, operands: Sequence[Expression], fn: Callable[..., Any]):
        self.name = name
        self.operands = tuple(operands)
        self.fn = fn

    def evaluate(self, item: DataItem) -> Any:
        return self.fn(*(operand.evaluate(item) for operand in self.operands))

    def accessed_paths(self) -> set[Path]:
        paths: set[Path] = set()
        for operand in self.operands:
            paths |= operand.accessed_paths()
        return paths

    def __str__(self) -> str:
        inner = ", ".join(str(operand) for operand in self.operands)
        return f"{self.name}({inner})"


class StructExpr(Expression):
    """Constructs a nested data item from named sub-expressions.

    Used by the running example's operator 8: ``<id_str, name> -> user``.
    Each field's manipulation pairs are nested under the struct's output
    path, so backtracing can undo the nesting field by field.
    """

    def __init__(self, fields: Sequence[tuple[str, Expression]]):
        if not fields:
            raise ExpressionError("struct expression needs at least one field")
        self.fields = tuple(fields)

    def evaluate(self, item: DataItem) -> DataItem:
        return DataItem((name, expr.evaluate(item)) for name, expr in self.fields)

    def accessed_paths(self) -> set[Path]:
        paths: set[Path] = set()
        for _, expr in self.fields:
            paths |= expr.accessed_paths()
        return paths

    def is_projection(self) -> bool:
        return all(expr.is_projection() for _, expr in self.fields)

    def manipulation_pairs(self, out: Path) -> list[tuple[Path, Path]]:
        pairs: list[tuple[Path, Path]] = []
        for name, expr in self.fields:
            pairs.extend(expr.manipulation_pairs(out.child(name)))
        return pairs

    def __str__(self) -> str:
        inner = ", ".join(f"{name}={expr}" for name, expr in self.fields)
        return f"struct({inner})"


class AliasedExpr(Expression):
    """Wraps an expression with an explicit output attribute name."""

    def __init__(self, inner: Expression, name: str):
        if not name:
            raise ExpressionError("alias needs a non-empty name")
        self.inner = inner
        self.name = name

    def evaluate(self, item: DataItem) -> Any:
        return self.inner.evaluate(item)

    def accessed_paths(self) -> set[Path]:
        return self.inner.accessed_paths()

    def output_name(self) -> str:
        return self.name

    def is_projection(self) -> bool:
        return self.inner.is_projection()

    def manipulation_pairs(self, out: Path) -> list[tuple[Path, Path]]:
        return self.inner.manipulation_pairs(out)

    def alias(self, name: str) -> "AliasedExpr":
        return AliasedExpr(self.inner, name)

    def __str__(self) -> str:
        return f"{self.inner} as {self.name}"


def col(path: str) -> ColumnExpr:
    """Reference an attribute path, e.g. ``col("user.id_str")``."""
    return ColumnExpr(parse_path(path))


def lit(value: Any) -> LiteralExpr:
    """Wrap a constant value as an expression."""
    return LiteralExpr(value)


def struct_(**fields: Any) -> StructExpr:
    """Construct a nested struct: ``struct_(id_str=col("id_str"), ...)``."""
    return StructExpr([(name, as_expression(expr)) for name, expr in fields.items()])


def coalesce(*operands: Any) -> FunctionExpr:
    """Return the first non-null operand value."""
    return FunctionExpr("coalesce", [as_expression(op) for op in operands], _first_non_null)


# ---------------------------------------------------------------------------
# Aggregate expressions (paper Sec. 5.0.3: A_c scalar vs A_B nested)
# ---------------------------------------------------------------------------


class AggregateExpr:
    """An aggregation function over a column within each group.

    ``is_nested`` distinguishes the paper's ``A_B`` aggregates (returning
    nested collections, e.g. ``collect_list``) from the scalar ``A_c``
    aggregates (``count``, ``sum``, ...).  Nested aggregates preserve the
    positional correspondence between input items and output elements, which
    the aggregation backtracing (Alg. 4) relies on.
    """

    def __init__(
        self,
        name: str,
        column: Expression,
        fn: Callable[[list[Any]], Any],
        is_nested: bool,
        output: str | None = None,
    ):
        self.name = name
        self.column = column
        self.fn = fn
        self.is_nested = is_nested
        self.output = output

    def alias(self, name: str) -> "AggregateExpr":
        """Name the aggregate's output attribute."""
        return AggregateExpr(self.name, self.column, self.fn, self.is_nested, name)

    def output_name(self) -> str:
        if self.output:
            return self.output
        return f"{self.name}_{self.column.output_name()}"

    def accessed_paths(self) -> set[Path]:
        return self.column.accessed_paths()

    def input_path(self) -> Path:
        """Return the single aggregated input path (for the M mapping)."""
        paths = sorted(self.accessed_paths(), key=str)
        if len(paths) == 1:
            return paths[0]
        # Derived aggregation input: fall back to the output name; M then
        # maps each accessed path to the aggregate output via accessed_paths.
        return Path()

    def apply(self, values: list[Any]) -> Any:
        return self.fn(values)

    def __str__(self) -> str:
        return f"{self.name}({self.column}) as {self.output_name()}"


def _numeric(values: list[Any]) -> list[Any]:
    return [value for value in values if value is not None]


def _count_all(values: list[Any]) -> int:
    return len(values)


def _count_non_null(values: list[Any]) -> int:
    return len(_numeric(values))


def _sum_non_null(values: list[Any]) -> Any:
    numeric = _numeric(values)
    return sum(numeric) if numeric else None


def _min_non_null(values: list[Any]) -> Any:
    return min(_numeric(values), default=None)


def _max_non_null(values: list[Any]) -> Any:
    return max(_numeric(values), default=None)


def _mean_non_null(values: list[Any]) -> Any:
    numeric = _numeric(values)
    return sum(numeric) / len(numeric) if numeric else None


def count(column: Any = None) -> AggregateExpr:
    """Count items per group (``count()``) or non-null values of a column."""
    if column is None:
        return AggregateExpr("count", LiteralExpr(1), _count_all, is_nested=False, output="count")
    return AggregateExpr("count", as_expression(column), _count_non_null, is_nested=False)


def sum_(column: Any) -> AggregateExpr:
    """Sum of non-null values per group."""
    return AggregateExpr("sum", as_expression(column), _sum_non_null, is_nested=False)


def min_(column: Any) -> AggregateExpr:
    """Minimum non-null value per group."""
    return AggregateExpr("min", as_expression(column), _min_non_null, is_nested=False)


def max_(column: Any) -> AggregateExpr:
    """Maximum non-null value per group."""
    return AggregateExpr("max", as_expression(column), _max_non_null, is_nested=False)


def avg(column: Any) -> AggregateExpr:
    """Arithmetic mean of non-null values per group."""
    return AggregateExpr("avg", as_expression(column), _mean_non_null, is_nested=False)


def collect_list(column: Any) -> AggregateExpr:
    """Collect the column values of a group into a nested bag (``A_B``)."""
    return AggregateExpr("collect_list", as_expression(column), Bag, is_nested=True)


def collect_set(column: Any) -> AggregateExpr:
    """Collect the distinct column values of a group into a nested set (``A_B``)."""
    return AggregateExpr("collect_set", as_expression(column), NestedSet, is_nested=True)
