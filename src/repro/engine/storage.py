"""Dataset sources backing the engine's read operator.

A source provides a name (for provenance reports) and a loader producing the
data items.  In-memory sources serve tests and examples; JSONL sources mirror
the paper's ``read tweets.json`` and re-read the file on every execution,
exactly like a DISC system re-scans its input (which matters for the lazy
provenance baseline that re-runs pipelines).
"""

from __future__ import annotations

from pathlib import Path as FsPath
from typing import Callable, Iterable

from repro.nested.json_io import read_jsonl
from repro.nested.values import DataItem, coerce_value
from repro.errors import DataModelError

__all__ = ["Source", "InMemorySource", "JsonlSource"]


class Source:
    """A named provider of nested data items."""

    def __init__(self, name: str):
        self.name = name

    def load(self) -> list[DataItem]:
        raise NotImplementedError

    def loader(self) -> Callable[[], list[DataItem]]:
        """Return a zero-argument loader for the read plan node."""
        return self.load


class InMemorySource(Source):
    """Serves a fixed list of items (dicts are coerced on construction)."""

    def __init__(self, name: str, items: Iterable[object]):
        super().__init__(name)
        coerced: list[DataItem] = []
        for item in items:
            value = coerce_value(item)
            if not isinstance(value, DataItem):
                raise DataModelError(
                    f"dataset items must be data items, got {type(item).__name__}"
                )
            coerced.append(value)
        self._items = coerced

    def load(self) -> list[DataItem]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)


class JsonlSource(Source):
    """Reads items from a JSON-lines file on every load."""

    def __init__(self, path: FsPath | str, name: str | None = None):
        self.path = FsPath(path)
        super().__init__(name or self.path.name)

    def load(self) -> list[DataItem]:
        return read_jsonl(self.path)
