"""The Dataset API: a DataFrame-like, lazily evaluated view on a plan.

A :class:`Dataset` wraps a logical plan node and a
:class:`~repro.engine.session.Session`.  Transformations
(``filter``/``select``/``map``/``join``/``union``/``flatten``/``group_by``)
build new plan nodes without executing anything; actions (``collect``,
``count``, ``execute``) run the plan.  This mirrors the paper's execution
model (Def. 4.6) and the SparkSQL surface Pebble wraps.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, TYPE_CHECKING

from repro.engine.executor import ExecutionResult, Executor
from repro.engine.expressions import AggregateExpr, Expression, as_expression
from repro.engine.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    FlattenNode,
    JoinNode,
    LimitNode,
    MapNode,
    PlanNode,
    SelectNode,
    SortNode,
    UnionNode,
    WithColumnNode,
)
from repro.errors import PlanError
from repro.nested.values import DataItem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.session import Session

__all__ = ["Dataset", "GroupedDataset"]


class Dataset:
    """A lazily evaluated nested dataset."""

    def __init__(self, session: "Session", plan: PlanNode):
        self.session = session
        self.plan = plan

    # -- transformations ------------------------------------------------------

    def _derive(self, plan: PlanNode) -> "Dataset":
        return Dataset(self.session, plan)

    def filter(self, predicate: Expression) -> "Dataset":
        """Keep items for which *predicate* evaluates truthy."""
        return self._derive(FilterNode(self.session.next_oid(), self.plan, predicate))

    def where(self, predicate: Expression) -> "Dataset":
        """Alias of :meth:`filter` (SparkSQL parlance)."""
        return self.filter(predicate)

    def select(self, *projections: Any) -> "Dataset":
        """Project each item to the given expressions or column names."""
        exprs = [as_expression(projection) for projection in projections]
        return self._derive(SelectNode(self.session.next_oid(), self.plan, exprs))

    def map(self, fn: Callable[[DataItem], Any], name: str = "udf") -> "Dataset":
        """Apply an arbitrary item-level function (provenance: A = M = unknown)."""
        return self._derive(MapNode(self.session.next_oid(), self.plan, fn, name))

    def join(self, other: "Dataset", condition: Expression) -> "Dataset":
        """Inner join with *other* on a boolean condition."""
        self._check_same_session(other)
        return self._derive(JoinNode(self.session.next_oid(), self.plan, other.plan, condition))

    def union(self, other: "Dataset") -> "Dataset":
        """Bag union with a schema-compatible dataset."""
        self._check_same_session(other)
        return self._derive(UnionNode(self.session.next_oid(), self.plan, other.plan))

    def flatten(self, col_path: str, new_name: str, outer: bool = False) -> "Dataset":
        """Unnest the collection at *col_path* into attribute *new_name*."""
        return self._derive(
            FlattenNode(self.session.next_oid(), self.plan, col_path, new_name, outer)
        )

    def group_by(self, *keys: Any) -> "GroupedDataset":
        """Group by the given key expressions; follow with ``.agg(...)``."""
        return GroupedDataset(self, list(keys))

    def distinct(self) -> "Dataset":
        """Remove duplicate items (bag -> set); all duplicates contribute."""
        return self._derive(DistinctNode(self.session.next_oid(), self.plan))

    def sort(self, *keys: Any, descending: bool = False) -> "Dataset":
        """Globally order by key expressions (provenance: keys are accessed)."""
        return self._derive(
            SortNode(self.session.next_oid(), self.plan, list(keys), descending)
        )

    def limit(self, n: int) -> "Dataset":
        """Keep the first *n* items of the dataset's deterministic order."""
        return self._derive(LimitNode(self.session.next_oid(), self.plan, n))

    def with_column(self, name: str, expression: Any) -> "Dataset":
        """Add (or replace) one attribute computed from each item."""
        return self._derive(
            WithColumnNode(self.session.next_oid(), self.plan, name, expression)
        )

    # -- actions ---------------------------------------------------------------

    def execute(self, capture: bool = False, *, hooks: Any = None) -> ExecutionResult:
        """Run the plan under the session's engine config.

        ``capture=True`` attaches the structural capture hook; passing
        *hooks* explicitly attaches an arbitrary
        :class:`~repro.engine.hooks.CaptureHook` list instead.
        """
        executor = Executor(capture=capture, config=self.session.config, hooks=hooks)
        return executor.execute(self.plan)

    def collect(self) -> list[DataItem]:
        """Run the plan and return the result items."""
        return self.execute().items()

    def count(self) -> int:
        """Run the plan and return the number of result items."""
        return len(self.execute())

    def take(self, n: int) -> list[DataItem]:
        """Run the plan and return the first *n* result items."""
        return self.collect()[:n]

    def show(self, n: int = 20) -> str:
        """Render the first *n* items as text (and return the text)."""
        lines = [repr(item) for item in self.take(n)]
        rendered = "\n".join(lines)
        print(rendered)
        return rendered

    def explain(self) -> str:
        """Return a textual rendering of the logical plan DAG."""
        lines = []
        for node in self.plan.walk():
            children = ", ".join(str(child.oid) for child in node.children) or "-"
            lines.append(f"[{node.oid}] {node.label()}  <- {children}")
        return "\n".join(lines)

    def _check_same_session(self, other: "Dataset") -> None:
        if other.session is not self.session:
            raise PlanError("cannot combine datasets from different sessions")

    def __repr__(self) -> str:
        return f"Dataset(plan=[{self.plan.oid}] {self.plan.label()})"


class GroupedDataset:
    """Intermediate result of ``group_by``; call :meth:`agg` to aggregate."""

    def __init__(self, dataset: Dataset, keys: Sequence[Any]):
        self._dataset = dataset
        self._keys = list(keys)

    def agg(self, *aggregates: AggregateExpr) -> Dataset:
        """Aggregate each group with the given functions (Tab. 5 rules)."""
        if not all(isinstance(aggregate, AggregateExpr) for aggregate in aggregates):
            raise PlanError("agg(...) expects aggregate expressions (count, collect_list, ...)")
        node = AggregateNode(
            self._dataset.session.next_oid(),
            self._dataset.plan,
            self._keys,
            list(aggregates),
        )
        return Dataset(self._dataset.session, node)
