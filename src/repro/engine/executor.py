"""Partitioned plan execution with optional provenance capture.

The executor walks the logical plan DAG bottom-up (memoised, so shared
sub-plans run once), processes every dataset as a list of partitions, and --
when capture is enabled -- assigns identifiers to top-level items at the
sources and emits one
:class:`~repro.core.operator_provenance.OperatorProvenance` per operator
into a fresh :class:`~repro.core.store.ProvenanceStore` (the lightweight
capture of Sec. 5.1).

Rows are ``(pid, item)`` pairs; ``pid`` is ``None`` when capture is off, so
the plain execution path carries no provenance cost beyond the tuple.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.operator_provenance import (
    AggregationAssociations,
    BinaryAssociations,
    FlattenAssociations,
    InputRef,
    OperatorProvenance,
    ReadAssociations,
    UNDEFINED,
    UnaryAssociations,
)
from repro.core.paths import Path
from repro.core.store import ProvenanceStore, ProvenanceStoreProtocol
from repro.engine.expressions import BinaryExpr, ColumnExpr, Expression
from repro.engine.metrics import ExecutionMetrics, Stopwatch
from repro.engine.partition import concat_partitions, hash_partition, partition_rows
from repro.engine.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    FlattenNode,
    JoinNode,
    LimitNode,
    MapNode,
    PlanNode,
    ReadNode,
    SelectNode,
    SortNode,
    UnionNode,
    WithColumnNode,
)
from repro.errors import ExecutionError, PlanError, SchemaMismatchError
from repro.nested.schema import Schema, infer_schema
from repro.nested.types import StructType
from repro.nested.values import Bag, DataItem, NestedSet, coerce_value

__all__ = ["Executor", "ExecutionResult", "SCHEMA_SAMPLE"]

Row = tuple[Any, DataItem]  # (pid or None, item)

#: Number of items sampled when inferring a dataset schema at runtime.
#: Shared by every consumer that re-infers a schema from stored rows
#: (warehouse loads, JSON restores), so persisted and live executions agree.
SCHEMA_SAMPLE = 200
_SCHEMA_SAMPLE = SCHEMA_SAMPLE  # backwards-compatible alias


class _NodeResult:
    """Partitions plus inferred schema of one executed node."""

    __slots__ = ("partitions", "schema")

    def __init__(self, partitions: list[list[Row]], schema: Schema):
        self.partitions = partitions
        self.schema = schema


class ExecutionResult:
    """The outcome of executing one plan: rows, schema, provenance, metrics."""

    def __init__(
        self,
        root: PlanNode,
        partitions: list[list[Row]],
        schema: Schema,
        store: ProvenanceStoreProtocol | None,
        metrics: ExecutionMetrics,
    ):
        self.root = root
        self.partitions = partitions
        self.schema = schema
        #: Captured provenance, or ``None`` when capture was disabled.
        self.store = store
        self.metrics = metrics

    def rows(self) -> list[Row]:
        """Return all ``(pid, item)`` rows in deterministic order."""
        return concat_partitions(self.partitions)

    def items(self) -> list[DataItem]:
        """Return the result data items (provenance ids stripped)."""
        return [item for _, item in self.rows()]

    def __len__(self) -> int:
        return sum(len(partition) for partition in self.partitions)

    def __repr__(self) -> str:
        captured = "captured" if self.store is not None else "plain"
        return f"ExecutionResult({len(self)} rows, {captured})"


class Executor:
    """Executes one plan DAG; create a fresh instance per run."""

    def __init__(self, num_partitions: int = 4, capture: bool = False, lineage_only: bool = False):
        if num_partitions < 1:
            raise ExecutionError(f"need at least one partition, got {num_partitions}")
        self._num_partitions = num_partitions
        self._capture = capture
        #: Titian-style mode: record only id associations, no schema-level
        #: accessed/manipulated paths (used by the baseline comparison of
        #: Sec. 7.3.4).  Structural backtracing over such a store degrades
        #: to plain lineage.
        self._lineage_only = lineage_only
        self._store: ProvenanceStore | None = ProvenanceStore() if capture else None
        self._metrics = ExecutionMetrics()
        self._memo: dict[int, _NodeResult] = {}
        self._next_id = 1

    # -- public entry --------------------------------------------------------

    def execute(self, root: PlanNode) -> ExecutionResult:
        """Execute the plan rooted at *root* and return its result."""
        with Stopwatch() as watch:
            result = self._run(root)
        self._metrics.total_seconds = watch.elapsed
        return ExecutionResult(root, result.partitions, result.schema, self._store, self._metrics)

    # -- dispatch --------------------------------------------------------------

    def _run(self, node: PlanNode) -> _NodeResult:
        memoised = self._memo.get(node.oid)
        if memoised is not None:
            return memoised
        handler = self._HANDLERS.get(type(node))
        if handler is None:
            raise ExecutionError(f"no handler for plan node {type(node).__name__}")
        metrics = self._metrics.operator(node.oid, node.op_type, node.label())
        with Stopwatch() as watch:
            result = handler(self, node)
        metrics.seconds += watch.elapsed
        metrics.rows_out = sum(len(partition) for partition in result.partitions)
        self._memo[node.oid] = result
        return result

    def _fresh_id(self) -> int:
        assigned = self._next_id
        self._next_id += 1
        return assigned

    def _schema_of(self, rows: Iterable[Row]) -> Schema:
        sample = []
        for _, item in rows:
            sample.append(item)
            if len(sample) >= _SCHEMA_SAMPLE:
                break
        if not sample:
            return Schema(StructType())
        return infer_schema(sample)


    def _input_ref(self, predecessor: int, accessed, schema: Schema) -> InputRef:
        """Build an input reference; lineage-only mode drops A and schema."""
        if self._lineage_only:
            return InputRef(predecessor, frozenset(), schema=schema)
        return InputRef(predecessor, accessed, schema=schema)

    def _manipulations(self, pairs):
        """Return M for registration; lineage-only mode records nothing."""
        if self._lineage_only:
            return ()
        return pairs

    # -- operators --------------------------------------------------------------

    def _run_read(self, node: ReadNode) -> _NodeResult:
        items = node.loader()
        rows: list[Row] = []
        if self._capture:
            associations = ReadAssociations()
            by_id: dict[int, DataItem] = {}
            for item in items:
                pid = self._fresh_id()
                associations.add(pid)
                by_id[pid] = item
                rows.append((pid, item))
            assert self._store is not None
            self._store.register(
                OperatorProvenance(node.oid, node.op_type, (), (), associations, node.label())
            )
            self._store.register_source_items(node.oid, node.name, by_id)
        else:
            rows = [(None, item) for item in items]
        partitions = partition_rows(rows, self._num_partitions)
        metrics = self._metrics.operator(node.oid, node.op_type, node.label())
        metrics.rows_in = len(rows)
        return _NodeResult(partitions, self._schema_of(rows))

    def _run_filter(self, node: FilterNode) -> _NodeResult:
        child = self._run(node.children[0])
        associations = UnaryAssociations() if self._capture else None
        partitions: list[list[Row]] = []
        for partition in child.partitions:
            kept: list[Row] = []
            for pid, item in partition:
                if node.predicate.evaluate(item):
                    if associations is not None:
                        out_id = self._fresh_id()
                        associations.add(pid, out_id)
                        kept.append((out_id, item))
                    else:
                        kept.append((pid, item))
            partitions.append(kept)
        self._register_unary(node, child, associations, manipulations=[])
        return _NodeResult(partitions, child.schema)

    def _run_select(self, node: SelectNode) -> _NodeResult:
        child = self._run(node.children[0])
        associations = UnaryAssociations() if self._capture else None
        partitions: list[list[Row]] = []
        for partition in child.partitions:
            projected: list[Row] = []
            for pid, item in partition:
                out_item = DataItem(
                    (name, projection.evaluate(item))
                    for name, projection in zip(node.output_names, node.projections)
                )
                if associations is not None:
                    out_id = self._fresh_id()
                    associations.add(pid, out_id)
                    projected.append((out_id, out_item))
                else:
                    projected.append((pid, out_item))
            partitions.append(projected)
        self._register_unary(node, child, associations, manipulations=node.manipulation_pairs())
        rows = concat_partitions(partitions)
        return _NodeResult(partitions, self._schema_of(rows))

    def _run_map(self, node: MapNode) -> _NodeResult:
        child = self._run(node.children[0])
        associations = UnaryAssociations() if self._capture else None
        partitions: list[list[Row]] = []
        for partition in child.partitions:
            mapped: list[Row] = []
            for pid, item in partition:
                try:
                    out_value = node.fn(item)
                except Exception as exc:
                    raise ExecutionError(f"map {node.name!r} failed on item: {exc}") from exc
                out_item = coerce_value(out_value)
                if not isinstance(out_item, DataItem):
                    raise ExecutionError(
                        f"map {node.name!r} must return a data item, got {type(out_value).__name__}"
                    )
                if associations is not None:
                    out_id = self._fresh_id()
                    associations.add(pid, out_id)
                    mapped.append((out_id, out_item))
                else:
                    mapped.append((pid, out_item))
            partitions.append(mapped)
        if self._capture:
            assert self._store is not None and associations is not None
            input_ref = self._input_ref(node.children[0].oid, UNDEFINED, child.schema)
            manipulations = () if self._lineage_only else UNDEFINED
            self._store.register(
                OperatorProvenance(
                    node.oid, node.op_type, (input_ref,), manipulations, associations, node.label()
                )
            )
        rows = concat_partitions(partitions)
        return _NodeResult(partitions, self._schema_of(rows))

    def _run_flatten(self, node: FlattenNode) -> _NodeResult:
        child = self._run(node.children[0])
        if child.schema.struct.has_field(node.new_name):
            raise PlanError(f"flatten output attribute {node.new_name!r} already exists")
        associations = FlattenAssociations() if self._capture else None
        partitions: list[list[Row]] = []
        for partition in child.partitions:
            flattened: list[Row] = []
            for pid, item in partition:
                collection = (
                    node.col_path.evaluate(item) if node.col_path.resolves_in(item) else None
                )
                if collection is None:
                    elements: tuple[Any, ...] = ()
                elif isinstance(collection, (Bag, NestedSet)):
                    elements = collection.items()
                else:
                    raise ExecutionError(
                        f"flatten path {node.col_path} is not a collection "
                        f"(got {type(collection).__name__})"
                    )
                if not elements and node.outer:
                    out_item = item.replace(**{node.new_name: None})
                    if associations is not None:
                        out_id = self._fresh_id()
                        associations.add(pid, 0, out_id)
                        flattened.append((out_id, out_item))
                    else:
                        flattened.append((pid, out_item))
                    continue
                for position, element in enumerate(elements, start=1):
                    out_item = item.replace(**{node.new_name: element})
                    if associations is not None:
                        out_id = self._fresh_id()
                        associations.add(pid, position, out_id)
                        flattened.append((out_id, out_item))
                    else:
                        flattened.append((pid, out_item))
            partitions.append(flattened)
        if self._capture:
            assert self._store is not None and associations is not None
            input_ref = self._input_ref(
                node.children[0].oid, node.accessed_paths(0), child.schema
            )
            self._store.register(
                OperatorProvenance(
                    node.oid,
                    node.op_type,
                    (input_ref,),
                    self._manipulations(node.manipulation_pairs()),
                    associations,
                    node.label(),
                )
            )
        rows = concat_partitions(partitions)
        return _NodeResult(partitions, self._schema_of(rows))

    def _run_union(self, node: UnionNode) -> _NodeResult:
        left = self._run(node.children[0])
        right = self._run(node.children[1])
        try:
            schema = left.schema.merged_with(right.schema)
        except Exception as exc:
            raise SchemaMismatchError(f"union over incompatible schemas: {exc}") from exc
        associations = BinaryAssociations() if self._capture else None
        partitions: list[list[Row]] = []
        for partition in left.partitions:
            unioned: list[Row] = []
            for pid, item in partition:
                if associations is not None:
                    out_id = self._fresh_id()
                    associations.add(pid, None, out_id)
                    unioned.append((out_id, item))
                else:
                    unioned.append((pid, item))
            partitions.append(unioned)
        for partition in right.partitions:
            unioned = []
            for pid, item in partition:
                if associations is not None:
                    out_id = self._fresh_id()
                    associations.add(None, pid, out_id)
                    unioned.append((out_id, item))
                else:
                    unioned.append((pid, item))
            partitions.append(unioned)
        if self._capture:
            assert self._store is not None and associations is not None
            inputs = (
                self._input_ref(node.children[0].oid, frozenset(), left.schema),
                self._input_ref(node.children[1].oid, frozenset(), right.schema),
            )
            self._store.register(
                OperatorProvenance(node.oid, node.op_type, inputs, (), associations, node.label())
            )
        return _NodeResult(partitions, schema)

    def _run_join(self, node: JoinNode) -> _NodeResult:
        left = self._run(node.children[0])
        right = self._run(node.children[1])
        clash = set(left.schema.attribute_names()) & set(right.schema.attribute_names())
        if clash:
            raise PlanError(
                f"join inputs share attribute names {sorted(clash)}; rename before joining"
            )
        associations = BinaryAssociations() if self._capture else None
        equi_keys = _extract_equi_keys(node.condition, left.schema, right.schema)
        out_partitions: list[list[Row]] = [[] for _ in range(self._num_partitions)]

        def emit(bucket: int, left_row: Row, right_row: Row) -> None:
            left_pid, left_item = left_row
            right_pid, right_item = right_row
            out_item = left_item.merged_with(right_item)
            if associations is not None:
                out_id = self._fresh_id()
                associations.add(left_pid, right_pid, out_id)
                out_partitions[bucket].append((out_id, out_item))
            else:
                out_partitions[bucket].append((None, out_item))

        if equi_keys is not None:
            left_keys, right_keys = equi_keys
            left_shuffled = hash_partition(
                concat_partitions(left.partitions),
                self._num_partitions,
                lambda row: tuple(expr.evaluate(row[1]) for expr in left_keys),
            )
            right_shuffled = hash_partition(
                concat_partitions(right.partitions),
                self._num_partitions,
                lambda row: tuple(expr.evaluate(row[1]) for expr in right_keys),
            )
            for bucket in range(self._num_partitions):
                build: dict[tuple[Any, ...], list[Row]] = {}
                for row in left_shuffled[bucket]:
                    key = tuple(expr.evaluate(row[1]) for expr in left_keys)
                    build.setdefault(key, []).append(row)
                for right_row in right_shuffled[bucket]:
                    key = tuple(expr.evaluate(right_row[1]) for expr in right_keys)
                    for left_row in build.get(key, ()):
                        emit(bucket, left_row, right_row)
        else:
            left_rows = concat_partitions(left.partitions)
            right_rows = concat_partitions(right.partitions)
            for index, left_row in enumerate(left_rows):
                bucket = index % self._num_partitions
                for right_row in right_rows:
                    merged = left_row[1].merged_with(right_row[1])
                    if node.condition.evaluate(merged):
                        emit(bucket, left_row, right_row)
        if self._capture:
            assert self._store is not None and associations is not None
            condition_paths = node.condition_paths()
            left_accessed = {path for path in condition_paths if left.schema.contains(path)}
            right_accessed = {path for path in condition_paths if right.schema.contains(path)}
            manipulations = [
                (Path().child(name), Path().child(name))
                for name in left.schema.attribute_names()
            ]
            manipulations.extend(
                (Path().child(name), Path().child(name))
                for name in right.schema.attribute_names()
            )
            inputs = (
                self._input_ref(node.children[0].oid, left_accessed, left.schema),
                self._input_ref(node.children[1].oid, right_accessed, right.schema),
            )
            self._store.register(
                OperatorProvenance(
                    node.oid,
                    node.op_type,
                    inputs,
                    self._manipulations(manipulations),
                    associations,
                    node.label(),
                )
            )
        rows = concat_partitions(out_partitions)
        return _NodeResult(out_partitions, self._schema_of(rows))

    def _run_aggregate(self, node: AggregateNode) -> _NodeResult:
        child = self._run(node.children[0])
        associations = AggregationAssociations() if self._capture else None

        def key_of(row: Row) -> tuple[Any, ...]:
            return tuple(key.evaluate(row[1]) for key in node.keys)

        shuffled = hash_partition(
            concat_partitions(child.partitions), self._num_partitions, key_of
        )
        partitions: list[list[Row]] = []
        for bucket_rows in shuffled:
            groups: dict[tuple[Any, ...], list[Row]] = {}
            for row in bucket_rows:
                groups.setdefault(key_of(row), []).append(row)
            aggregated: list[Row] = []
            for key_values, members in groups.items():
                fields: list[tuple[str, Any]] = list(zip(node.key_names, key_values))
                for aggregate in node.aggregates:
                    values = [aggregate.column.evaluate(item) for _, item in members]
                    fields.append((aggregate.output_name(), aggregate.apply(values)))
                out_item = DataItem(fields)
                if associations is not None:
                    out_id = self._fresh_id()
                    associations.add([pid for pid, _ in members], out_id)
                    aggregated.append((out_id, out_item))
                else:
                    aggregated.append((None, out_item))
            partitions.append(aggregated)
        if self._capture:
            assert self._store is not None and associations is not None
            input_ref = self._input_ref(
                node.children[0].oid, node.accessed_paths(0), child.schema
            )
            self._store.register(
                OperatorProvenance(
                    node.oid,
                    node.op_type,
                    (input_ref,),
                    self._manipulations(node.manipulation_pairs()),
                    associations,
                    node.label(),
                )
            )
        rows = concat_partitions(partitions)
        return _NodeResult(partitions, self._schema_of(rows))

    def _register_unary(
        self,
        node: PlanNode,
        child: _NodeResult,
        associations: UnaryAssociations | None,
        manipulations: list[tuple[Path, Path]],
    ) -> None:
        if not self._capture:
            return
        assert self._store is not None and associations is not None
        input_ref = self._input_ref(node.children[0].oid, node.accessed_paths(0), child.schema)
        self._store.register(
            OperatorProvenance(
                node.oid,
                node.op_type,
                (input_ref,),
                self._manipulations(manipulations),
                associations,
                node.label(),
            )
        )

    def _run_distinct(self, node: DistinctNode) -> _NodeResult:
        child = self._run(node.children[0])
        rows = concat_partitions(child.partitions)
        groups: dict[DataItem, list[Any]] = {}
        order: list[DataItem] = []
        for pid, item in rows:
            if item not in groups:
                groups[item] = []
                order.append(item)
            groups[item].append(pid)
        associations = AggregationAssociations() if self._capture else None
        distinct_rows: list[Row] = []
        for item in order:
            if associations is not None:
                out_id = self._fresh_id()
                associations.add(groups[item], out_id)
                distinct_rows.append((out_id, item))
            else:
                distinct_rows.append((None, item))
        if self._capture:
            assert self._store is not None and associations is not None
            # Comparing whole items accesses every top-level attribute.
            accessed = {Path().child(name) for name in child.schema.attribute_names()}
            input_ref = self._input_ref(node.children[0].oid, accessed, child.schema)
            self._store.register(
                OperatorProvenance(
                    node.oid, node.op_type, (input_ref,), (), associations, node.label()
                )
            )
        return _NodeResult(partition_rows(distinct_rows, self._num_partitions), child.schema)

    def _run_sort(self, node: SortNode) -> _NodeResult:
        child = self._run(node.children[0])
        rows = concat_partitions(child.partitions)

        def sort_key(row: Row) -> tuple:
            # None sorts first; mixed types are kept apart by type name.
            values = []
            for key in node.keys:
                value = key.evaluate(row[1])
                values.append((value is not None, type(value).__name__, value))
            return tuple(values)

        ordered = sorted(rows, key=sort_key, reverse=node.descending)
        associations = UnaryAssociations() if self._capture else None
        out_rows: list[Row] = []
        for pid, item in ordered:
            if associations is not None:
                out_id = self._fresh_id()
                associations.add(pid, out_id)
                out_rows.append((out_id, item))
            else:
                out_rows.append((pid, item))
        self._register_unary(node, child, associations, manipulations=[])
        return _NodeResult(partition_rows(out_rows, self._num_partitions), child.schema)

    def _run_limit(self, node: LimitNode) -> _NodeResult:
        child = self._run(node.children[0])
        rows = concat_partitions(child.partitions)[: node.n]
        associations = UnaryAssociations() if self._capture else None
        out_rows: list[Row] = []
        for pid, item in rows:
            if associations is not None:
                out_id = self._fresh_id()
                associations.add(pid, out_id)
                out_rows.append((out_id, item))
            else:
                out_rows.append((pid, item))
        self._register_unary(node, child, associations, manipulations=[])
        return _NodeResult(partition_rows(out_rows, self._num_partitions), child.schema)

    def _run_with_column(self, node: WithColumnNode) -> _NodeResult:
        child = self._run(node.children[0])
        associations = UnaryAssociations() if self._capture else None
        partitions: list[list[Row]] = []
        for partition in child.partitions:
            extended: list[Row] = []
            for pid, item in partition:
                out_item = item.replace(**{node.name: node.expression.evaluate(item)})
                if associations is not None:
                    out_id = self._fresh_id()
                    associations.add(pid, out_id)
                    extended.append((out_id, out_item))
                else:
                    extended.append((pid, out_item))
            partitions.append(extended)
        self._register_unary(node, child, associations, manipulations=node.manipulation_pairs())
        rows = concat_partitions(partitions)
        return _NodeResult(partitions, self._schema_of(rows))


    _HANDLERS: dict[type, Callable[["Executor", Any], _NodeResult]] = {}


Executor._HANDLERS = {
    ReadNode: Executor._run_read,
    FilterNode: Executor._run_filter,
    SelectNode: Executor._run_select,
    MapNode: Executor._run_map,
    FlattenNode: Executor._run_flatten,
    UnionNode: Executor._run_union,
    JoinNode: Executor._run_join,
    AggregateNode: Executor._run_aggregate,
    DistinctNode: Executor._run_distinct,
    SortNode: Executor._run_sort,
    LimitNode: Executor._run_limit,
    WithColumnNode: Executor._run_with_column,
}


def _extract_equi_keys(
    condition: Expression, left_schema: Schema, right_schema: Schema
) -> tuple[list[Expression], list[Expression]] | None:
    """Extract hash-join keys from a conjunction of column equalities.

    Returns ``(left_keys, right_keys)`` if the whole condition is a
    conjunction of ``col == col`` terms whose sides resolve unambiguously to
    the two inputs; otherwise ``None`` (the join falls back to a nested-loop
    evaluation of the condition on the merged item).
    """
    conjuncts: list[Expression] = []

    def split(expr: Expression) -> bool:
        if isinstance(expr, BinaryExpr) and expr.name == "and":
            return split(expr.left) and split(expr.right)
        conjuncts.append(expr)
        return True

    split(condition)
    left_keys: list[Expression] = []
    right_keys: list[Expression] = []
    for conjunct in conjuncts:
        if not (isinstance(conjunct, BinaryExpr) and conjunct.name == "=="):
            return None
        sides = [conjunct.left, conjunct.right]
        if not all(isinstance(side, ColumnExpr) for side in sides):
            return None
        first, second = sides
        assert isinstance(first, ColumnExpr) and isinstance(second, ColumnExpr)
        first_left = left_schema.contains(first.path.schematic())
        first_right = right_schema.contains(first.path.schematic())
        second_left = left_schema.contains(second.path.schematic())
        second_right = right_schema.contains(second.path.schematic())
        if first_left and second_right and not (first_right or second_left):
            left_keys.append(first)
            right_keys.append(second)
        elif first_right and second_left and not (first_left or second_right):
            left_keys.append(second)
            right_keys.append(first)
        else:
            return None
    return (left_keys, right_keys) if left_keys else None
