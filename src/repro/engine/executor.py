"""The execution driver: compile, optimize, schedule, run.

The seed executor was a monolithic operator-at-a-time interpreter.  It is now
split into three layers (mirroring the classic logical/physical separation):

1. :mod:`repro.engine.optimizer` rewrites the logical plan (filter pushdown,
   projection pruning, operator fusion) and compiles it into a
   :class:`~repro.engine.physical.PhysicalPlan` -- an ordered list of stages.
2. This module executes the stages in order.  Source scans and wide stages
   (join, aggregate, union, distinct, sort, limit) run the seed's handler
   logic; **fused stages** run their narrow-operator chain partition-at-a-time
   and hand the independent per-partition tasks to a scheduler.
3. :mod:`repro.engine.scheduler` supplies the backend (serial or thread
   pool) that actually runs those tasks.

Provenance capture is no longer hard-wired: the executor emits events to
:class:`~repro.engine.hooks.CaptureHook` instances (structural capture,
lineage-only baseline, metrics).  The legacy ``capture`` / ``lineage_only``
flags are still accepted and translate to the corresponding hooks.

Equivalence with the seed path is an invariant, not an accident: stages run
in the logical walk order, fused chains assign provenance ids in a serial
finalisation pass that replays per-partition traces operator-by-operator
(reproducing the seed's global id sequence exactly), and schema handling
(propagation vs ``SCHEMA_SAMPLE`` inference) follows the seed rules
per operator.  Rows are ``(pid, item)`` pairs; ``pid`` is ``None`` when no
hook needs ids, so the plain path carries no provenance cost.
"""

from __future__ import annotations

import os
import time
from typing import Any, Sequence

from repro.core.operator_provenance import (
    AggregationAssociations,
    BinaryAssociations,
    ReadAssociations,
    UnaryAssociations,
)
from repro.core.paths import Path
from repro.core.store import ProvenanceStoreProtocol
from repro.engine.columnar import ColumnarPartition, ColumnarRows, struct_type_over
from repro.engine.config import EngineConfig
from repro.engine.expressions import BinaryExpr, ColumnExpr, Expression
from repro.engine.faults import parse_faults
from repro.engine.hooks import (
    CaptureHook,
    MetricsHook,
    capture_spec,
    hooks_for,
    provenance_store,
)
from repro.engine.metrics import ExecutionMetrics, StageMetrics, Stopwatch
from repro.engine.optimizer import plan_physical
from repro.engine.partition import concat_partitions, hash_partition, partition_rows
from repro.engine.physical import (
    SCHEMA_SAMPLE,
    FlattenOp,
    FusedStage,
    NarrowOp,
    PhysicalPlan,
    ReadStage,
    Stage,
    StageTask,
    WideStage,
)
from repro.engine.plan import (
    AggregateNode,
    DistinctNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ReadNode,
    SortNode,
    UnionNode,
)
from repro.engine.scheduler import Scheduler, make_scheduler
from repro.errors import ExecutionError, PlanError, SchemaMismatchError
from repro.obs.log import get_logger
from repro.obs.tracer import get_tracer
from repro.nested.schema import Schema, infer_schema
from repro.nested.types import StructType, unify
from repro.nested.values import DataItem

__all__ = ["Executor", "ExecutionResult", "SCHEMA_SAMPLE"]

Row = tuple[Any, DataItem]  # (pid or None, item)

_SCHEMA_SAMPLE = SCHEMA_SAMPLE  # backwards-compatible alias

#: Per-operator stat rows a stage runner reports: ``(node, rows_in, rows_out)``
#: (``rows_in`` is ``None`` except for sources, matching the seed metrics).
_OpStats = list[tuple[PlanNode, int | None, int]]


class ExecutionResult:
    """The outcome of executing one plan: rows, schema, provenance, metrics.

    Under the columnar layout the result keeps its partitions in the raw
    column representation (:class:`~repro.engine.columnar.ColumnarRows`) and
    decodes lazily: :attr:`partitions` materialises row lists on first
    access, :attr:`raw_partitions` hands consumers -- the tree-pattern
    matcher's vectorized pre-filter, the warehouse writer's streaming encode
    -- the undecoded form.
    """

    def __init__(
        self,
        root: PlanNode,
        partitions: "list[list[Row] | ColumnarRows]",
        schema: Schema,
        store: ProvenanceStoreProtocol | None,
        metrics: ExecutionMetrics,
        physical: PhysicalPlan | None = None,
    ):
        self.root = root
        self._raw_partitions = partitions
        self._row_partitions: list[list[Row]] | None = None
        self.schema = schema
        #: Captured provenance, or ``None`` when capture was disabled.
        self.store = store
        self.metrics = metrics
        #: The physical plan that produced this result (``None`` for results
        #: restored from persistence, which never executed stages).
        self.physical = physical

    @property
    def partitions(self) -> list[list[Row]]:
        """Row-layout partitions, decoded on first access."""
        if self._row_partitions is None:
            raw = self._raw_partitions
            if any(isinstance(partition, ColumnarRows) for partition in raw):
                self._row_partitions = [
                    partition.rows() if isinstance(partition, ColumnarRows) else partition
                    for partition in raw
                ]
            else:
                self._row_partitions = raw  # type: ignore[assignment]
        return self._row_partitions

    @partitions.setter
    def partitions(self, value: list[list[Row]]) -> None:
        self._raw_partitions = value
        self._row_partitions = None

    @property
    def raw_partitions(self) -> "list[list[Row] | ColumnarRows]":
        """Partitions in their native representation (no decode)."""
        return self._raw_partitions

    def rows(self) -> list[Row]:
        """Return all ``(pid, item)`` rows in deterministic order."""
        return concat_partitions(self.partitions)

    def iter_rows(self):
        """Stream ``(pid, item)`` rows without materialising row lists."""
        for partition in self._raw_partitions:
            if isinstance(partition, ColumnarRows):
                yield from partition.iter_rows()
            else:
                yield from partition

    def items(self) -> list[DataItem]:
        """Return the result data items (provenance ids stripped)."""
        return [item for _, item in self.rows()]

    def __len__(self) -> int:
        return sum(len(partition) for partition in self._raw_partitions)

    def __repr__(self) -> str:
        captured = "captured" if self.store is not None else "plain"
        return f"ExecutionResult({len(self)} rows, {captured})"


class Executor:
    """Executes one plan DAG; create a fresh instance per run.

    ``Executor(n, capture=True)`` keeps its seed meaning; the richer form
    passes an :class:`EngineConfig` (scheduler, optimizer rules) and/or an
    explicit list of capture hooks.
    """

    def __init__(
        self,
        num_partitions: int | None = None,
        capture: bool = False,
        lineage_only: bool = False,
        *,
        config: EngineConfig | None = None,
        hooks: Sequence[CaptureHook] | None = None,
    ):
        base = config if config is not None else EngineConfig.from_env()
        if num_partitions is not None:
            base = base.with_partitions(num_partitions)
        self._config = base
        self._num_partitions = base.num_partitions
        hook_list = list(hooks) if hooks is not None else hooks_for(capture, lineage_only)
        metrics_hook = next(
            (hook for hook in hook_list if isinstance(hook, MetricsHook)), None
        )
        if metrics_hook is None:
            metrics_hook = MetricsHook()
            hook_list.append(metrics_hook)
        self._hooks: tuple[CaptureHook, ...] = tuple(hook_list)
        self._metrics = metrics_hook.metrics
        #: Whether any hook needs per-row provenance ids (the seed ``capture``);
        #: this is the capture-hook spec shipped inside every ``StageTask``.
        self._capturing = capture_spec(hook_list)
        self._fault_plan = parse_faults(base.faults)
        self._store = provenance_store(hook_list)
        self._next_id = 1
        self._columnar = base.layout == "columnar"
        self._partitions: dict[int, list[Any]] = {}
        self._schemas: dict[int, Schema] = {}

    @property
    def config(self) -> EngineConfig:
        return self._config

    # -- public entry --------------------------------------------------------

    def compile(self, root: PlanNode) -> PhysicalPlan:
        """Optimize and compile *root* without executing it (``repro explain``)."""
        return plan_physical(root, self._config, self._hooks)

    def execute(self, root: PlanNode) -> ExecutionResult:
        """Execute the plan rooted at *root* and return its result."""
        physical = self.compile(root)
        run_span = get_tracer().span(
            "run",
            "run",
            scheduler=self._config.scheduler,
            partitions=self._num_partitions,
            optimize=self._config.optimize,
            capture=self._capturing,
            stages=len(physical.stages),
        )
        profiler = None
        if self._config.profile:
            from repro.obs.profile import SamplingProfiler

            profiler = SamplingProfiler().start()
        # The context-manager protocol shuts the scheduler's pools down on
        # the error path too (a raising stage must not leak worker threads
        # or processes).
        try:
            with make_scheduler(self._config) as scheduler:
                with run_span, Stopwatch() as watch:
                    for index, stage in enumerate(physical.stages):
                        if profiler is not None:
                            profiler.mark_stage(f"stage-{index} {stage.kind}")
                        self._execute_stage(index, stage, scheduler)
                self._metrics.record_scheduler(scheduler.name, scheduler.stats)
        finally:
            if profiler is not None:
                self._finish_profile(profiler)
        self._metrics.total_seconds = watch.elapsed
        self._metrics.layout = self._config.layout
        if self._columnar:
            self._metrics.partition_bytes = sum(
                partition.data.nbytes()
                for partitions in self._partitions.values()
                for partition in partitions
                if isinstance(partition, ColumnarRows)
            )
        self._metrics.publish()
        root_oid = physical.root_oid
        return ExecutionResult(
            root,
            self._partitions[root_oid],
            self._schemas[root_oid],
            self._store,
            self._metrics,
            physical=physical,
        )

    @staticmethod
    def _finish_profile(profiler: "SamplingProfiler") -> None:
        """Stop the run's profiler; export folded stacks and trace markers."""
        from repro.obs.profile import profile_out_path

        profiler.stop()
        out = profile_out_path()
        if out:
            lines = profiler.write_folded(out)
            get_logger("engine").event(
                "profile-written",
                path=out,
                lines=lines,
                samples=profiler.sample_count,
            )
        tracer = get_tracer()
        if tracer.enabled:
            profiler.merge_into_tracer(tracer)

    # -- stage driver --------------------------------------------------------

    def _execute_stage(self, index: int, stage: Stage, scheduler: Scheduler) -> None:
        with get_tracer().span(
            f"stage-{index} {stage.kind}", "stage", label=stage.label()
        ) as span:
            with Stopwatch() as watch:
                if isinstance(stage, ReadStage):
                    rows_in, rows_out, op_stats = self._run_read_stage(stage)
                elif isinstance(stage, FusedStage):
                    rows_in, rows_out, op_stats = self._run_fused_stage(
                        index, stage, scheduler
                    )
                else:
                    assert isinstance(stage, WideStage)
                    rows_in, rows_out, op_stats = self._run_wide_stage(stage)
            span.set(rows_in=rows_in, rows_out=rows_out)
        elapsed = watch.elapsed
        share = elapsed / (len(op_stats) or 1)
        for node, node_rows_in, node_rows_out in op_stats:
            slot = self._metrics.operator(node.oid, node.op_type, node.label())
            if node_rows_in is not None:
                slot.rows_in = node_rows_in
            slot.rows_out = node_rows_out
            slot.seconds += share
        stage_metrics = StageMetrics(index, stage.kind, stage.label(), stage.logical_oids())
        stage_metrics.span_id = getattr(span, "span_id", None)
        stage_metrics.rows_in = rows_in
        stage_metrics.rows_out = rows_out
        stage_metrics.seconds = elapsed
        stage_metrics.partition_rows = tuple(
            len(partition) for partition in self._partitions[stage.output_oid]
        )
        for hook in self._hooks:
            hook.on_stage(stage_metrics)

    def _finish(self, oid: int, partitions: list[list[Row]], schema: Schema) -> int:
        self._partitions[oid] = partitions
        self._schemas[oid] = schema
        return sum(len(partition) for partition in partitions)

    def _fresh_id(self) -> int:
        assigned = self._next_id
        self._next_id += 1
        return assigned

    def _schema_of(self, rows: list[Row]) -> Schema:
        sample = [item for _, item in rows[:SCHEMA_SAMPLE]]
        if not sample:
            return Schema(StructType())
        return infer_schema(sample)

    def _sampled_schema(self, per_part: list[Any], nparts: int) -> Schema:
        """Schema over the first SCHEMA_SAMPLE sampled rows in partition order.

        Row-layout samples are item lists folded through ``infer_schema``;
        columnar samples are :class:`ColumnarPartition` prefixes whose types
        are inferred column-wise (``unify`` is associative, so folding whole
        partition prefixes reproduces the seed's row-by-row fold exactly).
        """
        remaining = SCHEMA_SAMPLE
        struct: StructType | None = None
        sample_items: list[DataItem] = []
        for part in range(nparts):
            if remaining <= 0:
                break
            sample = per_part[part]
            if isinstance(sample, ColumnarPartition):
                count = min(remaining, len(sample))
                if not count:
                    continue
                part_type = struct_type_over(sample.struct, range(count))
                struct = part_type if struct is None else unify(struct, part_type)  # type: ignore[assignment]
                remaining -= count
            else:
                taken = sample[:remaining]
                sample_items.extend(taken)
                remaining -= len(taken)
        if struct is not None:
            return Schema(struct)
        if sample_items:
            return infer_schema(sample_items)
        return Schema(StructType())

    def _emit_operator(self, node, inputs, manipulations, associations) -> None:
        started = time.perf_counter()
        for hook in self._hooks:
            hook.on_operator(node, inputs, manipulations, associations)
        slot = self._metrics.operator(node.oid, node.op_type, node.label())
        slot.capture_seconds += time.perf_counter() - started

    def _child_state(self, node: PlanNode, index: int = 0) -> tuple[list[list[Row]], Schema]:
        child = node.children[index]
        return self._row_state(child.oid), self._schemas[child.oid]

    def _row_state(self, oid: int) -> list[list[Row]]:
        """Partitions of *oid* as row lists (decoding columnar state once)."""
        partitions = self._partitions[oid]
        if any(isinstance(partition, ColumnarRows) for partition in partitions):
            partitions = [
                partition.rows() if isinstance(partition, ColumnarRows) else partition
                for partition in partitions
            ]
            self._partitions[oid] = partitions
        return partitions

    def _encode_partition(self, rows: list[Row]) -> ColumnarRows:
        pids = [pid for pid, _ in rows] if self._capturing else None
        return ColumnarRows(pids, ColumnarPartition.from_items([item for _, item in rows]))

    # -- source scans --------------------------------------------------------

    def _run_read_stage(self, stage: ReadStage) -> tuple[int, int, _OpStats]:
        node = stage.node
        items = node.loader()
        rows: list[Row] = []
        if self._capturing:
            started = time.perf_counter()
            associations = ReadAssociations()
            by_id: dict[int, DataItem] = {}
            for item in items:
                pid = self._fresh_id()
                associations.add(pid)
                by_id[pid] = item
                rows.append((pid, item))
            capture_elapsed = time.perf_counter() - started
            self._emit_operator(node, (), (), associations)
            started = time.perf_counter()
            for hook in self._hooks:
                hook.on_source(node, by_id)
            capture_elapsed += time.perf_counter() - started
            slot = self._metrics.operator(node.oid, node.op_type, node.label())
            slot.capture_seconds += capture_elapsed
        else:
            rows = [(None, item) for item in items]
        partitions: list[Any] = partition_rows(rows, self._num_partitions)
        schema = self._schema_of(rows)
        if self._columnar:
            partitions = [self._encode_partition(partition) for partition in partitions]
        total = self._finish(node.oid, partitions, schema)
        return len(rows), total, [(node, len(rows), total)]

    # -- fused pipelines -----------------------------------------------------

    def _run_fused_stage(
        self, stage_index: int, stage: FusedStage, scheduler: Scheduler
    ) -> tuple[int, int, _OpStats]:
        ops = stage.ops
        in_partitions = self._partitions[stage.input_oid]
        nparts = len(in_partitions)
        capturing = self._capturing
        tracer = get_tracer()
        trace_epoch = tracer.epoch if tracer.enabled else None
        origin_pid = os.getpid()
        stage_label = stage.label()
        sampling = [
            type(op).propagate_schema is NarrowOp.propagate_schema for op in ops
        ]

        # Segment the chain at flattens whose input schema is only known after
        # an earlier sampling operator has produced output: the name-clash
        # check (seed parity) needs that schema before the flatten may run.
        segments: list[list[int]] = []
        current: list[int] = []
        known = True
        for position, op in enumerate(ops):
            if isinstance(op, FlattenOp) and not known and current:
                segments.append(current)
                current = []
                known = True  # the barrier infers the schema
            current.append(position)
            if sampling[position]:
                known = False
        if current:
            segments.append(current)

        if self._columnar:
            # Encode any row-layout inputs (wide-stage outputs) once; fused
            # chains then stay columnar end-to-end and the scheduler ships
            # raw column buffers, not object graphs.
            in_partitions = [
                partition
                if isinstance(partition, ColumnarRows)
                else self._encode_partition(partition)
                for partition in in_partitions
            ]
            self._partitions[stage.input_oid] = in_partitions
            items_by_part: list[Any] = [partition.data for partition in in_partitions]
        else:
            items_by_part = [
                [item for _, item in partition] for partition in in_partitions
            ]
        rows_in = sum(len(items) for items in items_by_part)
        entries_by_part: list[list[Any]] = [[None] * len(ops) for _ in range(nparts)]
        counts: list[list[tuple[int, int]]] = [[(0, 0)] * len(ops) for _ in range(nparts)]
        samples: list[list[list[DataItem]]] = [
            [[] for _ in range(nparts)] for _ in ops
        ]
        schema_before: list[Schema] = [None] * len(ops)  # type: ignore[list-item]
        current_schema = self._schemas[stage.input_oid]

        for segment in segments:
            # Pre-checks over the statically trackable prefix of the segment
            # (only pure, structure-preserving ops precede a flatten here, so
            # raising before they run is unobservable -- the seed registered
            # their output but never surfaced it on the error path).
            schema: Schema | None = current_schema
            for position in segment:
                op = ops[position]
                if schema is not None:
                    op.check_input_schema(schema)
                    schema = op.propagate_schema(schema)

            tasks = [
                StageTask(
                    key=f"s{stage_index}:o{segment[0]}:p{part}",
                    ops=tuple(ops[position] for position in segment),
                    sampling=tuple(sampling[position] for position in segment),
                    items=items_by_part[part],
                    capturing=capturing,
                    stage_label=stage_label,
                    part=part,
                    trace_epoch=trace_epoch,
                    origin_pid=origin_pid,
                    fault_plan=self._fault_plan,
                )
                for part in range(nparts)
            ]
            results = scheduler.run(tasks)
            for part, result in enumerate(results):
                items_by_part[part] = result.items
                for offset, position in enumerate(segment):
                    entries_by_part[part][position] = result.entries[offset]
                    counts[part][position] = result.counts[offset]
                    if result.samples[offset] is not None:
                        samples[position][part] = result.samples[offset]
                for ran_kernel in result.kernels:
                    if ran_kernel:
                        self._metrics.kernel_ops += 1
                    else:
                        self._metrics.fallback_ops += 1
                for span in result.spans:  # worker-side spans -> parent trace
                    tracer.record_span(span)

            # Runtime schemas along the executed segment: structure-preserving
            # ops propagate, rebuilding ops are inferred from the first
            # SCHEMA_SAMPLE outputs in partition order (the seed sample set).
            for position in segment:
                schema_before[position] = current_schema
                next_schema = ops[position].propagate_schema(current_schema)
                if next_schema is None:
                    next_schema = self._sampled_schema(samples[position], nparts)
                current_schema = next_schema

        columnar = self._columnar
        if capturing:
            in_pids = [
                list(partition.pids)
                if isinstance(partition, ColumnarRows)
                else [pid for pid, _ in partition]
                for partition in in_partitions
            ]
            with tracer.span("capture-finalize", "capture", stage=stage_label):
                out_ids = self._finalize_fused(
                    ops, in_pids, entries_by_part, counts, schema_before
                )
            if columnar:
                out_partitions: list[Any] = [
                    ColumnarRows(ids, data)
                    for ids, data in zip(out_ids, items_by_part)
                ]
            else:
                out_partitions = [
                    list(zip(ids, items))
                    for ids, items in zip(out_ids, items_by_part)
                ]
        elif columnar:
            out_partitions = [ColumnarRows(None, data) for data in items_by_part]
        else:
            out_partitions = [
                [(None, item) for item in items] for items in items_by_part
            ]

        rows_out = self._finish(stage.output_oid, out_partitions, current_schema)
        op_stats: _OpStats = []
        for position, op in enumerate(ops):
            if op.node is not None:
                node_rows_out = sum(counts[part][position][1] for part in range(nparts))
                op_stats.append((op.node, None, node_rows_out))
        return rows_in, rows_out, op_stats

    def _finalize_fused(
        self,
        ops: list[NarrowOp],
        in_pids: list[list[int]],
        entries_by_part: list[list[Any]],
        counts: list[list[tuple[int, int]]],
        schema_before: list[Schema],
    ) -> list[list[int]]:
        """Serial id assignment: replay traces operator-by-operator.

        Iterating operators in chain order and partitions in order inside each
        operator reproduces the seed's global id sequence exactly, whatever
        scheduler (or partition layout) ran the computation, so captured
        stores are byte-identical.  Returns the output id list per partition.
        """
        nparts = len(in_pids)
        frontier: list[list[int]] = in_pids
        for position, op in enumerate(ops):
            node = op.node
            if node is None or not op.registers:
                # Physical helper (prune keeps ids 1:1, limit-prefix truncates).
                frontier = [
                    ids[: counts[part][position][1]] for part, ids in enumerate(frontier)
                ]
                continue
            assembly_started = time.perf_counter()
            associations = op.new_associations()
            new_frontier: list[list[int]] = []
            for part in range(nparts):
                in_ids = frontier[part]
                out_ids: list[int] = []
                if op.entry_kind == "identity":
                    for src_id in in_ids:
                        out_id = self._fresh_id()
                        associations.add(src_id, out_id)
                        out_ids.append(out_id)
                elif op.entry_kind == "filter":
                    for src_index in entries_by_part[part][position]:
                        out_id = self._fresh_id()
                        associations.add(in_ids[src_index], out_id)
                        out_ids.append(out_id)
                else:  # flatten: (source index, 1-based position) pairs
                    for src_index, element_pos in entries_by_part[part][position]:
                        out_id = self._fresh_id()
                        associations.add(in_ids[src_index], element_pos, out_id)
                        out_ids.append(out_id)
                new_frontier.append(out_ids)
            frontier = new_frontier
            accessed, manipulations = op.input_spec()
            spec = (node.children[0].oid, accessed, schema_before[position])
            slot = self._metrics.operator(node.oid, node.op_type, node.label())
            slot.capture_seconds += time.perf_counter() - assembly_started
            self._emit_operator(node, (spec,), manipulations, associations)
        return frontier

    # -- wide stages (shuffles, global order, multi-input merges) ------------

    def _run_wide_stage(self, stage: WideStage) -> tuple[int, int, _OpStats]:
        node = stage.node
        handler = self._WIDE_HANDLERS.get(type(node))
        if handler is None:
            raise ExecutionError(f"no handler for plan node {type(node).__name__}")
        rows_in = sum(
            sum(len(partition) for partition in self._partitions[child.oid])
            for child in node.children
        )
        partitions, schema = handler(self, node)
        rows_out = self._finish(node.oid, partitions, schema)
        return rows_in, rows_out, [(node, None, rows_out)]

    def _run_union(self, node: UnionNode) -> tuple[list[list[Row]], Schema]:
        left_parts, left_schema = self._child_state(node, 0)
        right_parts, right_schema = self._child_state(node, 1)
        try:
            schema = left_schema.merged_with(right_schema)
        except Exception as exc:
            raise SchemaMismatchError(f"union over incompatible schemas: {exc}") from exc
        associations = BinaryAssociations() if self._capturing else None
        partitions: list[list[Row]] = []
        for partition in left_parts:
            unioned: list[Row] = []
            for pid, item in partition:
                if associations is not None:
                    out_id = self._fresh_id()
                    associations.add(pid, None, out_id)
                    unioned.append((out_id, item))
                else:
                    unioned.append((pid, item))
            partitions.append(unioned)
        for partition in right_parts:
            unioned = []
            for pid, item in partition:
                if associations is not None:
                    out_id = self._fresh_id()
                    associations.add(None, pid, out_id)
                    unioned.append((out_id, item))
                else:
                    unioned.append((pid, item))
            partitions.append(unioned)
        if associations is not None:
            inputs = (
                (node.children[0].oid, frozenset(), left_schema),
                (node.children[1].oid, frozenset(), right_schema),
            )
            self._emit_operator(node, inputs, (), associations)
        return partitions, schema

    def _run_join(self, node: JoinNode) -> tuple[list[list[Row]], Schema]:
        left_parts, left_schema = self._child_state(node, 0)
        right_parts, right_schema = self._child_state(node, 1)
        clash = set(left_schema.attribute_names()) & set(right_schema.attribute_names())
        if clash:
            raise PlanError(
                f"join inputs share attribute names {sorted(clash)}; rename before joining"
            )
        associations = BinaryAssociations() if self._capturing else None
        equi_keys = _extract_equi_keys(node.condition, left_schema, right_schema)
        out_partitions: list[list[Row]] = [[] for _ in range(self._num_partitions)]

        def emit(bucket: int, left_row: Row, right_row: Row) -> None:
            left_pid, left_item = left_row
            right_pid, right_item = right_row
            out_item = left_item.merged_with(right_item)
            if associations is not None:
                out_id = self._fresh_id()
                associations.add(left_pid, right_pid, out_id)
                out_partitions[bucket].append((out_id, out_item))
            else:
                out_partitions[bucket].append((None, out_item))

        if equi_keys is not None:
            left_keys, right_keys = equi_keys
            left_shuffled = hash_partition(
                concat_partitions(left_parts),
                self._num_partitions,
                lambda row: tuple(expr.evaluate(row[1]) for expr in left_keys),
            )
            right_shuffled = hash_partition(
                concat_partitions(right_parts),
                self._num_partitions,
                lambda row: tuple(expr.evaluate(row[1]) for expr in right_keys),
            )
            for bucket in range(self._num_partitions):
                build: dict[tuple[Any, ...], list[Row]] = {}
                for row in left_shuffled[bucket]:
                    key = tuple(expr.evaluate(row[1]) for expr in left_keys)
                    build.setdefault(key, []).append(row)
                for right_row in right_shuffled[bucket]:
                    key = tuple(expr.evaluate(right_row[1]) for expr in right_keys)
                    for left_row in build.get(key, ()):
                        emit(bucket, left_row, right_row)
        else:
            left_rows = concat_partitions(left_parts)
            right_rows = concat_partitions(right_parts)
            for index, left_row in enumerate(left_rows):
                bucket = index % self._num_partitions
                for right_row in right_rows:
                    merged = left_row[1].merged_with(right_row[1])
                    if node.condition.evaluate(merged):
                        emit(bucket, left_row, right_row)
        if associations is not None:
            condition_paths = node.condition_paths()
            left_accessed = {path for path in condition_paths if left_schema.contains(path)}
            right_accessed = {path for path in condition_paths if right_schema.contains(path)}
            manipulations = [
                (Path().child(name), Path().child(name))
                for name in left_schema.attribute_names()
            ]
            manipulations.extend(
                (Path().child(name), Path().child(name))
                for name in right_schema.attribute_names()
            )
            inputs = (
                (node.children[0].oid, left_accessed, left_schema),
                (node.children[1].oid, right_accessed, right_schema),
            )
            self._emit_operator(node, inputs, manipulations, associations)
        rows = concat_partitions(out_partitions)
        return out_partitions, self._schema_of(rows)

    def _run_aggregate(self, node: AggregateNode) -> tuple[list[list[Row]], Schema]:
        child_parts, child_schema = self._child_state(node)
        associations = AggregationAssociations() if self._capturing else None

        def key_of(row: Row) -> tuple[Any, ...]:
            return tuple(key.evaluate(row[1]) for key in node.keys)

        shuffled = hash_partition(
            concat_partitions(child_parts), self._num_partitions, key_of
        )
        partitions: list[list[Row]] = []
        for bucket_rows in shuffled:
            groups: dict[tuple[Any, ...], list[Row]] = {}
            for row in bucket_rows:
                groups.setdefault(key_of(row), []).append(row)
            aggregated: list[Row] = []
            for key_values, members in groups.items():
                fields: list[tuple[str, Any]] = list(zip(node.key_names, key_values))
                for aggregate in node.aggregates:
                    values = [aggregate.column.evaluate(item) for _, item in members]
                    fields.append((aggregate.output_name(), aggregate.apply(values)))
                out_item = DataItem(fields)
                if associations is not None:
                    out_id = self._fresh_id()
                    associations.add([pid for pid, _ in members], out_id)
                    aggregated.append((out_id, out_item))
                else:
                    aggregated.append((None, out_item))
            partitions.append(aggregated)
        if associations is not None:
            spec = (node.children[0].oid, node.accessed_paths(0), child_schema)
            self._emit_operator(node, (spec,), node.manipulation_pairs(), associations)
        rows = concat_partitions(partitions)
        return partitions, self._schema_of(rows)

    def _run_distinct(self, node: DistinctNode) -> tuple[list[list[Row]], Schema]:
        child_parts, child_schema = self._child_state(node)
        rows = concat_partitions(child_parts)
        groups: dict[DataItem, list[Any]] = {}
        order: list[DataItem] = []
        for pid, item in rows:
            if item not in groups:
                groups[item] = []
                order.append(item)
            groups[item].append(pid)
        associations = AggregationAssociations() if self._capturing else None
        distinct_rows: list[Row] = []
        for item in order:
            if associations is not None:
                out_id = self._fresh_id()
                associations.add(groups[item], out_id)
                distinct_rows.append((out_id, item))
            else:
                distinct_rows.append((None, item))
        if associations is not None:
            # Comparing whole items accesses every top-level attribute.
            accessed = {Path().child(name) for name in child_schema.attribute_names()}
            spec = (node.children[0].oid, accessed, child_schema)
            self._emit_operator(node, (spec,), (), associations)
        return partition_rows(distinct_rows, self._num_partitions), child_schema

    def _run_sort(self, node: SortNode) -> tuple[list[list[Row]], Schema]:
        child_parts, child_schema = self._child_state(node)
        rows = concat_partitions(child_parts)

        def sort_key(row: Row) -> tuple:
            # None sorts first; mixed types are kept apart by type name.
            values = []
            for key in node.keys:
                value = key.evaluate(row[1])
                values.append((value is not None, type(value).__name__, value))
            return tuple(values)

        ordered = sorted(rows, key=sort_key, reverse=node.descending)
        return self._reassign_rows(node, ordered, child_schema)

    def _run_limit(self, node: LimitNode) -> tuple[list[list[Row]], Schema]:
        child_parts, child_schema = self._child_state(node)
        rows = concat_partitions(child_parts)[: node.n]
        return self._reassign_rows(node, rows, child_schema)

    def _reassign_rows(
        self, node: PlanNode, rows: list[Row], child_schema: Schema
    ) -> tuple[list[list[Row]], Schema]:
        """Shared tail of sort/limit: fresh unary associations over *rows*."""
        associations = UnaryAssociations() if self._capturing else None
        out_rows: list[Row] = []
        for pid, item in rows:
            if associations is not None:
                out_id = self._fresh_id()
                associations.add(pid, out_id)
                out_rows.append((out_id, item))
            else:
                out_rows.append((pid, item))
        if associations is not None:
            spec = (node.children[0].oid, node.accessed_paths(0), child_schema)
            self._emit_operator(node, (spec,), [], associations)
        return partition_rows(out_rows, self._num_partitions), child_schema

    _WIDE_HANDLERS: dict[type, Any] = {}


Executor._WIDE_HANDLERS = {
    UnionNode: Executor._run_union,
    JoinNode: Executor._run_join,
    AggregateNode: Executor._run_aggregate,
    DistinctNode: Executor._run_distinct,
    SortNode: Executor._run_sort,
    LimitNode: Executor._run_limit,
}


def _extract_equi_keys(
    condition: Expression, left_schema: Schema, right_schema: Schema
) -> tuple[list[Expression], list[Expression]] | None:
    """Extract hash-join keys from a conjunction of column equalities.

    Returns ``(left_keys, right_keys)`` if the whole condition is a
    conjunction of ``col == col`` terms whose sides resolve unambiguously to
    the two inputs; otherwise ``None`` (the join falls back to a nested-loop
    evaluation of the condition on the merged item).
    """
    conjuncts: list[Expression] = []

    def split(expr: Expression) -> bool:
        if isinstance(expr, BinaryExpr) and expr.name == "and":
            return split(expr.left) and split(expr.right)
        conjuncts.append(expr)
        return True

    split(condition)
    left_keys: list[Expression] = []
    right_keys: list[Expression] = []
    for conjunct in conjuncts:
        if not (isinstance(conjunct, BinaryExpr) and conjunct.name == "=="):
            return None
        sides = [conjunct.left, conjunct.right]
        if not all(isinstance(side, ColumnExpr) for side in sides):
            return None
        first, second = sides
        assert isinstance(first, ColumnExpr) and isinstance(second, ColumnExpr)
        first_left = left_schema.contains(first.path.schematic())
        first_right = right_schema.contains(first.path.schematic())
        second_left = left_schema.contains(second.path.schematic())
        second_right = right_schema.contains(second.path.schematic())
        if first_left and second_right and not (first_right or second_left):
            left_keys.append(first)
            right_keys.append(second)
        elif first_right and second_left and not (first_left or second_right):
            left_keys.append(second)
            right_keys.append(first)
        else:
            return None
    return (left_keys, right_keys) if left_keys else None
